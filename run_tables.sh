#!/bin/sh
# Regenerates all paper tables/figures sequentially (release build).
set -x
cargo run -q -p sbm-bench --bin fig1   --release >  /root/repo/tables_output.txt 2>&1
cargo run -q -p sbm-bench --bin table1 --release >> /root/repo/tables_output.txt 2>&1
cargo run -q -p sbm-bench --bin table2 --release >> /root/repo/tables_output.txt 2>&1
cargo run -q -p sbm-bench --bin table3 --release -- --designs 8 >> /root/repo/tables_output.txt 2>&1
echo TABLES_DONE >> /root/repo/tables_output.txt
