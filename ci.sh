#!/usr/bin/env bash
# Local CI gate: formatting, the strict lint regime over the whole
# workspace, release build and the full test suite (including the
# sbm-check invariant tests). Run from the repo root before pushing.
#
# Usage: ci.sh [--quick]
#   --quick   skip the release build (lints + debug tests only)
set -euo pipefail
cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    *)
        echo "unknown argument: $arg (usage: ci.sh [--quick])" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --workspace --release
else
    echo "==> skipping release build (--quick)"
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -p sbm-check"
cargo test -q -p sbm-check

echo "CI OK"
