#!/usr/bin/env bash
# Local CI gate: formatting, the strict lint regime over the whole
# workspace, release build and the full test suite (including the
# sbm-check invariant tests). Run from the repo root before pushing.
#
# Usage: ci.sh [--quick|--sanitize]
#   --quick     skip the release build (lints + debug tests only)
#   --sanitize  run the dynamic-analysis job instead: the concurrency
#               tests under ThreadSanitizer and the codec/aiger tests
#               under Miri. Both need nightly extras (the `rust-src`
#               component for -Zbuild-std, and `miri`); whichever is
#               missing is skipped with instructions, so the job degrades
#               to a no-op on a bare toolchain rather than failing.
set -euo pipefail
cd "$(dirname "$0")"

quick=0
sanitize=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    --sanitize) sanitize=1 ;;
    *)
        echo "unknown argument: $arg (usage: ci.sh [--quick|--sanitize])" >&2
        exit 2
        ;;
    esac
done

if [[ $sanitize -eq 1 ]]; then
    # Dynamic-analysis job. TSan exercises the code paths the static
    # C-rules police: the partition-parallel pipeline (proptests), the
    # kill-mid-run checkpoint/resume path, and the shared simulation
    # service's pool; Miri checks the journal codec and AIGER parser —
    # the two byte-level decoders — for UB. Local setup:
    #   rustup toolchain install nightly
    #   rustup component add rust-src --toolchain nightly   # for TSan
    #   rustup component add miri --toolchain nightly       # for Miri
    if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
        echo "==> sanitize: nightly toolchain not installed; skipping" \
            "(rustup toolchain install nightly)"
        echo "CI OK (sanitize skipped)"
        exit 0
    fi
    host=$(rustc -vV | awk '/^host:/ {print $2}')
    if rustup component list --toolchain nightly 2>/dev/null |
        grep -q "^rust-src.*(installed)"; then
        echo "==> ThreadSanitizer: pipeline / kill-resume / sim-service tests"
        # -Zbuild-std rebuilds std with TSan instrumentation so std's own
        # synchronization is visible to the tool; suppressions are the
        # committed, justified list in ci/tsan.supp.
        RUSTFLAGS="-Zsanitizer=thread" \
            TSAN_OPTIONS="suppressions=$PWD/ci/tsan.supp" \
            cargo +nightly test -Zbuild-std --target "$host" \
            -p sbm-core --test proptests -- \
            parallel_pipeline_equivalent_and_no_larger_than_serial \
            killed_checkpointed_run_resumes_identical
        RUSTFLAGS="-Zsanitizer=thread" \
            TSAN_OPTIONS="suppressions=$PWD/ci/tsan.supp" \
            cargo +nightly test -Zbuild-std --target "$host" -p sbm-sim
    else
        echo "==> sanitize: rust-src not installed for nightly; skipping TSan" \
            "(rustup component add rust-src --toolchain nightly)"
    fi
    if cargo +nightly miri --version >/dev/null 2>&1; then
        echo "==> Miri: journal codec + AIGER decoder tests"
        cargo +nightly miri test -p sbm-journal codec
        cargo +nightly miri test -p sbm-aig aiger
    else
        echo "==> sanitize: miri not installed for nightly; skipping Miri" \
            "(rustup component add miri --toolchain nightly)"
    fi
    echo "CI OK (sanitize)"
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# The project's own static-analysis pass: determinism, concurrency, API
# hygiene and durability invariants clippy cannot express. A hard gate in
# both modes — any violation (or reason-less suppression) fails CI.
echo "==> sbm-lint"
cargo run -q -p sbm-lint

if [[ $quick -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --workspace --release
else
    echo "==> skipping release build (--quick)"
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -p sbm-check"
cargo test -q -p sbm-check

# Fault-injection smoke: seeded panics/delays/bailouts across all eight
# engines must complete, stay equivalent, and ledger exactly. Fixed seeds
# inside the test keep this deterministic and bounded (sub-second).
echo "==> fault-injection smoke"
cargo test -q -p sbm-core --test proptests \
    all_engine_fault_stress_completes_equivalent_with_exact_ledger

if [[ $quick -eq 0 ]]; then
    # End-to-end CLI smoke: one reduced-scale table1 pass under injection
    # plus a tight per-script deadline, verifying the flags, the retry
    # ladder and the degraded-run report wiring. The deadline bounds the
    # budgeted phases, so this finishes *faster* than a plain table1 run
    # (~5 min vs ~8 min); every benchmark must still verify equivalent.
    echo "==> table1 fault-injection smoke"
    out=$(cargo run -q -p sbm-bench --bin table1 --release -- \
        --fault-seed 1 --fault-rate 0.15 --deadline 5)
    if grep -q "MISMATCH" <<<"$out"; then
        echo "fault-injection smoke: equivalence MISMATCH" >&2
        grep "MISMATCH" <<<"$out" >&2
        exit 1
    fi
fi

# Checkpoint/resume smoke: interrupt a checkpointed single-benchmark
# table1 run with a tight deadline, then resume it to completion. The
# resumed run must report resume activity, verify equivalent, and emit no
# checkpoint warnings. Quick mode uses the debug binary; full mode
# release.
echo "==> checkpoint/resume smoke"
ckdir=$(mktemp -d)
trap 'rm -rf "$ckdir"' EXIT
if [[ $quick -eq 0 ]]; then
    table1=(cargo run -q -p sbm-bench --bin table1 --release --)
else
    cargo build -q -p sbm-bench --bin table1
    table1=(cargo run -q -p sbm-bench --bin table1 --)
fi
"${table1[@]}" --only i2c --checkpoint "$ckdir" --deadline 0.2 >/dev/null
[[ -f "$ckdir/i2c/script.state" ]] || {
    echo "checkpoint smoke: no script.state written" >&2
    exit 1
}
out=$("${table1[@]}" --only i2c --checkpoint "$ckdir" --resume)
if ! grep -q "resume:" <<<"$out"; then
    echo "checkpoint smoke: resumed run reported no resume summary" >&2
    exit 1
fi
if grep -qE "MISMATCH|checkpoint WARNING|cannot resume" <<<"$out"; then
    echo "checkpoint smoke: resume failed" >&2
    grep -E "MISMATCH|checkpoint WARNING|cannot resume" <<<"$out" >&2
    exit 1
fi

# Run-report smoke: regenerate BENCH_quick.json — a serialized RunReport
# from a two-benchmark parallel table1 pass — and validate it with the
# crate's own strict decoder. report_check fails on any schema drift
# (missing/unknown/mistyped field, version mismatch, unstable
# re-encode); --require-bdd asserts the harvested BDD counters and
# per-engine latency histograms are nonzero, and --require-sim asserts
# the simulation-signature service actually screened candidates — the
# layers the report exists to keep are actually flowing.
echo "==> run-report smoke (BENCH_quick.json)"
if [[ $quick -eq 0 ]]; then
    report_check=(cargo run -q -p sbm-bench --bin report_check --release --)
else
    cargo build -q -p sbm-bench --bin report_check
    report_check=(cargo run -q -p sbm-bench --bin report_check --)
fi
"${table1[@]}" --only i2c,priority --threads 2 \
    --report-json BENCH_quick.json >/dev/null
"${report_check[@]}" BENCH_quick.json --require-bdd --require-sim

# Sim-filter smoke (quick mode): run the same benchmark with the
# signature filter on and off at the same thread count. Both results
# must SAT-verify equivalent, and — because the filter is a sound
# necessary condition that only discards hopeless candidates — the
# filtered pass must end at least as small as the unfiltered one.
if [[ $quick -eq 1 ]]; then
    echo "==> sim-filter on/off smoke"
    row_on=$("${table1[@]}" --only priority --threads 2 | grep '^priority')
    row_off=$("${table1[@]}" --only priority --threads 2 --sim-filter off |
        grep '^priority')
    for row in "$row_on" "$row_off"; do
        if ! grep -q 'eq(SAT)' <<<"$row"; then
            echo "sim-filter smoke: run did not verify equivalent: $row" >&2
            exit 1
        fi
    done
    lut_on=$(awk '{print $7}' <<<"$row_on")
    lut_off=$(awk '{print $7}' <<<"$row_off")
    if ((lut_on > lut_off)); then
        echo "sim-filter smoke: filtered pass lost quality" >&2
        echo "  on:  $row_on" >&2
        echo "  off: $row_off" >&2
        exit 1
    fi
fi

# Server smoke (quick mode): start sbm-server, drive it with loadgen,
# SIGKILL the server mid-run and restart it over the same store root.
# The recovery scan must pick the in-flight jobs back up, loadgen must
# account for every job exactly once (it exits nonzero on anything
# lost, duplicated or failed), and every streamed RunReport must pass
# report_check --require-sim. The release-mode soak test (crates/server
# tests/soak.rs) is the rigorous version; this is the always-on gate.
if [[ $quick -eq 1 ]]; then
    echo "==> server kill/restart smoke"
    cargo build -q -p sbm-server --bins
    srvdir=$(mktemp -d)
    server_pid=""
    trap 'rm -rf "$ckdir" "$srvdir"; kill "$server_pid" 2>/dev/null || true' EXIT
    addrfile="$srvdir/addr"
    start_server() {
        target/debug/sbm-server --root "$srvdir/store" --addr 127.0.0.1:0 \
            --addr-file "$addrfile" --workers 2 --slice-ms 20 >/dev/null &
        server_pid=$!
    }
    start_server
    target/debug/loadgen --addr-file "$addrfile" --jobs 32 --clients 4 \
        --iterations 2 --out "$srvdir/out" --timeout-s 300 --tag ci &
    load_pid=$!
    # Kill once a few results exist (or the window passes — tiny corpus
    # jobs can outrun the poll; the soak test pins the strict timing).
    for _ in $(seq 1 300); do
        n=$(find "$srvdir/out" -name '*.json' 2>/dev/null | wc -l)
        [[ $n -ge 3 ]] && break
        sleep 0.1
    done
    kill -9 "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    start_server
    if ! wait "$load_pid"; then
        echo "server smoke: loadgen lost, duplicated or failed jobs" >&2
        exit 1
    fi
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    got=$(find "$srvdir/out" -name '*.json' | wc -l)
    if [[ $got -ne 32 ]]; then
        echo "server smoke: expected 32 reports, found $got" >&2
        exit 1
    fi
    for report in "$srvdir"/out/*.json; do
        "${report_check[@]}" "$report" --require-sim >/dev/null
    done
    echo "server smoke: 32/32 jobs survived the kill/restart"
fi

echo "CI OK"
