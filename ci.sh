#!/usr/bin/env bash
# Local CI gate: formatting, lints on the core crate, release build and
# the tier-1 test suite. Run from the repo root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -p sbm-core (-D warnings)"
cargo clippy -p sbm-core --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test -q

echo "CI OK"
