//! The paper's Figure 1, as a library walkthrough: rewrite `f` as
//! `(∂f/∂g) ⊕ g` when the Boolean difference is small.
//!
//! Run with: `cargo run --example boolean_difference --release`

use sbm::aig::Aig;
use sbm::budget::Budget;
use sbm::core::engine::{Bdiff, Engine, EngineCtx};
use sbm::core::verify::equivalent;

fn main() {
    // g = x1·x2 + x3·x4; f computes g ⊕ x5 but is built as an unrelated
    // cone, so the two functions share no structure — exactly the
    // situation where classic resubstitution fails and the Boolean
    // difference "untangles reconvergent logic" (paper, Section V-B).
    let mut aig = Aig::new();
    let x: Vec<_> = (0..5).map(|_| aig.add_input()).collect();
    let g1 = aig.and(x[0], x[1]);
    let g2 = aig.and(x[2], x[3]);
    let g = aig.or(g1, g2);
    // f's cone rebuilds the same function with redundant structure, so
    // structural hashing cannot share it with g.
    let f1a = aig.and(x[0], x[1]);
    let f1b = aig.or(x[0], x[1]);
    let f1 = aig.and(f1a, f1b);
    let f2a = aig.and(x[2], x[3]);
    let f2b = aig.or(x[2], x[3]);
    let f2 = aig.and(f2a, f2b);
    let fg = aig.or(f1, f2);
    let f = aig.mux(x[4], !fg, fg); // f = fg ⊕ x5 via a mux cone
    aig.add_output(g);
    aig.add_output(f);
    let aig = aig.cleanup();

    println!(
        "Fig. 1(a): f and g as separate cones: {} AND nodes",
        aig.num_ands()
    );

    let budget = Budget::unlimited();
    let result = Bdiff::default().optimize(&aig, &EngineCtx::new(&budget));
    println!(
        "Fig. 1(b): f = (∂f/∂g) ⊕ g:           {} AND nodes",
        result.aig.num_ands()
    );
    println!(
        "pairs tried: {}, rewrites: {}, windows: {}",
        result.stats.tried, result.stats.accepted, result.stats.windows
    );
    assert!(equivalent(&aig, &result.aig));
    println!("equivalence: proven by SAT miter");
}
