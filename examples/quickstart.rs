//! Quickstart: build a network, optimize it with the SBM script, verify
//! equivalence and inspect the result.
//!
//! Run with: `cargo run --example quickstart --release`

use sbm::aig::Aig;
use sbm::check::CheckLevel;
use sbm::core::script::{resyn2rs, sbm_script_report, SbmOptions};
use sbm::core::verify::equivalent;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately messy circuit: redundancy, duplication and an
    // unbalanced chain.
    let mut aig = Aig::new();
    let x: Vec<_> = (0..6).map(|_| aig.add_input()).collect();
    let t1 = aig.and(x[0], x[1]);
    let t2 = aig.and(x[0], !x[1]);
    let redundant = aig.or(t1, t2); // == x0
    let mut chain = redundant;
    for &xi in &x[2..] {
        chain = aig.and(chain, xi);
    }
    let dup_a = aig.and(x[2], x[3]);
    let dup_b = aig.and(x[4], x[5]);
    let dup_ab = aig.and(dup_a, dup_b);
    let duplicate = aig.and(dup_ab, x[0]); // same function as `chain`
    let f = aig.or(chain, duplicate);
    let g = aig.xor(chain, duplicate); // == 0
    aig.add_output(f);
    aig.add_output(g);
    let aig = aig.cleanup();

    println!(
        "original:  {:4} AND nodes, {} levels",
        aig.num_ands(),
        aig.depth()
    );

    let baseline = resyn2rs(&aig);
    println!(
        "resyn2rs:  {:4} AND nodes, {} levels",
        baseline.num_ands(),
        baseline.depth()
    );

    // Options come from the validated builder; nonsense values (zero
    // threads, empty threshold ladders, …) are rejected at build() time.
    // `Boundaries` additionally validates the input and output networks
    // against the structural invariants of `sbm-check`.
    let options = SbmOptions::builder()
        .num_threads(2)
        .check_level(CheckLevel::Boundaries)
        .build()?;
    let run = sbm_script_report(&aig, &options);
    let optimized = run.aig;
    println!(
        "SBM:       {:4} AND nodes, {} levels",
        optimized.num_ands(),
        optimized.depth()
    );

    assert!(
        equivalent(&aig, &optimized),
        "optimization must preserve function"
    );
    println!("equivalence: proven by SAT miter");
    assert!(run.stats.check_violations.is_empty());
    println!(
        "invariants:  clean at check level {}",
        CheckLevel::Boundaries
    );
    Ok(())
}
