//! The EPFL-competition flow on one benchmark: generate, optimize with
//! both scripts, map to LUT-6 and compare areas (a single row of the
//! paper's Table I).
//!
//! Run with: `cargo run --example epfl_flow --release -- [benchmark]`

use sbm::core::script::{resyn2rs_fixpoint, sbm_script, SbmOptions};
use sbm::epfl::{generate, Scale};
use sbm::lutmap::{map_luts, MapOptions};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "priority".into());
    let Some(aig) = generate(&name, Scale::Reduced) else {
        eprintln!("unknown benchmark {name:?}; known: {:?}", sbm::epfl::NAMES);
        std::process::exit(1);
    };
    println!(
        "{name}: {} inputs / {} outputs, {} AND nodes unoptimized",
        aig.num_inputs(),
        aig.num_outputs(),
        aig.num_ands()
    );

    let baseline = resyn2rs_fixpoint(&aig, 4);
    let base_map = map_luts(&baseline, &MapOptions::default());
    println!(
        "baseline (resyn2rs*):  {:5} AIG nodes -> {:4} LUT-6, {} levels",
        baseline.num_ands(),
        base_map.num_luts(),
        base_map.depth()
    );

    let sbm = sbm_script(&aig, &SbmOptions::default());
    let sbm_map = map_luts(&sbm, &MapOptions::default());
    println!(
        "SBM script:            {:5} AIG nodes -> {:4} LUT-6, {} levels",
        sbm.num_ands(),
        sbm_map.num_luts(),
        sbm_map.depth()
    );
}
