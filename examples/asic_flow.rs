//! The industrial-flow comparison on a couple of synthetic designs —
//! one slice of the paper's Table III.
//!
//! Run with: `cargo run --example asic_flow --release`

use sbm::asic::designs::industrial_designs;
use sbm::asic::flow::{compare_flows, summarize};

fn main() {
    let designs = industrial_designs(3);
    let rows: Vec<_> = designs
        .iter()
        .map(|d| {
            let row = compare_flows(&d.name, &d.aig, 0.85);
            println!(
                "{}: area {:.1} -> {:.1}, power {:.2} -> {:.2}, TNS {:.2} -> {:.2}",
                row.name,
                row.baseline.area,
                row.proposed.area,
                row.baseline.dyn_power,
                row.proposed.dyn_power,
                row.baseline_timing.tns,
                row.proposed_timing.tns,
            );
            row
        })
        .collect();
    let s = summarize(&rows);
    println!();
    println!(
        "average vs baseline: area {:+.2}%, power {:+.2}%, WNS {:+.2}%, TNS {:+.2}%, runtime {:+.2}%",
        s.area_pct, s.power_pct, s.wns_pct, s.tns_pct, s.runtime_pct
    );
}
