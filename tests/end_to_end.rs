// Test code: a panic IS the failure report (clippy.toml only relaxes
// unwrap/expect inside #[test] fns, not test-file helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! End-to-end integration tests across all crates: generate realistic
//! benchmarks, run the full SBM script, and prove equivalence with SAT.

use sbm::core::script::{resyn2rs_fixpoint, sbm_script, SbmOptions};
use sbm::epfl::{generate, Scale};
use sbm::lutmap::{map_luts, MapOptions};
use sbm::sat::{EquivalenceOracle, MiterOracle, Verdict};

/// Benchmarks small enough for full SAT proofs in a test run.
const SMALL: [&str; 5] = ["int2float", "ctrl", "router", "priority", "dec"];

#[test]
fn sbm_script_preserves_function_on_epfl_benchmarks() {
    for name in SMALL {
        let aig = generate(name, Scale::Reduced).expect("known benchmark");
        let optimized = sbm_script(&aig, &SbmOptions::default());
        assert!(
            optimized.num_ands() <= aig.num_ands(),
            "{name}: {} -> {}",
            aig.num_ands(),
            optimized.num_ands()
        );
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent,
            "{name} changed function"
        );
    }
}

#[test]
fn sbm_beats_or_ties_baseline() {
    let mut wins = 0usize;
    let mut total = 0usize;
    for name in SMALL {
        let aig = generate(name, Scale::Reduced).expect("known benchmark");
        let baseline = resyn2rs_fixpoint(&aig, 4);
        let sbm = sbm_script(&aig, &SbmOptions::default());
        total += 1;
        assert!(
            sbm.num_ands() <= baseline.num_ands() + baseline.num_ands() / 20,
            "{name}: SBM ({}) much worse than baseline ({})",
            sbm.num_ands(),
            baseline.num_ands()
        );
        if sbm.num_ands() < baseline.num_ands() {
            wins += 1;
        }
    }
    // The paper's claim is that the Boolean methods find gains the
    // baseline misses; on these small circuits both often converge to the
    // same optimum, so require at least one strict win and no losses.
    assert!(wins >= 1, "SBM won only {wins}/{total}");
}

#[test]
fn lut_mapping_of_optimized_networks_is_equivalent() {
    for name in ["int2float", "router"] {
        let aig = generate(name, Scale::Reduced).expect("known benchmark");
        let optimized = sbm_script(&aig, &SbmOptions::default());
        let mapped = map_luts(&optimized, &MapOptions::default());
        // Exhaustive for small input counts, random otherwise.
        let n = aig.num_inputs();
        let patterns: Vec<Vec<bool>> = if n <= 12 {
            (0..1usize << n)
                .map(|m| (0..n).map(|i| (m >> i) & 1 == 1).collect())
                .collect()
        } else {
            let mut state = 0x1357_9BDFu64;
            (0..256)
                .map(|_| {
                    (0..n)
                        .map(|_| {
                            state ^= state << 13;
                            state ^= state >> 7;
                            state ^= state << 17;
                            state & 1 == 1
                        })
                        .collect()
                })
                .collect()
        };
        for p in &patterns {
            assert_eq!(mapped.eval(p), aig.eval(p), "{name} mapping mismatch");
        }
    }
}

#[test]
fn aiger_round_trip_of_optimized_network() {
    let aig = generate("int2float", Scale::Reduced).expect("known benchmark");
    let optimized = sbm_script(&aig, &SbmOptions::default());
    let text = sbm::aig::aiger::write(&optimized);
    let back = sbm::aig::aiger::parse(&text).expect("own AIGER output parses");
    assert_eq!(
        MiterOracle::new().check(&optimized, &back),
        Verdict::Equivalent
    );
}

#[test]
fn arbiter_collapses_dramatically() {
    // The paper reports a 1.5× reduction on arbiter; our generated
    // arbiter has heavy chain redundancy that the script must exploit.
    let aig = generate("arbiter", Scale::Reduced).expect("known benchmark");
    let optimized = sbm_script(&aig, &SbmOptions::default());
    assert!(
        optimized.num_ands() < aig.num_ands(),
        "{} -> {}",
        aig.num_ands(),
        optimized.num_ands()
    );
    assert_eq!(
        MiterOracle::new().check(&aig, &optimized),
        Verdict::Equivalent
    );
}
