// Test code: a panic IS the failure report (clippy.toml only relaxes
// unwrap/expect inside #[test] fns, not test-file helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Cross-crate integration: SOP networks, cell mapping and the ASIC flow
//! must all agree functionally with the AIGs they came from.

use sbm::asic::designs::industrial_designs;
use sbm::asic::mapping::map_to_cells;
use sbm::core::engine::{Engine, EngineCtx, Hetero};
use sbm::epfl::{generate, Scale};
use sbm::sat::{EquivalenceOracle, MiterOracle, Verdict};
use sbm::sop::SopNetwork;

#[test]
fn sop_round_trip_on_benchmarks() {
    for name in ["int2float", "ctrl"] {
        let aig = generate(name, Scale::Reduced).expect("known benchmark");
        let net = SopNetwork::from_aig(&aig);
        let back = net.to_aig();
        assert_eq!(
            MiterOracle::new().check(&aig, &back),
            Verdict::Equivalent,
            "{name} SOP round trip"
        );
    }
}

#[test]
fn hetero_engine_on_decoder_logic() {
    // Decoders are the paper's canonical kerneling example: "common
    // factors between very wide operators appearing in HDL descriptions
    // of decoders and control logic".
    let aig = generate("dec", Scale::Reduced).expect("known benchmark");
    let budget = sbm::budget::Budget::unlimited();
    let optimized = Hetero::default()
        .optimize(&aig, &EngineCtx::new(&budget))
        .aig;
    assert!(optimized.num_ands() <= aig.num_ands());
    assert_eq!(
        MiterOracle::new().check(&aig, &optimized),
        Verdict::Equivalent
    );
}

#[test]
fn cell_mapping_preserves_design_function() {
    let designs = industrial_designs(2);
    for d in &designs {
        let netlist = map_to_cells(&d.aig);
        assert!(netlist.area() > 0.0);
        let n = d.aig.num_inputs();
        let mut state = 0xC0FFEEu64;
        for _ in 0..64 {
            let assignment: Vec<bool> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state & 1 == 1
                })
                .collect();
            assert_eq!(
                netlist.eval(&assignment),
                d.aig.eval(&assignment),
                "{} mapping mismatch",
                d.name
            );
        }
    }
}

#[test]
fn voter_is_majority_after_optimization() {
    let aig = generate("voter", Scale::Reduced).expect("known benchmark");
    let optimized = sbm::core::script::resyn2rs(&aig);
    // Spot-check the majority semantics survive optimization.
    let n = aig.num_inputs();
    for ones in [0usize, n / 2, n / 2 + 1, n] {
        let mut assignment = vec![false; n];
        for slot in assignment.iter_mut().take(ones) {
            *slot = true;
        }
        let expected = ones > n / 2;
        assert_eq!(optimized.eval(&assignment), vec![expected], "{ones} ones");
    }
}
