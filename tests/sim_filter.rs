//! Cross-crate tests of the shared simulation-signature service: the
//! filter must reject most of mspf's candidate work on real benchmarks
//! without costing any quality, stay deterministic across worker-thread
//! counts, and never reject a candidate that exact (SAT) reasoning
//! would accept.

use proptest::prelude::*;
use sbm::aig::{Aig, Lit, NodeId};
use sbm::budget::Budget;
use sbm::core::engine::{Engine, EngineCtx, Mspf};
use sbm::core::script::{sbm_script_report, SbmOptions};
use sbm::epfl::{generate, Scale};
use sbm::sat::{EquivalenceOracle, MiterOracle, Verdict};
use sbm::sim::{drain_sim_tally, keep_candidate, window_care_mask, SigService};

/// Regression for the filter's whole reason to exist: on the reduced
/// EPFL corpus, signature screening rejects the overwhelming majority
/// of mspf's replacement candidates before any BDD is built, while the
/// optimized result is exactly as small as the unfiltered pass.
#[test]
fn mspf_filter_rejects_most_candidates_without_losing_quality() {
    let mut corpus_hits = 0u64;
    let mut corpus_screened = 0u64;
    for name in ["i2c", "priority"] {
        let aig = generate(name, Scale::Reduced).expect("known benchmark");
        let budget = Budget::unlimited();

        let unfiltered = Mspf::default().optimize(&aig, &EngineCtx::new(&budget));

        let svc = SigService::default();
        let _ = drain_sim_tally();
        let filtered =
            Mspf::default().optimize(&aig, &EngineCtx::new(&budget).with_sim(Some(&svc)));
        let tally = drain_sim_tally();

        let screened = tally.filter_hits + tally.filter_misses;
        assert!(screened > 0, "{name}: the filter was never consulted");
        corpus_hits += tally.filter_hits;
        corpus_screened += screened;
        // Per-benchmark floor; the headline ≥80% bar is held over the
        // whole corpus below (observability-poor networks like the
        // priority chain sit slightly lower individually).
        let rejection = tally.filter_hits as f64 / screened as f64;
        assert!(
            rejection >= 0.7,
            "{name}: filter rejected only {:.1}% of {screened} candidates",
            rejection * 100.0
        );

        // Soundness means zero quality cost: the saved-node count must
        // be no worse than the unfiltered pass on the same input.
        let saved_unfiltered = aig.num_ands() - unfiltered.aig.num_ands();
        let saved_filtered = aig.num_ands() - filtered.aig.num_ands();
        assert!(
            saved_filtered >= saved_unfiltered,
            "{name}: filtered pass saved {saved_filtered} nodes, unfiltered {saved_unfiltered}"
        );
        assert_eq!(
            MiterOracle::new().check(&aig, &filtered.aig),
            Verdict::Equivalent,
            "{name}: filtered result must stay equivalent"
        );
    }
    let corpus_rejection = corpus_hits as f64 / corpus_screened as f64;
    assert!(
        corpus_rejection >= 0.8,
        "corpus: filter rejected only {:.1}% of {corpus_screened} candidates",
        corpus_rejection * 100.0
    );
}

/// The service's determinism contract, observed end to end: the same
/// script run produces the same result *and* the same sim-filter
/// counters no matter how many worker threads execute it.
#[test]
fn sim_counters_identical_across_thread_counts() {
    let aig = generate("i2c", Scale::Reduced).expect("known benchmark");
    let runs: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let options = SbmOptions::builder()
                .num_threads(threads)
                .build()
                .expect("valid options");
            sbm_script_report(&aig, &options)
        })
        .collect();
    let reference = &runs[0];
    assert!(
        reference.stats.sim.filter_hits + reference.stats.sim.filter_misses > 0,
        "sim filter must be live in the default script"
    );
    for run in &runs[1..] {
        assert_eq!(
            run.stats.sim, reference.stats.sim,
            "sim counters must not depend on the thread count"
        );
        assert_eq!(run.aig.num_ands(), reference.aig.num_ands());
    }
}

#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, usize, usize, bool, bool)>,
    witnesses: Vec<Vec<bool>>,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (3usize..=5, 4usize..=18, 0usize..=3).prop_flat_map(|(num_inputs, num_steps, num_cex)| {
        let step = (
            0u8..3,
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            any::<bool>(),
        );
        (
            proptest::collection::vec(step, num_steps),
            proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), num_inputs),
                num_cex,
            ),
        )
            .prop_map(move |(raw, witnesses)| {
                let steps = raw
                    .iter()
                    .enumerate()
                    .map(|(i, &(op, a, b, na, nb))| {
                        let pool = num_inputs + i;
                        (op, a as usize % pool, b as usize % pool, na, nb)
                    })
                    .collect();
                Recipe {
                    num_inputs,
                    steps,
                    witnesses,
                }
            })
    })
}

fn build(recipe: &Recipe) -> Aig {
    let mut aig = Aig::new();
    let mut signals: Vec<Lit> = (0..recipe.num_inputs).map(|_| aig.add_input()).collect();
    for &(op, a, b, na, nb) in &recipe.steps {
        let x = signals[a].complement_if(na);
        let y = signals[b].complement_if(nb);
        let s = match op {
            0 => aig.and(x, y),
            1 => aig.or(x, y),
            _ => aig.xor(x, y),
        };
        signals.push(s);
    }
    // Never empty: the recipe always has at least three inputs.
    let last = *signals.last().unwrap_or(&Lit::FALSE);
    aig.add_output(last);
    aig.cleanup()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness of the filter, including after counterexample
    /// refinement: a candidate whose substitution the SAT oracle proves
    /// equivalent is never signature-rejected. The whole network acts as
    /// the window, so the care mask is the true observability set.
    #[test]
    fn equivalent_candidates_are_never_rejected(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let nodes = aig.topo_order();
        let roots: Vec<NodeId> = aig
            .outputs()
            .iter()
            .map(|l| l.node())
            .filter(|n| *n != NodeId::CONST)
            .collect();
        if nodes.is_empty() || roots.is_empty() {
            return; // degenerate network: nothing to filter
        }

        let svc = SigService::default();
        // Refinement must preserve soundness: committed counterexamples
        // only ever add care patterns, never unsound rejections.
        for w in &recipe.witnesses {
            svc.record_cex(w);
        }
        svc.commit_pending();
        let sig = svc.signatures(&aig);

        let mut candidates: Vec<Lit> = vec![Lit::FALSE, Lit::TRUE];
        for id in aig.inputs().iter().copied().chain(nodes.iter().copied()) {
            candidates.push(Lit::new(id, false));
            candidates.push(Lit::new(id, true));
        }
        for &target in &nodes {
            let care = window_care_mask(&aig, &sig, &nodes, &roots, target);
            for &cand in &candidates {
                if cand.node() == target {
                    continue;
                }
                let mut work = aig.clone();
                if work.replace(target, cand).is_err() {
                    continue; // would create a cycle: not a legal move
                }
                let replaced = work.cleanup();
                if MiterOracle::new().check(&aig, &replaced) == Verdict::Equivalent {
                    prop_assert!(
                        keep_candidate(&sig, target, cand, &care),
                        "sound candidate {cand:?} for {target:?} was signature-rejected"
                    );
                }
            }
        }
    }
}
