//! # SBM — Scalable Boolean Methods
//!
//! A Rust reproduction of *“Scalable Boolean Methods in a Modern Synthesis
//! Flow”* (Testa et al., DATE 2019). This facade crate re-exports the public
//! API of all the workspace crates so that downstream users can depend on a
//! single crate.
//!
//! The framework consists of four optimization engines (paper Sections III
//! and IV):
//!
//! 1. [`core::bdiff`] — Boolean-difference-based resubstitution,
//! 2. [`core::gradient`] — gradient-based AIG optimization,
//! 3. [`core::hetero`] — heterogeneous elimination for kernel extraction,
//! 4. [`core::mspf`] — MSPF computation with BDDs,
//!
//! built on top of from-scratch substrates: truth tables ([`tt`]), a BDD
//! package ([`bdd`]), an AIG with structural hashing ([`aig`]), an SOP logic
//! network ([`sop`]), a CDCL SAT solver ([`sat`]), and a k-LUT mapper
//! ([`lutmap`]). The [`check`] crate validates the structural invariants of
//! the AIG/BDD/SOP representations; the optimization pipeline can run with
//! those checks at every engine boundary (see
//! [`core::pipeline::PipelineOptions::check_level`]), and the [`budget`]
//! crate bounds engine effort with wall-clock deadlines and cooperative
//! cancellation (see [`core::pipeline::PipelineOptions::deadline`]).
//!
//! # Quickstart
//!
//! ```
//! use sbm::aig::Aig;
//! use sbm::core::script;
//!
//! // Build a tiny network: f = (a & b) | (a & c)
//! let mut aig = Aig::new();
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let c = aig.add_input();
//! let ab = aig.and(a, b);
//! let ac = aig.and(a, c);
//! let f = aig.or(ab, ac);
//! aig.add_output(f);
//!
//! let before = aig.num_ands();
//! let optimized = script::sbm_script(&aig, &script::SbmOptions::default());
//! assert!(optimized.num_ands() <= before);
//! ```

pub use sbm_aig as aig;
pub use sbm_asic as asic;
pub use sbm_bdd as bdd;
pub use sbm_budget as budget;
pub use sbm_check as check;
pub use sbm_core as core;
pub use sbm_epfl as epfl;
pub use sbm_journal as journal;
pub use sbm_lutmap as lutmap;
pub use sbm_metrics as metrics;
pub use sbm_sat as sat;
pub use sbm_sim as sim;
pub use sbm_sop as sop;
pub use sbm_tt as tt;
