/root/repo/target/debug/libsbm_tt.rlib: /root/repo/crates/tt/src/lib.rs /root/repo/crates/tt/src/table.rs
