/root/repo/target/debug/deps/end_to_end-bafd28c9baa14dbe.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-bafd28c9baa14dbe: tests/end_to_end.rs

tests/end_to_end.rs:
