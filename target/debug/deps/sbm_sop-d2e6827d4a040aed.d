/root/repo/target/debug/deps/sbm_sop-d2e6827d4a040aed.d: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/divide.rs crates/sop/src/eliminate.rs crates/sop/src/extract.rs crates/sop/src/factor.rs crates/sop/src/isop.rs crates/sop/src/kernel.rs crates/sop/src/network.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_sop-d2e6827d4a040aed.rmeta: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/divide.rs crates/sop/src/eliminate.rs crates/sop/src/extract.rs crates/sop/src/factor.rs crates/sop/src/isop.rs crates/sop/src/kernel.rs crates/sop/src/network.rs Cargo.toml

crates/sop/src/lib.rs:
crates/sop/src/cover.rs:
crates/sop/src/divide.rs:
crates/sop/src/eliminate.rs:
crates/sop/src/extract.rs:
crates/sop/src/factor.rs:
crates/sop/src/isop.rs:
crates/sop/src/kernel.rs:
crates/sop/src/network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
