/root/repo/target/debug/deps/sbm_core-7aedfbfb19cd8ef9.d: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/bdd_bridge.rs crates/core/src/bdiff.rs crates/core/src/engine.rs crates/core/src/gradient.rs crates/core/src/hetero.rs crates/core/src/mspf.rs crates/core/src/pipeline.rs crates/core/src/refactor.rs crates/core/src/resub.rs crates/core/src/rewrite.rs crates/core/src/script.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/sbm_core-7aedfbfb19cd8ef9: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/bdd_bridge.rs crates/core/src/bdiff.rs crates/core/src/engine.rs crates/core/src/gradient.rs crates/core/src/hetero.rs crates/core/src/mspf.rs crates/core/src/pipeline.rs crates/core/src/refactor.rs crates/core/src/resub.rs crates/core/src/rewrite.rs crates/core/src/script.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/balance.rs:
crates/core/src/bdd_bridge.rs:
crates/core/src/bdiff.rs:
crates/core/src/engine.rs:
crates/core/src/gradient.rs:
crates/core/src/hetero.rs:
crates/core/src/mspf.rs:
crates/core/src/pipeline.rs:
crates/core/src/refactor.rs:
crates/core/src/resub.rs:
crates/core/src/rewrite.rs:
crates/core/src/script.rs:
crates/core/src/verify.rs:
