/root/repo/target/debug/deps/table3-1d13f199a44c8d73.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-1d13f199a44c8d73.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
