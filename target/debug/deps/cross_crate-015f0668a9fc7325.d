/root/repo/target/debug/deps/cross_crate-015f0668a9fc7325.d: tests/cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate-015f0668a9fc7325.rmeta: tests/cross_crate.rs Cargo.toml

tests/cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
