/root/repo/target/debug/deps/fig1-8575940bebbef58e.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-8575940bebbef58e.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
