/root/repo/target/debug/deps/sbm_sop-df7eb5b9c8185eb5.d: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/divide.rs crates/sop/src/eliminate.rs crates/sop/src/extract.rs crates/sop/src/factor.rs crates/sop/src/isop.rs crates/sop/src/kernel.rs crates/sop/src/network.rs

/root/repo/target/debug/deps/libsbm_sop-df7eb5b9c8185eb5.rlib: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/divide.rs crates/sop/src/eliminate.rs crates/sop/src/extract.rs crates/sop/src/factor.rs crates/sop/src/isop.rs crates/sop/src/kernel.rs crates/sop/src/network.rs

/root/repo/target/debug/deps/libsbm_sop-df7eb5b9c8185eb5.rmeta: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/divide.rs crates/sop/src/eliminate.rs crates/sop/src/extract.rs crates/sop/src/factor.rs crates/sop/src/isop.rs crates/sop/src/kernel.rs crates/sop/src/network.rs

crates/sop/src/lib.rs:
crates/sop/src/cover.rs:
crates/sop/src/divide.rs:
crates/sop/src/eliminate.rs:
crates/sop/src/extract.rs:
crates/sop/src/factor.rs:
crates/sop/src/isop.rs:
crates/sop/src/kernel.rs:
crates/sop/src/network.rs:
