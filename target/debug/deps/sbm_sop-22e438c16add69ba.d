/root/repo/target/debug/deps/sbm_sop-22e438c16add69ba.d: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/divide.rs crates/sop/src/eliminate.rs crates/sop/src/extract.rs crates/sop/src/factor.rs crates/sop/src/isop.rs crates/sop/src/kernel.rs crates/sop/src/network.rs

/root/repo/target/debug/deps/sbm_sop-22e438c16add69ba: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/divide.rs crates/sop/src/eliminate.rs crates/sop/src/extract.rs crates/sop/src/factor.rs crates/sop/src/isop.rs crates/sop/src/kernel.rs crates/sop/src/network.rs

crates/sop/src/lib.rs:
crates/sop/src/cover.rs:
crates/sop/src/divide.rs:
crates/sop/src/eliminate.rs:
crates/sop/src/extract.rs:
crates/sop/src/factor.rs:
crates/sop/src/isop.rs:
crates/sop/src/kernel.rs:
crates/sop/src/network.rs:
