/root/repo/target/debug/deps/sbm_bdd-15f171f88c757e6d.d: crates/bdd/src/lib.rs crates/bdd/src/manager.rs crates/bdd/src/pool.rs

/root/repo/target/debug/deps/sbm_bdd-15f171f88c757e6d: crates/bdd/src/lib.rs crates/bdd/src/manager.rs crates/bdd/src/pool.rs

crates/bdd/src/lib.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/pool.rs:
