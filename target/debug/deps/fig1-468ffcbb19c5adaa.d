/root/repo/target/debug/deps/fig1-468ffcbb19c5adaa.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-468ffcbb19c5adaa: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
