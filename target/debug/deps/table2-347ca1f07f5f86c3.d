/root/repo/target/debug/deps/table2-347ca1f07f5f86c3.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-347ca1f07f5f86c3.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
