/root/repo/target/debug/deps/sbm_asic-41da7b8a787b7498.d: crates/asic/src/lib.rs crates/asic/src/designs.rs crates/asic/src/flow.rs crates/asic/src/library.rs crates/asic/src/mapping.rs crates/asic/src/power.rs crates/asic/src/sta.rs

/root/repo/target/debug/deps/sbm_asic-41da7b8a787b7498: crates/asic/src/lib.rs crates/asic/src/designs.rs crates/asic/src/flow.rs crates/asic/src/library.rs crates/asic/src/mapping.rs crates/asic/src/power.rs crates/asic/src/sta.rs

crates/asic/src/lib.rs:
crates/asic/src/designs.rs:
crates/asic/src/flow.rs:
crates/asic/src/library.rs:
crates/asic/src/mapping.rs:
crates/asic/src/power.rs:
crates/asic/src/sta.rs:
