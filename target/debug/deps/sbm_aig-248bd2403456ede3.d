/root/repo/target/debug/deps/sbm_aig-248bd2403456ede3.d: crates/aig/src/lib.rs crates/aig/src/aiger.rs crates/aig/src/cut.rs crates/aig/src/graph.rs crates/aig/src/lit.rs crates/aig/src/mffc.rs crates/aig/src/sim.rs crates/aig/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_aig-248bd2403456ede3.rmeta: crates/aig/src/lib.rs crates/aig/src/aiger.rs crates/aig/src/cut.rs crates/aig/src/graph.rs crates/aig/src/lit.rs crates/aig/src/mffc.rs crates/aig/src/sim.rs crates/aig/src/window.rs Cargo.toml

crates/aig/src/lib.rs:
crates/aig/src/aiger.rs:
crates/aig/src/cut.rs:
crates/aig/src/graph.rs:
crates/aig/src/lit.rs:
crates/aig/src/mffc.rs:
crates/aig/src/sim.rs:
crates/aig/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
