/root/repo/target/debug/deps/sbm_bench-6b77467e767e3061.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_bench-6b77467e767e3061.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
