/root/repo/target/debug/deps/sbm_lutmap-785ef2e7c12b5ede.d: crates/lutmap/src/lib.rs

/root/repo/target/debug/deps/sbm_lutmap-785ef2e7c12b5ede: crates/lutmap/src/lib.rs

crates/lutmap/src/lib.rs:
