/root/repo/target/debug/deps/gradient_ablation-e82e6889e0ccfcfe.d: crates/bench/benches/gradient_ablation.rs

/root/repo/target/debug/deps/gradient_ablation-e82e6889e0ccfcfe: crates/bench/benches/gradient_ablation.rs

crates/bench/benches/gradient_ablation.rs:
