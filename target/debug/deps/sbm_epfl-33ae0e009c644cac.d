/root/repo/target/debug/deps/sbm_epfl-33ae0e009c644cac.d: crates/epfl/src/lib.rs crates/epfl/src/arith.rs crates/epfl/src/control.rs crates/epfl/src/words.rs

/root/repo/target/debug/deps/libsbm_epfl-33ae0e009c644cac.rlib: crates/epfl/src/lib.rs crates/epfl/src/arith.rs crates/epfl/src/control.rs crates/epfl/src/words.rs

/root/repo/target/debug/deps/libsbm_epfl-33ae0e009c644cac.rmeta: crates/epfl/src/lib.rs crates/epfl/src/arith.rs crates/epfl/src/control.rs crates/epfl/src/words.rs

crates/epfl/src/lib.rs:
crates/epfl/src/arith.rs:
crates/epfl/src/control.rs:
crates/epfl/src/words.rs:
