/root/repo/target/debug/deps/bdiff_ablation-79af31c9e57eb57c.d: crates/bench/benches/bdiff_ablation.rs

/root/repo/target/debug/deps/bdiff_ablation-79af31c9e57eb57c: crates/bench/benches/bdiff_ablation.rs

crates/bench/benches/bdiff_ablation.rs:
