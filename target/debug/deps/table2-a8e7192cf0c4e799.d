/root/repo/target/debug/deps/table2-a8e7192cf0c4e799.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-a8e7192cf0c4e799: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
