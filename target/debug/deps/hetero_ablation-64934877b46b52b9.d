/root/repo/target/debug/deps/hetero_ablation-64934877b46b52b9.d: crates/bench/benches/hetero_ablation.rs

/root/repo/target/debug/deps/hetero_ablation-64934877b46b52b9: crates/bench/benches/hetero_ablation.rs

crates/bench/benches/hetero_ablation.rs:
