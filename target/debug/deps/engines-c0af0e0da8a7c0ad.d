/root/repo/target/debug/deps/engines-c0af0e0da8a7c0ad.d: crates/bench/benches/engines.rs Cargo.toml

/root/repo/target/debug/deps/libengines-c0af0e0da8a7c0ad.rmeta: crates/bench/benches/engines.rs Cargo.toml

crates/bench/benches/engines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
