/root/repo/target/debug/deps/table3-c9c89856732dc359.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-c9c89856732dc359: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
