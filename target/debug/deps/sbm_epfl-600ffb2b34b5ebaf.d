/root/repo/target/debug/deps/sbm_epfl-600ffb2b34b5ebaf.d: crates/epfl/src/lib.rs crates/epfl/src/arith.rs crates/epfl/src/control.rs crates/epfl/src/words.rs

/root/repo/target/debug/deps/sbm_epfl-600ffb2b34b5ebaf: crates/epfl/src/lib.rs crates/epfl/src/arith.rs crates/epfl/src/control.rs crates/epfl/src/words.rs

crates/epfl/src/lib.rs:
crates/epfl/src/arith.rs:
crates/epfl/src/control.rs:
crates/epfl/src/words.rs:
