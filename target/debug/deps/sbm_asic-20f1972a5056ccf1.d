/root/repo/target/debug/deps/sbm_asic-20f1972a5056ccf1.d: crates/asic/src/lib.rs crates/asic/src/designs.rs crates/asic/src/flow.rs crates/asic/src/library.rs crates/asic/src/mapping.rs crates/asic/src/power.rs crates/asic/src/sta.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_asic-20f1972a5056ccf1.rmeta: crates/asic/src/lib.rs crates/asic/src/designs.rs crates/asic/src/flow.rs crates/asic/src/library.rs crates/asic/src/mapping.rs crates/asic/src/power.rs crates/asic/src/sta.rs Cargo.toml

crates/asic/src/lib.rs:
crates/asic/src/designs.rs:
crates/asic/src/flow.rs:
crates/asic/src/library.rs:
crates/asic/src/mapping.rs:
crates/asic/src/power.rs:
crates/asic/src/sta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
