/root/repo/target/debug/deps/fig1-77a23c7b0b916288.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-77a23c7b0b916288.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
