/root/repo/target/debug/deps/table3-0f21100e774e3a2d.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-0f21100e774e3a2d.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
