/root/repo/target/debug/deps/sbm_sat-b8defe25a31cc71b.d: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/equiv.rs crates/sat/src/redundancy.rs crates/sat/src/solver.rs crates/sat/src/sweep.rs

/root/repo/target/debug/deps/libsbm_sat-b8defe25a31cc71b.rlib: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/equiv.rs crates/sat/src/redundancy.rs crates/sat/src/solver.rs crates/sat/src/sweep.rs

/root/repo/target/debug/deps/libsbm_sat-b8defe25a31cc71b.rmeta: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/equiv.rs crates/sat/src/redundancy.rs crates/sat/src/solver.rs crates/sat/src/sweep.rs

crates/sat/src/lib.rs:
crates/sat/src/cnf.rs:
crates/sat/src/equiv.rs:
crates/sat/src/redundancy.rs:
crates/sat/src/solver.rs:
crates/sat/src/sweep.rs:
