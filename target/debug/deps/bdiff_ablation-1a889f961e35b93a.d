/root/repo/target/debug/deps/bdiff_ablation-1a889f961e35b93a.d: crates/bench/benches/bdiff_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libbdiff_ablation-1a889f961e35b93a.rmeta: crates/bench/benches/bdiff_ablation.rs Cargo.toml

crates/bench/benches/bdiff_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
