/root/repo/target/debug/deps/sbm_bdd-a8bbc8d9ba2ef306.d: crates/bdd/src/lib.rs crates/bdd/src/manager.rs crates/bdd/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_bdd-a8bbc8d9ba2ef306.rmeta: crates/bdd/src/lib.rs crates/bdd/src/manager.rs crates/bdd/src/pool.rs Cargo.toml

crates/bdd/src/lib.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
