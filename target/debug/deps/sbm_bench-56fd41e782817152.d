/root/repo/target/debug/deps/sbm_bench-56fd41e782817152.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sbm_bench-56fd41e782817152: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
