/root/repo/target/debug/deps/table1-59ee271f57ab9046.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-59ee271f57ab9046.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
