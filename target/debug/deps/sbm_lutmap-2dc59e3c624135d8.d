/root/repo/target/debug/deps/sbm_lutmap-2dc59e3c624135d8.d: crates/lutmap/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_lutmap-2dc59e3c624135d8.rmeta: crates/lutmap/src/lib.rs Cargo.toml

crates/lutmap/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
