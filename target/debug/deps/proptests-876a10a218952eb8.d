/root/repo/target/debug/deps/proptests-876a10a218952eb8.d: crates/sat/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-876a10a218952eb8.rmeta: crates/sat/tests/proptests.rs Cargo.toml

crates/sat/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
