/root/repo/target/debug/deps/sbm_epfl-7997065896f836b3.d: crates/epfl/src/lib.rs crates/epfl/src/arith.rs crates/epfl/src/control.rs crates/epfl/src/words.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_epfl-7997065896f836b3.rmeta: crates/epfl/src/lib.rs crates/epfl/src/arith.rs crates/epfl/src/control.rs crates/epfl/src/words.rs Cargo.toml

crates/epfl/src/lib.rs:
crates/epfl/src/arith.rs:
crates/epfl/src/control.rs:
crates/epfl/src/words.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
