/root/repo/target/debug/deps/table1-9b96558cafc0d4dc.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-9b96558cafc0d4dc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
