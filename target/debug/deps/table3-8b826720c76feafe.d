/root/repo/target/debug/deps/table3-8b826720c76feafe.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-8b826720c76feafe: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
