/root/repo/target/debug/deps/profile-454c57e4ecc8cb2e.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-454c57e4ecc8cb2e: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
