/root/repo/target/debug/deps/sbm_lutmap-603e0c4ce04ec918.d: crates/lutmap/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_lutmap-603e0c4ce04ec918.rmeta: crates/lutmap/src/lib.rs Cargo.toml

crates/lutmap/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
