/root/repo/target/debug/deps/sbm-88b7290defe1bc3e.d: src/lib.rs

/root/repo/target/debug/deps/sbm-88b7290defe1bc3e: src/lib.rs

src/lib.rs:
