/root/repo/target/debug/deps/profile-77b70cceeab9451b.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-77b70cceeab9451b: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
