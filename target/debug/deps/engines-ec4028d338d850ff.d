/root/repo/target/debug/deps/engines-ec4028d338d850ff.d: crates/bench/benches/engines.rs

/root/repo/target/debug/deps/engines-ec4028d338d850ff: crates/bench/benches/engines.rs

crates/bench/benches/engines.rs:
