/root/repo/target/debug/deps/proptests-8be9eee167166010.d: crates/bdd/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8be9eee167166010: crates/bdd/tests/proptests.rs

crates/bdd/tests/proptests.rs:
