/root/repo/target/debug/deps/proptests-1f1a25b73f36d84f.d: crates/sop/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-1f1a25b73f36d84f.rmeta: crates/sop/tests/proptests.rs Cargo.toml

crates/sop/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
