/root/repo/target/debug/deps/proptests-5175c1d271f1bb8b.d: crates/tt/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-5175c1d271f1bb8b.rmeta: crates/tt/tests/proptests.rs Cargo.toml

crates/tt/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
