/root/repo/target/debug/deps/sbm_bench-bbe459d2f5127d71.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_bench-bbe459d2f5127d71.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
