/root/repo/target/debug/deps/proptests-ea7464cbeea1b493.d: crates/tt/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ea7464cbeea1b493: crates/tt/tests/proptests.rs

crates/tt/tests/proptests.rs:
