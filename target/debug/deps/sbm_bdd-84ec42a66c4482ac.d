/root/repo/target/debug/deps/sbm_bdd-84ec42a66c4482ac.d: crates/bdd/src/lib.rs crates/bdd/src/manager.rs crates/bdd/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_bdd-84ec42a66c4482ac.rmeta: crates/bdd/src/lib.rs crates/bdd/src/manager.rs crates/bdd/src/pool.rs Cargo.toml

crates/bdd/src/lib.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
