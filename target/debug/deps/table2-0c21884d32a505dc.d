/root/repo/target/debug/deps/table2-0c21884d32a505dc.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-0c21884d32a505dc: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
