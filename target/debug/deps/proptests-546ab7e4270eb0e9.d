/root/repo/target/debug/deps/proptests-546ab7e4270eb0e9.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-546ab7e4270eb0e9.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
