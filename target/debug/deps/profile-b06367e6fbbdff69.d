/root/repo/target/debug/deps/profile-b06367e6fbbdff69.d: crates/bench/src/bin/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofile-b06367e6fbbdff69.rmeta: crates/bench/src/bin/profile.rs Cargo.toml

crates/bench/src/bin/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
