/root/repo/target/debug/deps/proptests-d01159599c1b8169.d: crates/bdd/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d01159599c1b8169.rmeta: crates/bdd/tests/proptests.rs Cargo.toml

crates/bdd/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
