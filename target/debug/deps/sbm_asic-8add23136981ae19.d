/root/repo/target/debug/deps/sbm_asic-8add23136981ae19.d: crates/asic/src/lib.rs crates/asic/src/designs.rs crates/asic/src/flow.rs crates/asic/src/library.rs crates/asic/src/mapping.rs crates/asic/src/power.rs crates/asic/src/sta.rs

/root/repo/target/debug/deps/libsbm_asic-8add23136981ae19.rlib: crates/asic/src/lib.rs crates/asic/src/designs.rs crates/asic/src/flow.rs crates/asic/src/library.rs crates/asic/src/mapping.rs crates/asic/src/power.rs crates/asic/src/sta.rs

/root/repo/target/debug/deps/libsbm_asic-8add23136981ae19.rmeta: crates/asic/src/lib.rs crates/asic/src/designs.rs crates/asic/src/flow.rs crates/asic/src/library.rs crates/asic/src/mapping.rs crates/asic/src/power.rs crates/asic/src/sta.rs

crates/asic/src/lib.rs:
crates/asic/src/designs.rs:
crates/asic/src/flow.rs:
crates/asic/src/library.rs:
crates/asic/src/mapping.rs:
crates/asic/src/power.rs:
crates/asic/src/sta.rs:
