/root/repo/target/debug/deps/proptest-35bffe8547c168bd.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-35bffe8547c168bd.rmeta: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs Cargo.toml

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
