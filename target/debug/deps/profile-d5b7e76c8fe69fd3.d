/root/repo/target/debug/deps/profile-d5b7e76c8fe69fd3.d: crates/bench/src/bin/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofile-d5b7e76c8fe69fd3.rmeta: crates/bench/src/bin/profile.rs Cargo.toml

crates/bench/src/bin/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
