/root/repo/target/debug/deps/sbm-2e3b5dac279f72ab.d: src/lib.rs

/root/repo/target/debug/deps/libsbm-2e3b5dac279f72ab.rlib: src/lib.rs

/root/repo/target/debug/deps/libsbm-2e3b5dac279f72ab.rmeta: src/lib.rs

src/lib.rs:
