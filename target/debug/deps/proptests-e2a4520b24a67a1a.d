/root/repo/target/debug/deps/proptests-e2a4520b24a67a1a.d: crates/aig/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e2a4520b24a67a1a: crates/aig/tests/proptests.rs

crates/aig/tests/proptests.rs:
