/root/repo/target/debug/deps/sbm_core-3a897a0520ae2a21.d: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/bdd_bridge.rs crates/core/src/bdiff.rs crates/core/src/engine.rs crates/core/src/gradient.rs crates/core/src/hetero.rs crates/core/src/mspf.rs crates/core/src/pipeline.rs crates/core/src/refactor.rs crates/core/src/resub.rs crates/core/src/rewrite.rs crates/core/src/script.rs crates/core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_core-3a897a0520ae2a21.rmeta: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/bdd_bridge.rs crates/core/src/bdiff.rs crates/core/src/engine.rs crates/core/src/gradient.rs crates/core/src/hetero.rs crates/core/src/mspf.rs crates/core/src/pipeline.rs crates/core/src/refactor.rs crates/core/src/resub.rs crates/core/src/rewrite.rs crates/core/src/script.rs crates/core/src/verify.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/balance.rs:
crates/core/src/bdd_bridge.rs:
crates/core/src/bdiff.rs:
crates/core/src/engine.rs:
crates/core/src/gradient.rs:
crates/core/src/hetero.rs:
crates/core/src/mspf.rs:
crates/core/src/pipeline.rs:
crates/core/src/refactor.rs:
crates/core/src/resub.rs:
crates/core/src/rewrite.rs:
crates/core/src/script.rs:
crates/core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
