/root/repo/target/debug/deps/proptests-9ee488166b23f7c9.d: crates/sat/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9ee488166b23f7c9: crates/sat/tests/proptests.rs

crates/sat/tests/proptests.rs:
