/root/repo/target/debug/deps/sbm_bdd-f83e3d14294a4172.d: crates/bdd/src/lib.rs crates/bdd/src/manager.rs crates/bdd/src/pool.rs

/root/repo/target/debug/deps/libsbm_bdd-f83e3d14294a4172.rlib: crates/bdd/src/lib.rs crates/bdd/src/manager.rs crates/bdd/src/pool.rs

/root/repo/target/debug/deps/libsbm_bdd-f83e3d14294a4172.rmeta: crates/bdd/src/lib.rs crates/bdd/src/manager.rs crates/bdd/src/pool.rs

crates/bdd/src/lib.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/pool.rs:
