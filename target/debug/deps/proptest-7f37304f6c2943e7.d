/root/repo/target/debug/deps/proptest-7f37304f6c2943e7.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-7f37304f6c2943e7.rmeta: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs Cargo.toml

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
