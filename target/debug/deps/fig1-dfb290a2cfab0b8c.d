/root/repo/target/debug/deps/fig1-dfb290a2cfab0b8c.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-dfb290a2cfab0b8c: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
