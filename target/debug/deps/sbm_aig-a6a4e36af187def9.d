/root/repo/target/debug/deps/sbm_aig-a6a4e36af187def9.d: crates/aig/src/lib.rs crates/aig/src/aiger.rs crates/aig/src/cut.rs crates/aig/src/graph.rs crates/aig/src/lit.rs crates/aig/src/mffc.rs crates/aig/src/sim.rs crates/aig/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_aig-a6a4e36af187def9.rmeta: crates/aig/src/lib.rs crates/aig/src/aiger.rs crates/aig/src/cut.rs crates/aig/src/graph.rs crates/aig/src/lit.rs crates/aig/src/mffc.rs crates/aig/src/sim.rs crates/aig/src/window.rs Cargo.toml

crates/aig/src/lib.rs:
crates/aig/src/aiger.rs:
crates/aig/src/cut.rs:
crates/aig/src/graph.rs:
crates/aig/src/lit.rs:
crates/aig/src/mffc.rs:
crates/aig/src/sim.rs:
crates/aig/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
