/root/repo/target/debug/deps/table1-5843803cd63b5f31.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5843803cd63b5f31: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
