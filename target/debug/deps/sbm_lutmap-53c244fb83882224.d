/root/repo/target/debug/deps/sbm_lutmap-53c244fb83882224.d: crates/lutmap/src/lib.rs

/root/repo/target/debug/deps/libsbm_lutmap-53c244fb83882224.rlib: crates/lutmap/src/lib.rs

/root/repo/target/debug/deps/libsbm_lutmap-53c244fb83882224.rmeta: crates/lutmap/src/lib.rs

crates/lutmap/src/lib.rs:
