/root/repo/target/debug/deps/sbm_sat-290eba8ec50fcc27.d: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/equiv.rs crates/sat/src/redundancy.rs crates/sat/src/solver.rs crates/sat/src/sweep.rs

/root/repo/target/debug/deps/sbm_sat-290eba8ec50fcc27: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/equiv.rs crates/sat/src/redundancy.rs crates/sat/src/solver.rs crates/sat/src/sweep.rs

crates/sat/src/lib.rs:
crates/sat/src/cnf.rs:
crates/sat/src/equiv.rs:
crates/sat/src/redundancy.rs:
crates/sat/src/solver.rs:
crates/sat/src/sweep.rs:
