/root/repo/target/debug/deps/sbm_tt-e310675ad4e9489c.d: crates/tt/src/lib.rs crates/tt/src/table.rs

/root/repo/target/debug/deps/libsbm_tt-e310675ad4e9489c.rlib: crates/tt/src/lib.rs crates/tt/src/table.rs

/root/repo/target/debug/deps/libsbm_tt-e310675ad4e9489c.rmeta: crates/tt/src/lib.rs crates/tt/src/table.rs

crates/tt/src/lib.rs:
crates/tt/src/table.rs:
