/root/repo/target/debug/deps/hetero_ablation-bff765c66c356c51.d: crates/bench/benches/hetero_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libhetero_ablation-bff765c66c356c51.rmeta: crates/bench/benches/hetero_ablation.rs Cargo.toml

crates/bench/benches/hetero_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
