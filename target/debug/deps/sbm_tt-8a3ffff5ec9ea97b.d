/root/repo/target/debug/deps/sbm_tt-8a3ffff5ec9ea97b.d: crates/tt/src/lib.rs crates/tt/src/table.rs

/root/repo/target/debug/deps/sbm_tt-8a3ffff5ec9ea97b: crates/tt/src/lib.rs crates/tt/src/table.rs

crates/tt/src/lib.rs:
crates/tt/src/table.rs:
