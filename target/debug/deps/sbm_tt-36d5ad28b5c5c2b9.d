/root/repo/target/debug/deps/sbm_tt-36d5ad28b5c5c2b9.d: crates/tt/src/lib.rs crates/tt/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_tt-36d5ad28b5c5c2b9.rmeta: crates/tt/src/lib.rs crates/tt/src/table.rs Cargo.toml

crates/tt/src/lib.rs:
crates/tt/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
