/root/repo/target/debug/deps/proptests-80aff172445f7530.d: crates/sop/tests/proptests.rs

/root/repo/target/debug/deps/proptests-80aff172445f7530: crates/sop/tests/proptests.rs

crates/sop/tests/proptests.rs:
