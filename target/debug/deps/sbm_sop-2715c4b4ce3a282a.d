/root/repo/target/debug/deps/sbm_sop-2715c4b4ce3a282a.d: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/divide.rs crates/sop/src/eliminate.rs crates/sop/src/extract.rs crates/sop/src/factor.rs crates/sop/src/isop.rs crates/sop/src/kernel.rs crates/sop/src/network.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_sop-2715c4b4ce3a282a.rmeta: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/divide.rs crates/sop/src/eliminate.rs crates/sop/src/extract.rs crates/sop/src/factor.rs crates/sop/src/isop.rs crates/sop/src/kernel.rs crates/sop/src/network.rs Cargo.toml

crates/sop/src/lib.rs:
crates/sop/src/cover.rs:
crates/sop/src/divide.rs:
crates/sop/src/eliminate.rs:
crates/sop/src/extract.rs:
crates/sop/src/factor.rs:
crates/sop/src/isop.rs:
crates/sop/src/kernel.rs:
crates/sop/src/network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
