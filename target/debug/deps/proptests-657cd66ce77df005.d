/root/repo/target/debug/deps/proptests-657cd66ce77df005.d: crates/aig/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-657cd66ce77df005.rmeta: crates/aig/tests/proptests.rs Cargo.toml

crates/aig/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
