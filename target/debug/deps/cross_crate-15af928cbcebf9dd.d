/root/repo/target/debug/deps/cross_crate-15af928cbcebf9dd.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-15af928cbcebf9dd: tests/cross_crate.rs

tests/cross_crate.rs:
