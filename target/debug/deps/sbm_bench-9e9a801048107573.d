/root/repo/target/debug/deps/sbm_bench-9e9a801048107573.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsbm_bench-9e9a801048107573.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsbm_bench-9e9a801048107573.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
