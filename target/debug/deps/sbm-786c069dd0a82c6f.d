/root/repo/target/debug/deps/sbm-786c069dd0a82c6f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsbm-786c069dd0a82c6f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
