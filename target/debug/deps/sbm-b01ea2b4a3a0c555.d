/root/repo/target/debug/deps/sbm-b01ea2b4a3a0c555.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsbm-b01ea2b4a3a0c555.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
