/root/repo/target/debug/deps/sbm_sat-57e6d2bb0c903a59.d: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/equiv.rs crates/sat/src/redundancy.rs crates/sat/src/solver.rs crates/sat/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_sat-57e6d2bb0c903a59.rmeta: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/equiv.rs crates/sat/src/redundancy.rs crates/sat/src/solver.rs crates/sat/src/sweep.rs Cargo.toml

crates/sat/src/lib.rs:
crates/sat/src/cnf.rs:
crates/sat/src/equiv.rs:
crates/sat/src/redundancy.rs:
crates/sat/src/solver.rs:
crates/sat/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
