/root/repo/target/debug/deps/gradient_ablation-bb94ef3834902969.d: crates/bench/benches/gradient_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libgradient_ablation-bb94ef3834902969.rmeta: crates/bench/benches/gradient_ablation.rs Cargo.toml

crates/bench/benches/gradient_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
