/root/repo/target/debug/deps/sbm_tt-694a3de0c3e4a81a.d: crates/tt/src/lib.rs crates/tt/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libsbm_tt-694a3de0c3e4a81a.rmeta: crates/tt/src/lib.rs crates/tt/src/table.rs Cargo.toml

crates/tt/src/lib.rs:
crates/tt/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
