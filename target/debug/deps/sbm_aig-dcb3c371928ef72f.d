/root/repo/target/debug/deps/sbm_aig-dcb3c371928ef72f.d: crates/aig/src/lib.rs crates/aig/src/aiger.rs crates/aig/src/cut.rs crates/aig/src/graph.rs crates/aig/src/lit.rs crates/aig/src/mffc.rs crates/aig/src/sim.rs crates/aig/src/window.rs

/root/repo/target/debug/deps/libsbm_aig-dcb3c371928ef72f.rlib: crates/aig/src/lib.rs crates/aig/src/aiger.rs crates/aig/src/cut.rs crates/aig/src/graph.rs crates/aig/src/lit.rs crates/aig/src/mffc.rs crates/aig/src/sim.rs crates/aig/src/window.rs

/root/repo/target/debug/deps/libsbm_aig-dcb3c371928ef72f.rmeta: crates/aig/src/lib.rs crates/aig/src/aiger.rs crates/aig/src/cut.rs crates/aig/src/graph.rs crates/aig/src/lit.rs crates/aig/src/mffc.rs crates/aig/src/sim.rs crates/aig/src/window.rs

crates/aig/src/lib.rs:
crates/aig/src/aiger.rs:
crates/aig/src/cut.rs:
crates/aig/src/graph.rs:
crates/aig/src/lit.rs:
crates/aig/src/mffc.rs:
crates/aig/src/sim.rs:
crates/aig/src/window.rs:
