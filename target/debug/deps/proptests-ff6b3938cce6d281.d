/root/repo/target/debug/deps/proptests-ff6b3938cce6d281.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ff6b3938cce6d281: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
