/root/repo/target/debug/examples/asic_flow-fd680d9519d599f4.d: examples/asic_flow.rs Cargo.toml

/root/repo/target/debug/examples/libasic_flow-fd680d9519d599f4.rmeta: examples/asic_flow.rs Cargo.toml

examples/asic_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
