/root/repo/target/debug/examples/quickstart-d8c3b4bf24b228db.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d8c3b4bf24b228db.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
