/root/repo/target/debug/examples/epfl_flow-105f88cbc910a021.d: examples/epfl_flow.rs

/root/repo/target/debug/examples/epfl_flow-105f88cbc910a021: examples/epfl_flow.rs

examples/epfl_flow.rs:
