/root/repo/target/debug/examples/boolean_difference-03f81f8526d518e8.d: examples/boolean_difference.rs Cargo.toml

/root/repo/target/debug/examples/libboolean_difference-03f81f8526d518e8.rmeta: examples/boolean_difference.rs Cargo.toml

examples/boolean_difference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
