/root/repo/target/debug/examples/asic_flow-badde040101b4c3a.d: examples/asic_flow.rs

/root/repo/target/debug/examples/asic_flow-badde040101b4c3a: examples/asic_flow.rs

examples/asic_flow.rs:
