/root/repo/target/debug/examples/quickstart-dafd04ea913cfeaf.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-dafd04ea913cfeaf: examples/quickstart.rs

examples/quickstart.rs:
