/root/repo/target/debug/examples/boolean_difference-64c61fe2701a408b.d: examples/boolean_difference.rs

/root/repo/target/debug/examples/boolean_difference-64c61fe2701a408b: examples/boolean_difference.rs

examples/boolean_difference.rs:
