/root/repo/target/debug/examples/epfl_flow-b88f03bbda20a308.d: examples/epfl_flow.rs Cargo.toml

/root/repo/target/debug/examples/libepfl_flow-b88f03bbda20a308.rmeta: examples/epfl_flow.rs Cargo.toml

examples/epfl_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
