/root/repo/target/release/examples/_verify_builder-80d7931160eaba77.d: examples/_verify_builder.rs

/root/repo/target/release/examples/_verify_builder-80d7931160eaba77: examples/_verify_builder.rs

examples/_verify_builder.rs:
