/root/repo/target/release/examples/boolean_difference-fae299975d3cbb14.d: examples/boolean_difference.rs

/root/repo/target/release/examples/boolean_difference-fae299975d3cbb14: examples/boolean_difference.rs

examples/boolean_difference.rs:
