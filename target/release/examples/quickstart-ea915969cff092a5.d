/root/repo/target/release/examples/quickstart-ea915969cff092a5.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ea915969cff092a5: examples/quickstart.rs

examples/quickstart.rs:
