/root/repo/target/release/deps/sbm_epfl-65a737a08f575841.d: crates/epfl/src/lib.rs crates/epfl/src/arith.rs crates/epfl/src/control.rs crates/epfl/src/words.rs

/root/repo/target/release/deps/libsbm_epfl-65a737a08f575841.rlib: crates/epfl/src/lib.rs crates/epfl/src/arith.rs crates/epfl/src/control.rs crates/epfl/src/words.rs

/root/repo/target/release/deps/libsbm_epfl-65a737a08f575841.rmeta: crates/epfl/src/lib.rs crates/epfl/src/arith.rs crates/epfl/src/control.rs crates/epfl/src/words.rs

crates/epfl/src/lib.rs:
crates/epfl/src/arith.rs:
crates/epfl/src/control.rs:
crates/epfl/src/words.rs:
