/root/repo/target/release/deps/fig1-2c75d6a0be81b007.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-2c75d6a0be81b007: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
