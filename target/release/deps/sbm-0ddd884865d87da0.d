/root/repo/target/release/deps/sbm-0ddd884865d87da0.d: src/lib.rs

/root/repo/target/release/deps/libsbm-0ddd884865d87da0.rlib: src/lib.rs

/root/repo/target/release/deps/libsbm-0ddd884865d87da0.rmeta: src/lib.rs

src/lib.rs:
