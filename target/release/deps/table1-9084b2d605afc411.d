/root/repo/target/release/deps/table1-9084b2d605afc411.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-9084b2d605afc411: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
