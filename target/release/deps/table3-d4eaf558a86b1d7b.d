/root/repo/target/release/deps/table3-d4eaf558a86b1d7b.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-d4eaf558a86b1d7b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
