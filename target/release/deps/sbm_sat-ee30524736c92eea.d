/root/repo/target/release/deps/sbm_sat-ee30524736c92eea.d: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/equiv.rs crates/sat/src/redundancy.rs crates/sat/src/solver.rs crates/sat/src/sweep.rs

/root/repo/target/release/deps/libsbm_sat-ee30524736c92eea.rlib: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/equiv.rs crates/sat/src/redundancy.rs crates/sat/src/solver.rs crates/sat/src/sweep.rs

/root/repo/target/release/deps/libsbm_sat-ee30524736c92eea.rmeta: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/equiv.rs crates/sat/src/redundancy.rs crates/sat/src/solver.rs crates/sat/src/sweep.rs

crates/sat/src/lib.rs:
crates/sat/src/cnf.rs:
crates/sat/src/equiv.rs:
crates/sat/src/redundancy.rs:
crates/sat/src/solver.rs:
crates/sat/src/sweep.rs:
