/root/repo/target/release/deps/profile-75351d6173bfb733.d: crates/bench/src/bin/profile.rs

/root/repo/target/release/deps/profile-75351d6173bfb733: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
