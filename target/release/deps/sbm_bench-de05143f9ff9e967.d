/root/repo/target/release/deps/sbm_bench-de05143f9ff9e967.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsbm_bench-de05143f9ff9e967.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsbm_bench-de05143f9ff9e967.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
