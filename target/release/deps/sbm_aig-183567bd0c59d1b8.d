/root/repo/target/release/deps/sbm_aig-183567bd0c59d1b8.d: crates/aig/src/lib.rs crates/aig/src/aiger.rs crates/aig/src/cut.rs crates/aig/src/graph.rs crates/aig/src/lit.rs crates/aig/src/mffc.rs crates/aig/src/sim.rs crates/aig/src/window.rs

/root/repo/target/release/deps/libsbm_aig-183567bd0c59d1b8.rlib: crates/aig/src/lib.rs crates/aig/src/aiger.rs crates/aig/src/cut.rs crates/aig/src/graph.rs crates/aig/src/lit.rs crates/aig/src/mffc.rs crates/aig/src/sim.rs crates/aig/src/window.rs

/root/repo/target/release/deps/libsbm_aig-183567bd0c59d1b8.rmeta: crates/aig/src/lib.rs crates/aig/src/aiger.rs crates/aig/src/cut.rs crates/aig/src/graph.rs crates/aig/src/lit.rs crates/aig/src/mffc.rs crates/aig/src/sim.rs crates/aig/src/window.rs

crates/aig/src/lib.rs:
crates/aig/src/aiger.rs:
crates/aig/src/cut.rs:
crates/aig/src/graph.rs:
crates/aig/src/lit.rs:
crates/aig/src/mffc.rs:
crates/aig/src/sim.rs:
crates/aig/src/window.rs:
