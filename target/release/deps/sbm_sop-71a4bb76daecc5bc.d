/root/repo/target/release/deps/sbm_sop-71a4bb76daecc5bc.d: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/divide.rs crates/sop/src/eliminate.rs crates/sop/src/extract.rs crates/sop/src/factor.rs crates/sop/src/isop.rs crates/sop/src/kernel.rs crates/sop/src/network.rs

/root/repo/target/release/deps/libsbm_sop-71a4bb76daecc5bc.rlib: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/divide.rs crates/sop/src/eliminate.rs crates/sop/src/extract.rs crates/sop/src/factor.rs crates/sop/src/isop.rs crates/sop/src/kernel.rs crates/sop/src/network.rs

/root/repo/target/release/deps/libsbm_sop-71a4bb76daecc5bc.rmeta: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/divide.rs crates/sop/src/eliminate.rs crates/sop/src/extract.rs crates/sop/src/factor.rs crates/sop/src/isop.rs crates/sop/src/kernel.rs crates/sop/src/network.rs

crates/sop/src/lib.rs:
crates/sop/src/cover.rs:
crates/sop/src/divide.rs:
crates/sop/src/eliminate.rs:
crates/sop/src/extract.rs:
crates/sop/src/factor.rs:
crates/sop/src/isop.rs:
crates/sop/src/kernel.rs:
crates/sop/src/network.rs:
