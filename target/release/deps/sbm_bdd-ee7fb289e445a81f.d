/root/repo/target/release/deps/sbm_bdd-ee7fb289e445a81f.d: crates/bdd/src/lib.rs crates/bdd/src/manager.rs crates/bdd/src/pool.rs

/root/repo/target/release/deps/libsbm_bdd-ee7fb289e445a81f.rlib: crates/bdd/src/lib.rs crates/bdd/src/manager.rs crates/bdd/src/pool.rs

/root/repo/target/release/deps/libsbm_bdd-ee7fb289e445a81f.rmeta: crates/bdd/src/lib.rs crates/bdd/src/manager.rs crates/bdd/src/pool.rs

crates/bdd/src/lib.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/pool.rs:
