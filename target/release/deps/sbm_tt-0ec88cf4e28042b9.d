/root/repo/target/release/deps/sbm_tt-0ec88cf4e28042b9.d: crates/tt/src/lib.rs crates/tt/src/table.rs

/root/repo/target/release/deps/libsbm_tt-0ec88cf4e28042b9.rlib: crates/tt/src/lib.rs crates/tt/src/table.rs

/root/repo/target/release/deps/libsbm_tt-0ec88cf4e28042b9.rmeta: crates/tt/src/lib.rs crates/tt/src/table.rs

crates/tt/src/lib.rs:
crates/tt/src/table.rs:
