/root/repo/target/release/deps/table2-c9319461245cd312.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-c9319461245cd312: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
