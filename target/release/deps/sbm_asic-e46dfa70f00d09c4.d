/root/repo/target/release/deps/sbm_asic-e46dfa70f00d09c4.d: crates/asic/src/lib.rs crates/asic/src/designs.rs crates/asic/src/flow.rs crates/asic/src/library.rs crates/asic/src/mapping.rs crates/asic/src/power.rs crates/asic/src/sta.rs

/root/repo/target/release/deps/libsbm_asic-e46dfa70f00d09c4.rlib: crates/asic/src/lib.rs crates/asic/src/designs.rs crates/asic/src/flow.rs crates/asic/src/library.rs crates/asic/src/mapping.rs crates/asic/src/power.rs crates/asic/src/sta.rs

/root/repo/target/release/deps/libsbm_asic-e46dfa70f00d09c4.rmeta: crates/asic/src/lib.rs crates/asic/src/designs.rs crates/asic/src/flow.rs crates/asic/src/library.rs crates/asic/src/mapping.rs crates/asic/src/power.rs crates/asic/src/sta.rs

crates/asic/src/lib.rs:
crates/asic/src/designs.rs:
crates/asic/src/flow.rs:
crates/asic/src/library.rs:
crates/asic/src/mapping.rs:
crates/asic/src/power.rs:
crates/asic/src/sta.rs:
