/root/repo/target/release/deps/sbm_lutmap-c4536296ec97e961.d: crates/lutmap/src/lib.rs

/root/repo/target/release/deps/libsbm_lutmap-c4536296ec97e961.rlib: crates/lutmap/src/lib.rs

/root/repo/target/release/deps/libsbm_lutmap-c4536296ec97e961.rmeta: crates/lutmap/src/lib.rs

crates/lutmap/src/lib.rs:
