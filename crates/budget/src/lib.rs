//! Shared resource budgets for long-running Boolean reasoning.
//!
//! The paper's scalability story rests on *bounded* effort: "the BDD
//! computation is bailed out if the maximum memory limit is hit"
//! (Sec. III). A node or conflict cap alone cannot stop a pathological
//! window from stalling a pass forever, so every engine invocation in
//! this workspace additionally carries a [`Budget`]: a cheaply clonable
//! handle bundling an optional wall-clock deadline with a cooperative
//! cancellation flag. Inner loops (the BDD manager's apply loop, the SAT
//! solver's propagation loop) probe the budget on an amortized schedule
//! and bail out with a typed [`BudgetError`] instead of hanging.
//!
//! An unlimited budget is a `None` internally, so the common case — no
//! deadline, no cancellation — costs a single enum-discriminant check
//! per probe and no allocation at all.
//!
//! ```
//! use sbm_budget::{Budget, BudgetError};
//! use std::time::Duration;
//!
//! let unlimited = Budget::unlimited();
//! assert!(unlimited.check().is_ok());
//!
//! let cancellable = Budget::cancellable();
//! cancellable.cancel();
//! assert_eq!(cancellable.check(), Err(BudgetError::Interrupted));
//!
//! let expired = Budget::with_deadline(Duration::ZERO);
//! assert_eq!(expired.check(), Err(BudgetError::DeadlineExceeded));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted computation had to stop early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetError {
    /// The wall-clock deadline passed before the computation finished.
    DeadlineExceeded,
    /// [`Budget::cancel`] was called from another handle.
    Interrupted,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::DeadlineExceeded => write!(f, "wall-clock deadline exceeded"),
            BudgetError::Interrupted => write!(f, "computation cancelled"),
        }
    }
}

impl std::error::Error for BudgetError {}

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    cancel: AtomicBool,
    /// Probe counter shared by all clones; amortizes clock reads in
    /// [`Budget::probe`].
    ticks: AtomicU32,
    /// Link to the budget this one was derived from via
    /// [`Budget::child`]. Cancellation flows *down* the chain (a child
    /// observes every ancestor's flag) but never up.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn new(deadline: Option<Instant>) -> Self {
        Inner {
            deadline,
            cancel: AtomicBool::new(false),
            ticks: AtomicU32::new(0),
            parent: None,
        }
    }

    /// True when this budget or any ancestor has been cancelled. The
    /// chain is short (slice budgets nest one or two levels deep) so a
    /// linear walk of relaxed loads stays cheap enough for probes.
    fn cancelled(&self) -> bool {
        if self.cancel.load(Ordering::Relaxed) {
            return true;
        }
        let mut ancestor = self.parent.as_deref();
        while let Some(inner) = ancestor {
            if inner.cancel.load(Ordering::Relaxed) {
                return true;
            }
            ancestor = inner.parent.as_deref();
        }
        false
    }
}

/// A shared wall-clock deadline plus cooperative cancellation flag.
///
/// Clones share state: cancelling any clone interrupts every holder.
/// [`Budget::unlimited`] (the [`Default`]) never trips and is free to
/// probe, so budget checks can be left unconditionally in hot loops.
///
/// Deadlines are *cooperative*: work stops at the next probe after the
/// deadline passes, not at the deadline itself, so overshoot is bounded
/// by the probe interval of the loop doing the work.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    inner: Option<Arc<Inner>>,
}

impl Budget {
    /// A budget that never trips. Probing it is a single `is_none`
    /// check; no allocation is performed.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget { inner: None }
    }

    /// A budget that trips once `deadline` has elapsed from now.
    #[must_use]
    pub fn with_deadline(deadline: Duration) -> Self {
        Budget {
            // sbm-lint: allow(D002) deadline anchor, not a measurement — budgets trip on wall-clock, Timer has no absolute-deadline API
            inner: Some(Arc::new(Inner::new(Instant::now().checked_add(deadline)))),
        }
    }

    /// A budget with no deadline that can still be cancelled via
    /// [`Budget::cancel`] from another thread.
    #[must_use]
    pub fn cancellable() -> Self {
        Budget {
            inner: Some(Arc::new(Inner::new(None))),
        }
    }

    /// Builds a budget from an optional deadline: `None` yields
    /// [`Budget::unlimited`].
    #[must_use]
    pub fn from_deadline(deadline: Option<Duration>) -> Self {
        deadline.map_or_else(Budget::unlimited, Budget::with_deadline)
    }

    /// True when this handle can never trip.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Requests cancellation; every clone of this budget trips at its
    /// next probe. A no-op on an unlimited budget.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancel.store(true, Ordering::Relaxed);
        }
    }

    /// True once [`Budget::cancel`] has been called on any clone — or,
    /// for a [`Budget::child`], on any clone of an ancestor.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.as_ref().is_some_and(|inner| inner.cancelled())
    }

    /// Derives a sub-budget for one preemption slice: its deadline is
    /// clamped to `min(parent.remaining(), deadline)` and it observes
    /// the parent's cancellation flag, so cancelling the parent trips
    /// the child at its next probe. Cancelling the *child* does not
    /// affect the parent — a preempted slice leaves the enclosing job
    /// budget live for the resume re-run.
    ///
    /// A child of an already-cancelled parent trips immediately; a
    /// child of an unlimited parent behaves like
    /// [`Budget::with_deadline`].
    #[must_use]
    pub fn child(&self, deadline: Duration) -> Budget {
        // sbm-lint: allow(D002) deadline anchor, not a measurement — same clock discipline as with_deadline
        let own = Instant::now().checked_add(deadline);
        let Some(parent) = &self.inner else {
            return Budget {
                inner: Some(Arc::new(Inner::new(own))),
            };
        };
        let clamped = match (parent.deadline, own) {
            (Some(p), Some(c)) => Some(p.min(c)),
            (p, c) => p.or(c),
        };
        let mut inner = Inner::new(clamped);
        inner.parent = Some(Arc::clone(parent));
        Budget {
            inner: Some(Arc::new(inner)),
        }
    }

    /// Checks the budget exactly: `Err` once cancelled or past the
    /// deadline. Reads the wall clock on every call; for hot loops use
    /// [`Budget::probe`] instead.
    pub fn check(&self) -> Result<(), BudgetError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled() {
            return Err(BudgetError::Interrupted);
        }
        if let Some(deadline) = inner.deadline {
            // sbm-lint: allow(D002) deadline comparison, not a measurement — expiry must track the same clock the deadline was anchored to
            if Instant::now() >= deadline {
                return Err(BudgetError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Wall-clock time left before the deadline trips: `None` when there
    /// is no deadline (unlimited or purely cancellable budgets),
    /// `Some(Duration::ZERO)` once expired or cancelled. Lets a caller
    /// decide whether starting another unit of work — or writing a final
    /// checkpoint — still fits the budget.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        if inner.cancelled() {
            return Some(Duration::ZERO);
        }
        let deadline = inner.deadline?;
        // sbm-lint: allow(D002) remaining-time arithmetic against the deadline anchor, not a measurement
        Some(deadline.saturating_duration_since(Instant::now()))
    }

    /// Cheap probe for hot loops (the BDD apply loop, the SAT propagation
    /// loop): cancellation is checked on every call (one relaxed atomic
    /// load), the wall clock only every 256th call — and on the very
    /// first, so an already-expired deadline is seen immediately. The
    /// unlimited case is a single `is_none` check.
    pub fn probe(&self) -> Result<(), BudgetError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled() {
            return Err(BudgetError::Interrupted);
        }
        if let Some(deadline) = inner.deadline {
            // sbm-lint: allow(D002) sampled deadline comparison in the hot-loop probe, not a measurement
            if inner.ticks.fetch_add(1, Ordering::Relaxed) & 0xFF == 0 && Instant::now() >= deadline
            {
                return Err(BudgetError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    // Test code: a panic IS the failure report, so unwrap/expect are the
    // idiomatic way to assert.
    #![allow(clippy::expect_used, clippy::unwrap_used)]

    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.is_cancelled());
        for _ in 0..1000 {
            assert!(b.check().is_ok());
        }
        b.cancel(); // no-op
        assert!(b.check().is_ok());
        assert!(Budget::default().is_unlimited());
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let a = Budget::cancellable();
        let b = a.clone();
        assert!(a.check().is_ok());
        assert!(b.check().is_ok());
        b.cancel();
        assert_eq!(a.check(), Err(BudgetError::Interrupted));
        assert_eq!(b.check(), Err(BudgetError::Interrupted));
        assert!(a.is_cancelled());
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let b = Budget::with_deadline(Duration::ZERO);
        assert_eq!(b.check(), Err(BudgetError::DeadlineExceeded));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert!(b.check().is_ok());
    }

    #[test]
    fn cancellation_outranks_deadline() {
        let b = Budget::with_deadline(Duration::ZERO);
        b.cancel();
        assert_eq!(b.check(), Err(BudgetError::Interrupted));
    }

    #[test]
    fn probe_sees_cancellation_and_expired_deadline_immediately() {
        let b = Budget::cancellable();
        assert!(b.probe().is_ok());
        b.cancel();
        assert_eq!(b.probe(), Err(BudgetError::Interrupted));

        let d = Budget::with_deadline(Duration::ZERO);
        assert_eq!(d.probe(), Err(BudgetError::DeadlineExceeded));

        let far = Budget::with_deadline(Duration::from_secs(3600));
        for _ in 0..2000 {
            assert!(far.probe().is_ok());
        }
        assert!(Budget::unlimited().probe().is_ok());
    }

    #[test]
    fn remaining_tracks_deadline_cancellation_and_absence() {
        assert_eq!(Budget::unlimited().remaining(), None);
        assert_eq!(Budget::cancellable().remaining(), None);
        let c = Budget::cancellable();
        c.cancel();
        assert_eq!(c.remaining(), Some(Duration::ZERO));
        assert_eq!(
            Budget::with_deadline(Duration::ZERO).remaining(),
            Some(Duration::ZERO)
        );
        let far = Budget::with_deadline(Duration::from_secs(3600));
        let left = far.remaining().expect("deadline set");
        assert!(left > Duration::from_secs(3500) && left <= Duration::from_secs(3600));
    }

    #[test]
    fn from_deadline_maps_none_to_unlimited() {
        assert!(Budget::from_deadline(None).is_unlimited());
        let b = Budget::from_deadline(Some(Duration::ZERO));
        assert_eq!(b.check(), Err(BudgetError::DeadlineExceeded));
    }

    #[test]
    fn errors_display_and_compare() {
        assert_eq!(
            BudgetError::DeadlineExceeded.to_string(),
            "wall-clock deadline exceeded"
        );
        assert_eq!(
            BudgetError::Interrupted.to_string(),
            "computation cancelled"
        );
        assert_ne!(BudgetError::DeadlineExceeded, BudgetError::Interrupted);
    }

    #[test]
    fn child_clamps_to_parent_remaining() {
        // Parent expires sooner than the requested child slice: the
        // child inherits the tighter (parent) deadline.
        let parent = Budget::with_deadline(Duration::from_millis(50));
        let child = parent.child(Duration::from_secs(3600));
        let left = child.remaining().expect("child carries a deadline");
        assert!(left <= Duration::from_millis(50));

        // Child slice tighter than the parent: the slice wins.
        let parent = Budget::with_deadline(Duration::from_secs(3600));
        let child = parent.child(Duration::ZERO);
        assert_eq!(child.check(), Err(BudgetError::DeadlineExceeded));
        assert!(parent.check().is_ok());
    }

    #[test]
    fn child_of_unlimited_or_cancellable_parent() {
        let child = Budget::unlimited().child(Duration::from_secs(3600));
        assert!(!child.is_unlimited());
        assert!(child.check().is_ok());
        assert!(child.remaining().is_some());

        let parent = Budget::cancellable();
        let child = parent.child(Duration::from_secs(3600));
        assert!(child.check().is_ok());
        parent.cancel();
        assert_eq!(child.check(), Err(BudgetError::Interrupted));
    }

    #[test]
    fn parent_cancel_trips_child_but_not_vice_versa() {
        let parent = Budget::with_deadline(Duration::from_secs(3600));
        let child = parent.child(Duration::from_secs(1800));
        child.cancel();
        assert_eq!(child.check(), Err(BudgetError::Interrupted));
        assert_eq!(child.probe(), Err(BudgetError::Interrupted));
        assert_eq!(child.remaining(), Some(Duration::ZERO));
        // A preempted slice must leave the job budget untouched.
        assert!(parent.check().is_ok());
        assert!(!parent.is_cancelled());

        // And a fresh slice off the same parent starts clean.
        let next = parent.child(Duration::from_secs(1800));
        assert!(next.check().is_ok());

        parent.cancel();
        assert!(next.is_cancelled());
        assert_eq!(next.probe(), Err(BudgetError::Interrupted));
    }

    #[test]
    fn grandchild_observes_whole_ancestry() {
        let job = Budget::cancellable();
        let slice = job.child(Duration::from_secs(3600));
        let step = slice.child(Duration::from_secs(3600));
        assert!(step.check().is_ok());
        job.cancel();
        assert_eq!(step.check(), Err(BudgetError::Interrupted));
        assert_eq!(slice.check(), Err(BudgetError::Interrupted));
    }

    #[test]
    fn child_of_cancelled_parent_trips_immediately() {
        let parent = Budget::cancellable();
        parent.cancel();
        let child = parent.child(Duration::from_secs(3600));
        assert_eq!(child.check(), Err(BudgetError::Interrupted));
        assert!(child.is_cancelled());
    }

    #[test]
    fn cancel_reaches_worker_threads() {
        let b = Budget::cancellable();
        let worker = b.clone();
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || loop {
                if worker.check().is_err() {
                    break worker.check();
                }
                std::thread::yield_now();
            });
            b.cancel();
            assert_eq!(handle.join().unwrap(), Err(BudgetError::Interrupted));
        });
    }
}
