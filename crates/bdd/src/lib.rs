//! A from-scratch Reduced Ordered Binary Decision Diagram (ROBDD) package.
//!
//! BDDs are directed acyclic graphs representing Boolean functions; each
//! internal node implements the Shannon expansion `f = x·f_x ⊕ x̄·f_x̄`
//! (paper Section II-A, after Bryant \[5\] and Brace–Rudell–Bryant \[15\]).
//! The SBM framework uses BDDs as the reasoning engine for two of its four
//! optimization methods:
//!
//! * **Boolean-difference resubstitution** (Section III): the difference BDD
//!   `∂f/∂g = f ⊕ g` is computed per candidate pair inside a window, under a
//!   strict size threshold;
//! * **MSPF computation** (Section IV-C): permissible functions are derived
//!   via PO cofactoring, exploiting the *strong canonicity* of the unique
//!   table — equal functions always share one node id, so functional
//!   equality is a pointer comparison.
//!
//! Following the paper, the package performs **no dynamic variable
//! reordering** (windows are small) but enforces a **node limit**: any
//! operation that would grow the manager beyond the limit bails out with
//! [`BddError::NodeLimit`], which callers translate into "BDD of size 0 —
//! disregard this node" exactly as described in Section III-C. Managers can
//! additionally carry a wall-clock/cancellation budget
//! ([`BddManager::set_budget`]) probed from inside the apply loop, so a
//! deadline interrupts a long-running operation with
//! [`BddError::DeadlineExceeded`] / [`BddError::Interrupted`].
//!
//! # Example
//!
//! ```
//! use sbm_bdd::BddManager;
//!
//! # fn main() -> Result<(), sbm_bdd::BddError> {
//! let mut mgr = BddManager::new(3);
//! let x0 = mgr.var(0);
//! let x1 = mgr.var(1);
//! let f = mgr.and(x0, x1)?;
//! let g = mgr.or(x0, x1)?;
//! let diff = mgr.xor(f, g)?; // ∂f/∂g
//! // f = diff ⊕ g — strong canonicity makes this a node-id comparison.
//! assert_eq!(mgr.xor(diff, g)?, f);
//! # Ok(())
//! # }
//! ```

mod manager;
mod pool;

pub use manager::{Bdd, BddError, BddManager, BddStats, DEFAULT_NODE_LIMIT};
pub use pool::{BddTally, ManagerPool};
