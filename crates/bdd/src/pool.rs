//! Reusable [`BddManager`] storage for window loops.
//!
//! The SBM engines solve one small BDD problem per optimization window —
//! thousands per pass on large benchmarks. Constructing a fresh manager
//! each time re-allocates the node vector and both hash tables; a pool
//! recycles managers via [`BddManager::reset`], which keeps the
//! allocations warm while giving each window a semantically fresh
//! manager. One pool per worker thread keeps the hot path lock-free.

use crate::manager::BddManager;

/// A stack of idle managers ready for reuse.
#[derive(Debug, Default)]
pub struct ManagerPool {
    free: Vec<BddManager>,
}

impl ManagerPool {
    /// An empty pool.
    pub fn new() -> Self {
        ManagerPool::default()
    }

    /// Takes a manager reset for `num_vars`/`node_limit`, constructing one
    /// only when the pool is empty.
    pub fn acquire(&mut self, num_vars: usize, node_limit: usize) -> BddManager {
        match self.free.pop() {
            Some(mut mgr) => {
                mgr.reset(num_vars, node_limit);
                mgr
            }
            None => BddManager::with_node_limit(num_vars, node_limit),
        }
    }

    /// Returns a manager to the pool for later reuse.
    pub fn release(&mut self, mgr: BddManager) {
        self.free.push(mgr);
    }

    /// Runs `f` with a pooled manager and returns the manager afterwards.
    pub fn with<R>(
        &mut self,
        num_vars: usize,
        node_limit: usize,
        f: impl FnOnce(&mut BddManager) -> R,
    ) -> R {
        let mut mgr = self.acquire(num_vars, node_limit);
        let out = f(&mut mgr);
        self.release(mgr);
        out
    }

    /// Idle managers currently held.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_released_managers() {
        let mut pool = ManagerPool::new();
        let mut mgr = pool.acquire(4, 100);
        let a = mgr.var(0);
        let b = mgr.var(1);
        mgr.and(a, b).unwrap();
        pool.release(mgr);
        assert_eq!(pool.idle(), 1);

        // The recycled manager must behave exactly like a fresh one.
        let mut recycled = pool.acquire(2, 50);
        assert_eq!(pool.idle(), 0);
        assert_eq!(recycled.num_vars(), 2);
        assert_eq!(recycled.num_nodes(), 0);
        assert_eq!(recycled.stats().ite_calls, 0);
        let a = recycled.var(0);
        let b = recycled.var(1);
        let x = recycled.xor(a, b).unwrap();
        assert_eq!(recycled.size(x), 3);
    }

    #[test]
    fn reset_enforces_new_node_limit() {
        let mut pool = ManagerPool::new();
        let mgr = pool.acquire(16, usize::MAX);
        pool.release(mgr);
        let mut tight = pool.acquire(16, 4);
        let mut f = tight.var(0);
        let mut tripped = false;
        for v in 1..16 {
            let x = tight.var(v);
            match tight.xor(f, x) {
                Ok(g) => f = g,
                Err(_) => {
                    tripped = true;
                    break;
                }
            }
        }
        assert!(tripped, "reset manager ignored its node limit");
    }

    #[test]
    fn with_returns_manager_to_pool() {
        let mut pool = ManagerPool::new();
        let size = pool.with(3, 100, |mgr| {
            let a = mgr.var(0);
            let b = mgr.var(2);
            let f = mgr.or(a, b).unwrap();
            mgr.size(f)
        });
        assert_eq!(size, 2);
        assert_eq!(pool.idle(), 1);
    }
}
