//! Reusable [`BddManager`] storage for window loops.
//!
//! The SBM engines solve one small BDD problem per optimization window —
//! thousands per pass on large benchmarks. Constructing a fresh manager
//! each time re-allocates the node vector and both hash tables; a pool
//! recycles managers via [`BddManager::reset`], which keeps the
//! allocations warm while giving each window a semantically fresh
//! manager. One pool per worker thread keeps the hot path lock-free.

use crate::manager::{BddManager, BddStats};

/// Aggregated [`BddStats`] across every manager recycled through a pool.
///
/// A manager's per-problem counters are zeroed by [`BddManager::reset`]
/// when it is recycled, so without an accumulator every counter the BDD
/// layer increments is lost the moment its window completes. The pool
/// harvests stats at [`ManagerPool::release`] time — *before* any reset
/// can touch them — and callers drain the tally into their run reports
/// with [`ManagerPool::drain_tally`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BddTally {
    /// Managers harvested (released to a pool, or reset in place after an
    /// explicit [`BddTally::note`]).
    pub managers_recycled: u64,
    /// Decision nodes live at each harvest point, summed.
    pub nodes_allocated: u64,
    /// Largest single-manager node count seen at harvest.
    pub peak_nodes: u64,
    /// Unique-table hits.
    pub unique_hits: u64,
    /// Computed-table hits.
    pub cache_hits: u64,
    /// ITE recursion steps.
    pub ite_calls: u64,
}

impl BddTally {
    /// Absorbs one manager's statistics.
    pub fn note(&mut self, stats: &BddStats) {
        self.managers_recycled += 1;
        self.nodes_allocated += stats.num_nodes as u64;
        self.peak_nodes = self.peak_nodes.max(stats.num_nodes as u64);
        self.unique_hits += stats.unique_hits;
        self.cache_hits += stats.cache_hits;
        self.ite_calls += stats.ite_calls;
    }

    /// Accumulates another tally into this one (sums; peak takes the max).
    pub fn merge(&mut self, other: &BddTally) {
        self.managers_recycled += other.managers_recycled;
        self.nodes_allocated += other.nodes_allocated;
        self.peak_nodes = self.peak_nodes.max(other.peak_nodes);
        self.unique_hits += other.unique_hits;
        self.cache_hits += other.cache_hits;
        self.ite_calls += other.ite_calls;
    }

    /// True when nothing has been harvested.
    pub fn is_zero(&self) -> bool {
        *self == BddTally::default()
    }
}

/// A stack of idle managers ready for reuse.
#[derive(Debug, Default)]
pub struct ManagerPool {
    free: Vec<BddManager>,
    tally: BddTally,
}

impl ManagerPool {
    /// An empty pool.
    pub fn new() -> Self {
        ManagerPool::default()
    }

    /// Takes a manager reset for `num_vars`/`node_limit`, constructing one
    /// only when the pool is empty.
    pub fn acquire(&mut self, num_vars: usize, node_limit: usize) -> BddManager {
        match self.free.pop() {
            Some(mut mgr) => {
                mgr.reset(num_vars, node_limit);
                mgr
            }
            None => BddManager::with_node_limit(num_vars, node_limit),
        }
    }

    /// Returns a manager to the pool for later reuse, harvesting its
    /// statistics into the pool's [`BddTally`] first (the next
    /// [`ManagerPool::acquire`] resets them to zero).
    pub fn release(&mut self, mgr: BddManager) {
        self.tally.note(&mgr.stats());
        self.free.push(mgr);
    }

    /// Harvests the statistics of a manager the caller is about to reset
    /// in place (instead of releasing it) — e.g. a window loop that keeps
    /// one manager across iterations.
    pub fn note_stats(&mut self, stats: &BddStats) {
        self.tally.note(stats);
    }

    /// Takes the accumulated tally, leaving the pool's accumulator zeroed.
    pub fn drain_tally(&mut self) -> BddTally {
        std::mem::take(&mut self.tally)
    }

    /// Adds an already-harvested tally back into the accumulator — for
    /// callers that drained a tally into a report they then discard.
    pub fn note_tally(&mut self, tally: &BddTally) {
        self.tally.merge(tally);
    }

    /// Runs `f` with a pooled manager and returns the manager afterwards.
    pub fn with<R>(
        &mut self,
        num_vars: usize,
        node_limit: usize,
        f: impl FnOnce(&mut BddManager) -> R,
    ) -> R {
        let mut mgr = self.acquire(num_vars, node_limit);
        let out = f(&mut mgr);
        self.release(mgr);
        out
    }

    /// Idle managers currently held.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_released_managers() {
        let mut pool = ManagerPool::new();
        let mut mgr = pool.acquire(4, 100);
        let a = mgr.var(0);
        let b = mgr.var(1);
        mgr.and(a, b).unwrap();
        pool.release(mgr);
        assert_eq!(pool.idle(), 1);

        // The recycled manager must behave exactly like a fresh one.
        let mut recycled = pool.acquire(2, 50);
        assert_eq!(pool.idle(), 0);
        assert_eq!(recycled.num_vars(), 2);
        assert_eq!(recycled.num_nodes(), 0);
        assert_eq!(recycled.stats().ite_calls, 0);
        let a = recycled.var(0);
        let b = recycled.var(1);
        let x = recycled.xor(a, b).unwrap();
        assert_eq!(recycled.size(x), 3);
    }

    #[test]
    fn reset_enforces_new_node_limit() {
        let mut pool = ManagerPool::new();
        let mgr = pool.acquire(16, usize::MAX);
        pool.release(mgr);
        let mut tight = pool.acquire(16, 4);
        let mut f = tight.var(0);
        let mut tripped = false;
        for v in 1..16 {
            let x = tight.var(v);
            match tight.xor(f, x) {
                Ok(g) => f = g,
                Err(_) => {
                    tripped = true;
                    break;
                }
            }
        }
        assert!(tripped, "reset manager ignored its node limit");
    }

    #[test]
    fn release_harvests_stats_before_reset_can_zero_them() {
        let mut pool = ManagerPool::new();
        let mut mgr = pool.acquire(4, 100);
        let a = mgr.var(0);
        let b = mgr.var(1);
        mgr.and(a, b).unwrap();
        let live = mgr.stats();
        assert!(live.ite_calls > 0, "the AND must exercise ITE");
        pool.release(mgr);

        // The recycled manager starts from zero, but nothing was lost:
        // the pool's tally holds the pre-reset counters.
        let recycled = pool.acquire(4, 100);
        assert_eq!(recycled.stats().ite_calls, 0);
        pool.release(recycled);
        let tally = pool.drain_tally();
        assert_eq!(tally.managers_recycled, 2);
        assert_eq!(tally.ite_calls, live.ite_calls);
        assert_eq!(tally.nodes_allocated, live.num_nodes as u64);
        assert_eq!(tally.peak_nodes, live.num_nodes as u64);
        // Draining resets the accumulator.
        assert!(pool.drain_tally().is_zero());
    }

    #[test]
    fn note_stats_covers_in_place_resets() {
        let mut pool = ManagerPool::new();
        let mut mgr = pool.acquire(3, 100);
        let a = mgr.var(0);
        let b = mgr.var(2);
        mgr.or(a, b).unwrap();
        pool.note_stats(&mgr.stats());
        mgr.reset(3, 100); // in-place recycling, outside the pool
        pool.release(mgr);
        let tally = pool.drain_tally();
        assert_eq!(tally.managers_recycled, 2);
        assert!(tally.ite_calls > 0);
    }

    #[test]
    fn tally_merge_sums_and_maxes() {
        let a = BddTally {
            managers_recycled: 1,
            nodes_allocated: 10,
            peak_nodes: 10,
            unique_hits: 3,
            cache_hits: 2,
            ite_calls: 7,
        };
        let mut b = BddTally {
            managers_recycled: 2,
            nodes_allocated: 5,
            peak_nodes: 4,
            unique_hits: 1,
            cache_hits: 0,
            ite_calls: 2,
        };
        b.merge(&a);
        assert_eq!(
            b,
            BddTally {
                managers_recycled: 3,
                nodes_allocated: 15,
                peak_nodes: 10,
                unique_hits: 4,
                cache_hits: 2,
                ite_calls: 9,
            }
        );
    }

    #[test]
    fn with_returns_manager_to_pool() {
        let mut pool = ManagerPool::new();
        let size = pool.with(3, 100, |mgr| {
            let a = mgr.var(0);
            let b = mgr.var(2);
            let f = mgr.or(a, b).unwrap();
            mgr.size(f)
        });
        assert_eq!(size, 2);
        assert_eq!(pool.idle(), 1);
    }
}
