//! The [`BddManager`] and its operations.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use sbm_budget::{Budget, BudgetError};
use sbm_tt::TruthTable;

/// A handle to a BDD node owned by a [`BddManager`].
///
/// Handles are plain indices; they are only meaningful together with the
/// manager that produced them. Thanks to strong canonicity, two handles from
/// the same manager represent the same Boolean function **iff** they are
/// equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-zero function.
    pub const ZERO: Bdd = Bdd(0);
    /// The constant-one function.
    pub const ONE: Bdd = Bdd(1);

    /// Raw index of the node inside its manager (0 and 1 are the terminals).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is a terminal (constant) node.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Test-support: fabricates a handle from a raw index, with no
    /// guarantee a node exists there. Used by `sbm-check` fixtures to
    /// seed dangling edges.
    #[doc(hidden)]
    pub fn from_raw_index(index: usize) -> Bdd {
        Bdd(index as u32)
    }
}

/// Error raised by BDD operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BddError {
    /// The operation would grow the manager beyond its node limit.
    ///
    /// The paper (Section III-C) prescribes this exact behaviour: "we set a
    /// maximum memory limit for the employed BDD package. The BDD computation
    /// is bailed out if the maximum memory limit is hit."
    NodeLimit,
    /// The [`Budget`] attached via [`BddManager::set_budget`] ran out of
    /// wall-clock time mid-operation.
    DeadlineExceeded,
    /// The [`Budget`] attached via [`BddManager::set_budget`] was
    /// cancelled from another thread mid-operation.
    Interrupted,
}

impl BddError {
    /// True for the budget-driven early exits ([`BddError::DeadlineExceeded`]
    /// and [`BddError::Interrupted`]), which signal "stop working" rather
    /// than "this particular computation blew up" ([`BddError::NodeLimit`]).
    pub fn is_budget(self) -> bool {
        matches!(self, BddError::DeadlineExceeded | BddError::Interrupted)
    }
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit => write!(f, "bdd manager node limit exceeded"),
            BddError::DeadlineExceeded => write!(f, "bdd operation exceeded its deadline"),
            BddError::Interrupted => write!(f, "bdd operation cancelled"),
        }
    }
}

impl Error for BddError {}

impl From<BudgetError> for BddError {
    fn from(e: BudgetError) -> Self {
        match e {
            BudgetError::DeadlineExceeded => BddError::DeadlineExceeded,
            BudgetError::Interrupted => BddError::Interrupted,
        }
    }
}

/// An internal decision node: `ite(var, hi, lo)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

/// Usage statistics of a manager, for runtime/memory instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BddStats {
    /// Total decision nodes allocated (not counting terminals).
    pub num_nodes: usize,
    /// Unique-table hits (canonicity reuse).
    pub unique_hits: u64,
    /// Computed-table (memoization) hits.
    pub cache_hits: u64,
    /// Number of ITE recursion steps performed.
    pub ite_calls: u64,
}

/// Memoization key for ternary ITE.
type IteKey = (Bdd, Bdd, Bdd);

/// A ROBDD manager with a fixed variable order (0 < 1 < … < n−1), a unique
/// table for strong canonicity and a computed table for memoization.
///
/// Managers are cheap to create; the SBM engines create one per window, which
/// doubles as the paper's "free the memory used for the BDD of the difference
/// at each iteration" strategy for large benchmarks.
///
/// # Example
///
/// ```
/// use sbm_bdd::BddManager;
///
/// # fn main() -> Result<(), sbm_bdd::BddError> {
/// let mut mgr = BddManager::new(2);
/// let a = mgr.var(0);
/// let b = mgr.var(1);
/// let f = mgr.xor(a, b)?;
/// assert_eq!(mgr.size(f), 3); // x0 node + two x1 nodes
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BddManager {
    num_vars: usize,
    nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    ite_cache: HashMap<IteKey, Bdd>,
    node_limit: usize,
    budget: Budget,
    stats: BddStats,
}

/// Default decision-node cap for [`BddManager::new`]: 2²⁰ nodes.
///
/// At 12 bytes of node storage (plus unique/computed-table overhead) this
/// bounds a runaway manager to tens of megabytes — far above what any
/// windowed engine needs, but a real memory safety valve instead of the
/// previous implicit `usize::MAX`. Callers that genuinely need more pass
/// an explicit cap to [`BddManager::with_node_limit`].
pub const DEFAULT_NODE_LIMIT: usize = 1 << 20;

impl BddManager {
    /// Creates a manager over `num_vars` variables capped at
    /// [`DEFAULT_NODE_LIMIT`] decision nodes.
    pub fn new(num_vars: usize) -> Self {
        Self::with_node_limit(num_vars, DEFAULT_NODE_LIMIT)
    }

    /// Creates a manager whose total decision-node count may not exceed
    /// `node_limit`. Operations that would exceed it return
    /// [`BddError::NodeLimit`].
    pub fn with_node_limit(num_vars: usize, node_limit: usize) -> Self {
        BddManager {
            num_vars,
            // nodes[0], nodes[1] are dummies standing in for the terminals so
            // that indices line up with `Bdd` handles.
            nodes: vec![
                Node {
                    var: u32::MAX,
                    lo: Bdd::ZERO,
                    hi: Bdd::ZERO,
                },
                Node {
                    var: u32::MAX,
                    lo: Bdd::ONE,
                    hi: Bdd::ONE,
                },
            ],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            node_limit,
            budget: Budget::unlimited(),
            stats: BddStats::default(),
        }
    }

    /// Attaches a [`Budget`] probed from inside the apply (ITE) loop, so
    /// a deadline or cancellation interrupts long-running operations with
    /// [`BddError::DeadlineExceeded`] / [`BddError::Interrupted`] instead
    /// of letting them run to completion. [`BddManager::reset`] detaches
    /// the budget again.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The number of variables of this manager.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total decision nodes currently allocated.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len() - 2
    }

    /// Current usage statistics.
    pub fn stats(&self) -> BddStats {
        BddStats {
            num_nodes: self.num_nodes(),
            ..self.stats
        }
    }

    /// Clears the computed table (memoization cache) without discarding any
    /// nodes. The SBM Boolean-difference loop calls this between iterations
    /// to bound memory, mirroring the paper's per-iteration freeing.
    pub fn clear_cache(&mut self) {
        self.ite_cache.clear();
    }

    /// Re-initializes the manager for a fresh problem over `num_vars`
    /// variables with `node_limit`, discarding every node but **retaining
    /// the allocations** of the node vector and both hash tables. Window
    /// loops (one BDD problem per window) reset one manager instead of
    /// constructing thousands; see [`ManagerPool`](crate::ManagerPool).
    pub fn reset(&mut self, num_vars: usize, node_limit: usize) {
        self.num_vars = num_vars;
        self.node_limit = node_limit;
        self.nodes.truncate(2);
        self.unique.clear();
        self.ite_cache.clear();
        self.budget = Budget::unlimited();
        self.stats = BddStats::default();
    }

    /// The constant-zero function.
    pub fn zero(&self) -> Bdd {
        Bdd::ZERO
    }

    /// The constant-one function.
    pub fn one(&self) -> Bdd {
        Bdd::ONE
    }

    /// The projection function for variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: usize) -> Bdd {
        assert!(var < self.num_vars, "variable {var} out of range");
        // Projection nodes are exempt from the node limit: there are at
        // most `num_vars` of them and every caller needs them to exist.
        self.mk_unbounded(var as u32, Bdd::ZERO, Bdd::ONE)
    }

    /// The complemented projection function for variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn nvar(&mut self, var: usize) -> Bdd {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.mk_unbounded(var as u32, Bdd::ONE, Bdd::ZERO)
    }

    /// Like `mk` but exempt from the node limit (projection functions).
    fn mk_unbounded(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        let node = Node { var, lo, hi };
        if let Some(&b) = self.unique.get(&node) {
            self.stats.unique_hits += 1;
            return b;
        }
        let b = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, b);
        b
    }

    /// Looks up or creates the canonical node `(var, lo, hi)`.
    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Result<Bdd, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        let node = Node { var, lo, hi };
        if let Some(&b) = self.unique.get(&node) {
            self.stats.unique_hits += 1;
            return Ok(b);
        }
        if self.num_nodes() >= self.node_limit {
            return Err(BddError::NodeLimit);
        }
        let b = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, b);
        Ok(b)
    }

    /// Variable index of the root of `f` (`u32::MAX` for terminals).
    fn top_var(&self, f: Bdd) -> u32 {
        self.nodes[f.index()].var
    }

    /// Children of `f` cofactored on `var` at the root level.
    fn cofactors_at(&self, f: Bdd, var: u32) -> (Bdd, Bdd) {
        let n = &self.nodes[f.index()];
        if f.is_const() || n.var != var {
            (f, f)
        } else {
            (n.lo, n.hi)
        }
    }

    /// If-then-else: `ite(f, g, h) = f·g + f̄·h`. The universal connective —
    /// all binary operations reduce to it.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node limit is hit,
    /// or a budget error ([`BddError::DeadlineExceeded`] /
    /// [`BddError::Interrupted`]) if the budget attached via
    /// [`BddManager::set_budget`] trips.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Result<Bdd, BddError> {
        self.stats.ite_calls += 1;
        // Cooperative bailout: cancellation every step, clock amortized.
        self.budget.probe()?;
        // Terminal cases.
        if f == Bdd::ONE {
            return Ok(g);
        }
        if f == Bdd::ZERO {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Bdd::ONE && h == Bdd::ZERO {
            return Ok(f);
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            self.stats.cache_hits += 1;
            return Ok(r);
        }
        let var = self.top_var(f).min(self.top_var(g)).min(self.top_var(h));
        let (f0, f1) = self.cofactors_at(f, var);
        let (g0, g1) = self.cofactors_at(g, var);
        let (h0, h1) = self.cofactors_at(h, var);
        let lo = self.ite(f0, g0, h0)?;
        let hi = self.ite(f1, g1, h1)?;
        let r = self.mk(var, lo, hi)?;
        self.ite_cache.insert(key, r);
        Ok(r)
    }

    /// Conjunction `f ∧ g`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        self.ite(f, g, Bdd::ZERO)
    }

    /// Disjunction `f ∨ g`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        self.ite(f, Bdd::ONE, g)
    }

    /// Exclusive or `f ⊕ g` — the paper's Boolean difference `∂f/∂g`
    /// (Section III-A).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        let ng = self.not(g)?;
        self.ite(f, ng, g)
    }

    /// Exclusive nor `f ⊙ g`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        let ng = self.not(g)?;
        self.ite(f, g, ng)
    }

    /// Negation `f̄`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn not(&mut self, f: Bdd) -> Result<Bdd, BddError> {
        self.ite(f, Bdd::ZERO, Bdd::ONE)
    }

    /// Implication check `f ⇒ g` (i.e. `f ∧ ḡ = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Result<bool, BddError> {
        let ng = self.not(g)?;
        Ok(self.and(f, ng)? == Bdd::ZERO)
    }

    /// Cofactor of `f` with respect to `var = value`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node limit is hit.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor(&mut self, f: Bdd, var: usize, value: bool) -> Result<Bdd, BddError> {
        assert!(var < self.num_vars);
        self.cofactor_rec(f, var as u32, value, &mut HashMap::new())
    }

    fn cofactor_rec(
        &mut self,
        f: Bdd,
        var: u32,
        value: bool,
        memo: &mut HashMap<Bdd, Bdd>,
    ) -> Result<Bdd, BddError> {
        if f.is_const() || self.top_var(f) > var {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        let node = self.nodes[f.index()];
        let r = if node.var == var {
            if value {
                node.hi
            } else {
                node.lo
            }
        } else {
            let lo = self.cofactor_rec(node.lo, var, value, memo)?;
            let hi = self.cofactor_rec(node.hi, var, value, memo)?;
            self.mk(node.var, lo, hi)?
        };
        memo.insert(f, r);
        Ok(r)
    }

    /// Existential quantification `∃ var. f`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn exists(&mut self, f: Bdd, var: usize) -> Result<Bdd, BddError> {
        let c0 = self.cofactor(f, var, false)?;
        let c1 = self.cofactor(f, var, true)?;
        self.or(c0, c1)
    }

    /// Universal quantification `∀ var. f`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn forall(&mut self, f: Bdd, var: usize) -> Result<Bdd, BddError> {
        let c0 = self.cofactor(f, var, false)?;
        let c1 = self.cofactor(f, var, true)?;
        self.and(c0, c1)
    }

    /// The number of decision nodes in the DAG rooted at `f` — the paper's
    /// `size(bdd)` used as a lower bound on the AIG implementation cost
    /// (Section III-C, lines 8–10 of Alg. 1).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            count += 1;
            let n = &self.nodes[b.index()];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Evaluates `f` under a full assignment (`assignment[v]` = value of
    /// variable `v`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < num_vars`.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars);
        let mut cur = f;
        while !cur.is_const() {
            let n = &self.nodes[cur.index()];
            cur = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
        cur == Bdd::ONE
    }

    /// Number of satisfying assignments over all `num_vars` variables.
    pub fn sat_count(&self, f: Bdd) -> u64 {
        let mut memo: HashMap<Bdd, u64> = HashMap::new();
        self.sat_count_rec(f, &mut memo) // counted at level 0
    }

    fn sat_count_rec(&self, f: Bdd, memo: &mut HashMap<Bdd, u64>) -> u64 {
        // Count assignments of variables var(f)..num_vars, then scale.
        fn level(mgr: &BddManager, f: Bdd) -> u32 {
            if f.is_const() {
                mgr.num_vars as u32
            } else {
                mgr.nodes[f.index()].var
            }
        }
        fn rec(mgr: &BddManager, f: Bdd, memo: &mut HashMap<Bdd, u64>) -> u64 {
            if f == Bdd::ZERO {
                return 0;
            }
            if f == Bdd::ONE {
                return 1;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let n = mgr.nodes[f.index()];
            let lo = rec(mgr, n.lo, memo) << (level(mgr, n.lo) - n.var - 1);
            let hi = rec(mgr, n.hi, memo) << (level(mgr, n.hi) - n.var - 1);
            let c = lo + hi;
            memo.insert(f, c);
            c
        }
        rec(self, f, memo) << level(self, f)
    }

    /// The set of variables `f` depends on, ascending.
    pub fn support(&self, f: Bdd) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            let n = &self.nodes[b.index()];
            vars.insert(n.var as usize);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }

    /// Converts `f` to a truth table over the manager's variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > sbm_tt::MAX_VARS`.
    pub fn to_truth_table(&self, f: Bdd) -> TruthTable {
        let mut memo: HashMap<Bdd, TruthTable> = HashMap::new();
        self.to_tt_rec(f, &mut memo)
    }

    fn to_tt_rec(&self, f: Bdd, memo: &mut HashMap<Bdd, TruthTable>) -> TruthTable {
        if f == Bdd::ZERO {
            return TruthTable::zero(self.num_vars);
        }
        if f == Bdd::ONE {
            return TruthTable::one(self.num_vars);
        }
        if let Some(t) = memo.get(&f) {
            return t.clone();
        }
        let n = self.nodes[f.index()];
        let lo = self.to_tt_rec(n.lo, memo);
        let hi = self.to_tt_rec(n.hi, memo);
        let x = TruthTable::var(self.num_vars, n.var as usize);
        let t = x.ite(&hi, &lo);
        memo.insert(f, t.clone());
        t
    }

    /// Builds a BDD from a truth table (variables map 1:1).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node limit is hit.
    ///
    /// # Panics
    ///
    /// Panics if the table has more variables than the manager.
    pub fn from_truth_table(&mut self, t: &TruthTable) -> Result<Bdd, BddError> {
        assert!(t.num_vars() <= self.num_vars);
        self.build_from_tt(t, 0)
    }

    fn build_from_tt(&mut self, t: &TruthTable, var: usize) -> Result<Bdd, BddError> {
        if t.is_zero() {
            return Ok(Bdd::ZERO);
        }
        if t.is_one() {
            return Ok(Bdd::ONE);
        }
        // Expand on the lowest remaining variable: roots carry the smallest
        // variable index in this manager's order.
        debug_assert!(var < t.num_vars(), "non-constant table with no vars left");
        let lo = self.build_from_tt(&t.cofactor0(var), var + 1)?;
        let hi = self.build_from_tt(&t.cofactor1(var), var + 1)?;
        self.mk(var as u32, lo, hi)
    }

    /// Visits the DAG rooted at `f` bottom-up, calling `visit(node, var, lo,
    /// hi)` once per decision node in a topological order (children first).
    /// Used by the BDD→AIG strashing bridge in `sbm-core`.
    pub fn walk_postorder<F: FnMut(Bdd, usize, Bdd, Bdd)>(&self, f: Bdd, mut visit: F) {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![(f, false)];
        while let Some((b, expanded)) = stack.pop() {
            if b.is_const() {
                continue;
            }
            if expanded {
                let n = &self.nodes[b.index()];
                visit(b, n.var as usize, n.lo, n.hi);
                continue;
            }
            if !seen.insert(b) {
                continue;
            }
            let n = &self.nodes[b.index()];
            stack.push((b, true));
            stack.push((n.lo, false));
            stack.push((n.hi, false));
        }
    }

    // ------------------------------------------------------------------
    // Raw introspection — used by `sbm-check` to validate reducedness,
    // variable ordering and unique-table consistency from outside.
    // ------------------------------------------------------------------

    /// The `(var, lo, hi)` triple of decision node `b`; `None` for the
    /// two terminals and out-of-range handles.
    pub fn node_triple(&self, b: Bdd) -> Option<(usize, Bdd, Bdd)> {
        if b.is_const() {
            return None;
        }
        self.nodes
            .get(b.index())
            .map(|n| (n.var as usize, n.lo, n.hi))
    }

    /// The unique-table entries (`(var, lo, hi)` → handle), in ascending
    /// triple order so validation walks — and the diagnostics they
    /// produce — are run-to-run deterministic.
    pub fn unique_entries(&self) -> impl Iterator<Item = ((usize, Bdd, Bdd), Bdd)> + '_ {
        let mut entries: Vec<((usize, Bdd, Bdd), Bdd)> = self
            .unique
            .iter()
            .map(|(n, &b)| ((n.var as usize, n.lo, n.hi), b))
            .collect();
        entries.sort_unstable();
        entries.into_iter()
    }

    /// Number of unique-table entries.
    pub fn unique_len(&self) -> usize {
        self.unique.len()
    }

    // ------------------------------------------------------------------
    // Corruption injectors — bypass the unique table and the reduction
    // rule so `sbm-check` tests can seed known-bad structures. Never
    // called by the BDD operations.
    // ------------------------------------------------------------------

    /// Test-support: appends the decision node `(var, lo, hi)` verbatim
    /// (no reduction, no unique-table lookup) and registers it in the
    /// unique table.
    #[doc(hidden)]
    pub fn corrupt_push_raw_node(&mut self, var: usize, lo: Bdd, hi: Bdd) -> Bdd {
        let node = Node {
            var: var as u32,
            lo,
            hi,
        };
        let b = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, b);
        b
    }

    /// Test-support: inserts a raw unique-table entry, possibly stale
    /// (pointing at a handle with no backing node) or mismatched.
    #[doc(hidden)]
    pub fn corrupt_insert_unique(&mut self, var: usize, lo: Bdd, hi: Bdd, handle: Bdd) {
        self.unique.insert(
            Node {
                var: var as u32,
                lo,
                hi,
            },
            handle,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        let mgr = BddManager::new(2);
        assert_eq!(mgr.size(Bdd::ZERO), 0);
        assert_eq!(mgr.size(Bdd::ONE), 0);
        assert_eq!(mgr.sat_count(Bdd::ONE), 4);
        assert_eq!(mgr.sat_count(Bdd::ZERO), 0);
    }

    #[test]
    fn canonicity() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let ab = mgr.and(a, b).unwrap();
        let ba = mgr.and(b, a).unwrap();
        assert_eq!(ab, ba);
        // (a & b) | a == a
        let f = mgr.or(ab, a).unwrap();
        assert_eq!(f, a);
    }

    #[test]
    fn xor_identities() {
        let mut mgr = BddManager::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let x = mgr.xor(a, b).unwrap();
        let back = mgr.xor(x, b).unwrap();
        assert_eq!(back, a);
        let zero = mgr.xor(a, a).unwrap();
        assert_eq!(zero, Bdd::ZERO);
        let na = mgr.not(a).unwrap();
        let one = mgr.xor(a, na).unwrap();
        assert_eq!(one, Bdd::ONE);
    }

    #[test]
    fn sat_count_majority() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b).unwrap();
        let ac = mgr.and(a, c).unwrap();
        let bc = mgr.and(b, c).unwrap();
        let t = mgr.or(ab, ac).unwrap();
        let maj = mgr.or(t, bc).unwrap();
        assert_eq!(mgr.sat_count(maj), 4);
    }

    #[test]
    fn cofactor_and_quantify() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b).unwrap();
        assert_eq!(mgr.cofactor(f, 0, true).unwrap(), b);
        assert_eq!(mgr.cofactor(f, 0, false).unwrap(), Bdd::ZERO);
        assert_eq!(mgr.exists(f, 0).unwrap(), b);
        assert_eq!(mgr.forall(f, 0).unwrap(), Bdd::ZERO);
    }

    #[test]
    fn node_limit_bails_out() {
        // An XOR chain needs ~2 nodes per level; a tiny limit must trip.
        let mut mgr = BddManager::with_node_limit(16, 8);
        let mut f = mgr.var(0);
        let mut tripped = false;
        for v in 1..16 {
            let x = mgr.var(v);
            match mgr.xor(f, x) {
                Ok(g) => f = g,
                Err(BddError::NodeLimit) => {
                    tripped = true;
                    break;
                }
                Err(other) => panic!("unbudgeted manager raised {other:?}"),
            }
        }
        assert!(tripped, "node limit never tripped");
    }

    #[test]
    fn default_node_limit_is_bounded_and_trips() {
        // `new` must no longer hand out an effectively unlimited manager.
        let mut mgr = BddManager::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        assert!(mgr.and(a, b).is_ok(), "tiny op must fit the default cap");
        assert_eq!(
            BddManager::with_node_limit(4, DEFAULT_NODE_LIMIT).num_vars(),
            mgr.num_vars()
        );
        const { assert!(DEFAULT_NODE_LIMIT < usize::MAX) };
    }

    #[test]
    fn cancelled_budget_interrupts_ite() {
        let mut mgr = BddManager::new(8);
        let budget = Budget::cancellable();
        mgr.set_budget(budget.clone());
        let a = mgr.var(0);
        let b = mgr.var(1);
        assert!(mgr.and(a, b).is_ok(), "budget not tripped yet");
        budget.cancel();
        let c = mgr.var(2);
        let d = mgr.var(3);
        let err = mgr.and(c, d).unwrap_err();
        assert_eq!(err, BddError::Interrupted);
        assert!(err.is_budget());
        assert!(!BddError::NodeLimit.is_budget());
    }

    #[test]
    fn expired_deadline_interrupts_ite() {
        let mut mgr = BddManager::new(4);
        mgr.set_budget(Budget::with_deadline(std::time::Duration::ZERO));
        let a = mgr.var(0);
        let b = mgr.var(1);
        assert_eq!(mgr.xor(a, b), Err(BddError::DeadlineExceeded));
    }

    #[test]
    fn reset_detaches_the_budget() {
        let mut mgr = BddManager::new(4);
        let budget = Budget::cancellable();
        budget.cancel();
        mgr.set_budget(budget);
        mgr.reset(4, DEFAULT_NODE_LIMIT);
        let a = mgr.var(0);
        let b = mgr.var(1);
        assert!(mgr.and(a, b).is_ok(), "reset must clear the budget");
    }

    #[test]
    fn truth_table_round_trip() {
        let mut mgr = BddManager::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let ab = mgr.and(a, b).unwrap();
        let cd = mgr.xor(c, d).unwrap();
        let f = mgr.or(ab, cd).unwrap();
        let tt = mgr.to_truth_table(f);
        let back = mgr.from_truth_table(&tt).unwrap();
        assert_eq!(back, f, "round trip must hit the same canonical node");
    }

    #[test]
    fn eval_agrees_with_truth_table() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.or(a, b).unwrap();
        let f = mgr.and(ab, c).unwrap();
        let tt = mgr.to_truth_table(f);
        for m in 0..8usize {
            let assignment = [(m & 1) == 1, (m >> 1) & 1 == 1, (m >> 2) & 1 == 1];
            assert_eq!(mgr.eval(f, &assignment), tt.bit(m));
        }
    }

    #[test]
    fn support_is_minimal() {
        let mut mgr = BddManager::new(4);
        let a = mgr.var(0);
        let c = mgr.var(2);
        let f = mgr.and(a, c).unwrap();
        assert_eq!(mgr.support(f), vec![0, 2]);
    }

    #[test]
    fn size_counts_dag_nodes() {
        let mut mgr = BddManager::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let x = mgr.xor(a, b).unwrap();
        // x0 root plus two distinct x1 children.
        assert_eq!(mgr.size(x), 3);
        assert_eq!(mgr.size(a), 1);
    }

    #[test]
    fn walk_postorder_children_first() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b).unwrap();
        let f = mgr.or(ab, c).unwrap();
        let mut order = Vec::new();
        mgr.walk_postorder(f, |node, _, _, _| order.push(node));
        let pos = |n: Bdd| order.iter().position(|&x| x == n).unwrap();
        // Every node must appear after its children.
        for &n in &order {
            mgr.walk_postorder(n, |child, _, _, _| {
                if child != n {
                    assert!(pos(child) < pos(n));
                }
            });
        }
        assert_eq!(order.len(), mgr.size(f));
    }
}
