// Test code: a panic IS the failure report (clippy.toml only relaxes
// unwrap/expect inside #[test] fns, not test-file helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Property tests: BDD operations must agree with truth-table evaluation,
//! and canonicity must equate equal functions.

use proptest::prelude::*;
use sbm_bdd::{Bdd, BddManager};
use sbm_tt::TruthTable;

/// A random Boolean expression tree over `n` variables, as nested ops.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn arb_expr(num_vars: usize) -> impl Strategy<Value = Expr> {
    let leaf = (0..num_vars).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build_bdd(mgr: &mut BddManager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(v) => mgr.var(*v),
        Expr::Not(a) => {
            let a = build_bdd(mgr, a);
            mgr.not(a).unwrap()
        }
        Expr::And(a, b) => {
            let a = build_bdd(mgr, a);
            let b = build_bdd(mgr, b);
            mgr.and(a, b).unwrap()
        }
        Expr::Or(a, b) => {
            let a = build_bdd(mgr, a);
            let b = build_bdd(mgr, b);
            mgr.or(a, b).unwrap()
        }
        Expr::Xor(a, b) => {
            let a = build_bdd(mgr, a);
            let b = build_bdd(mgr, b);
            mgr.xor(a, b).unwrap()
        }
    }
}

fn build_tt(num_vars: usize, e: &Expr) -> TruthTable {
    match e {
        Expr::Var(v) => TruthTable::var(num_vars, *v),
        Expr::Not(a) => !&build_tt(num_vars, a),
        Expr::And(a, b) => &build_tt(num_vars, a) & &build_tt(num_vars, b),
        Expr::Or(a, b) => &build_tt(num_vars, a) | &build_tt(num_vars, b),
        Expr::Xor(a, b) => &build_tt(num_vars, a) ^ &build_tt(num_vars, b),
    }
}

proptest! {
    #[test]
    fn bdd_matches_truth_table(e in arb_expr(6)) {
        let mut mgr = BddManager::new(6);
        let f = build_bdd(&mut mgr, &e);
        let expected = build_tt(6, &e);
        prop_assert_eq!(mgr.to_truth_table(f), expected);
    }

    #[test]
    fn canonicity_equates_equal_functions(e in arb_expr(5)) {
        let mut mgr = BddManager::new(5);
        let f = build_bdd(&mut mgr, &e);
        // Rebuild the same function a second time: must land on the same id.
        let g = build_bdd(&mut mgr, &e);
        prop_assert_eq!(f, g);
        // Rebuild from the truth table: still the same id (strong canonicity).
        let tt = build_tt(5, &e);
        prop_assert_eq!(mgr.from_truth_table(&tt).unwrap(), f);
    }

    #[test]
    fn sat_count_matches_truth_table(e in arb_expr(6)) {
        let mut mgr = BddManager::new(6);
        let f = build_bdd(&mut mgr, &e);
        let tt = build_tt(6, &e);
        prop_assert_eq!(mgr.sat_count(f), tt.count_ones());
    }

    #[test]
    fn support_matches_truth_table(e in arb_expr(5)) {
        let mut mgr = BddManager::new(5);
        let f = build_bdd(&mut mgr, &e);
        let tt = build_tt(5, &e);
        prop_assert_eq!(mgr.support(f), tt.support());
    }

    #[test]
    fn boolean_difference_round_trip(a in arb_expr(5), b in arb_expr(5)) {
        let mut mgr = BddManager::new(5);
        let f = build_bdd(&mut mgr, &a);
        let g = build_bdd(&mut mgr, &b);
        let diff = mgr.xor(f, g).unwrap();
        prop_assert_eq!(mgr.xor(diff, g).unwrap(), f);
    }

    #[test]
    fn cofactor_matches_truth_table(e in arb_expr(5), var in 0usize..5, value: bool) {
        let mut mgr = BddManager::new(5);
        let f = build_bdd(&mut mgr, &e);
        let cof = mgr.cofactor(f, var, value).unwrap();
        let tt = build_tt(5, &e);
        let expected = if value { tt.cofactor1(var) } else { tt.cofactor0(var) };
        prop_assert_eq!(mgr.to_truth_table(cof), expected);
    }
}
