//! Deterministic test runner: case-count configuration plus the PRNG all
//! strategies draw from.

/// Configuration for a `proptest!` block. Only `cases` is supported.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the engine property tests here are
        // compute-heavy, so the shim halves twice.
        Self { cases: 64 }
    }
}

/// Value source for strategies: a fixed-seed xorshift64* generator, so
/// every run sees the same inputs. Override with `PROPTEST_SEED=<u64>`.
#[derive(Clone, Debug)]
pub struct TestRunner {
    state: u64,
    config: ProptestConfig,
}

const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .filter(|&s| s != 0)
            .unwrap_or(DEFAULT_SEED);
        Self {
            state: seed,
            config,
        }
    }

    pub fn config(&self) -> &ProptestConfig {
        &self.config
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound`. `bound` must be nonzero.
    pub fn next_usize(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        Self::new(ProptestConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut a = TestRunner::default();
        let mut b = TestRunner::default();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_usize_respects_bound() {
        let mut r = TestRunner::default();
        for bound in 1..50 {
            for _ in 0..20 {
                assert!(r.next_usize(bound) < bound);
            }
        }
    }
}
