//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for a generated collection, convertible from
/// `usize` (exact), `Range<usize>`, and `RangeInclusive<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, runner: &mut TestRunner) -> usize {
        self.min + runner.next_usize(self.max - self.min + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let len = self.size.pick(runner);
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}

/// A `BTreeMap` with roughly `size` entries (duplicate generated keys can
/// make it smaller when the key space is narrow).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

#[derive(Clone, Debug)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let target = self.size.pick(runner);
        let mut map = BTreeMap::new();
        // Key collisions shrink the map below target; retry a bounded
        // number of times so narrow key spaces still terminate.
        let mut attempts = 4 * target + 8;
        while map.len() < target && attempts > 0 {
            attempts -= 1;
            map.insert(self.key.new_value(runner), self.value.new_value(runner));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size_range() {
        let s = vec(any::<u64>(), 2..=5);
        let mut r = TestRunner::default();
        for _ in 0..100 {
            let v = s.new_value(&mut r);
            assert!((2..=5).contains(&v.len()));
        }
    }

    #[test]
    fn exact_size_vec() {
        let s = vec(any::<bool>(), 7usize);
        let mut r = TestRunner::default();
        assert_eq!(s.new_value(&mut r).len(), 7);
    }

    #[test]
    fn btree_map_bounded_and_nonempty() {
        let s = btree_map(0u32..3, any::<bool>(), 1..=4);
        let mut r = TestRunner::default();
        for _ in 0..100 {
            let m = s.new_value(&mut r);
            // Only 3 possible keys, so len is in 1..=3.
            assert!(!m.is_empty() && m.len() <= 3);
            assert!(m.keys().all(|&k| k < 3));
        }
    }
}
