//! The [`Strategy`] trait and the combinators this workspace uses.
//!
//! A strategy here is simply a recipe for producing one value from the
//! runner's PRNG; there is no value tree and no shrinking.

use crate::test_runner::TestRunner;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub trait Strategy {
    type Value: Debug;

    /// Draw one value from this strategy.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Use a generated value to pick a dependent second strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into a branch strategy. Nesting is capped
    /// at `depth`; `_desired_size` and `_expected_branch_size` are
    /// accepted for upstream signature compatibility but unused (this
    /// shim bounds size by depth alone, taking a leaf with probability
    /// 1/3 at every level).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            let shallow = leaf.clone();
            strat = BoxedStrategy(Rc::new(move |runner: &mut TestRunner| {
                if runner.next_usize(3) == 0 {
                    shallow.new_value(runner)
                } else {
                    deeper.new_value(runner)
                }
            }));
        }
        strat
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |runner: &mut TestRunner| {
            self.new_value(runner)
        }))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.source.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let inner = (self.f)(self.source.new_value(runner));
        inner.new_value(runner)
    }
}

/// A type-erased, cheaply cloneable strategy (shared via `Rc`).
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRunner) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        (self.0)(runner)
    }
}

/// Uniform choice among alternatives; built by the `prop_oneof!` macro.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            options: self.options.clone(),
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        let idx = runner.next_usize(self.options.len());
        self.options[idx].new_value(runner)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy; see [`any`].
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

/// Strategy for the full value range of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T> Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "any::<{}>()", std::any::type_name::<T>())
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::unnecessary_cast)]
            fn arbitrary(runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::unnecessary_cast)]
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (runner.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::unnecessary_cast)]
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (runner.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.new_value(runner),)+)
            }
        }
    };
}

tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

/// A `Vec` of strategies generates element-wise (one value per entry).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        self.iter().map(|s| s.new_value(runner)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRunner::default();
        for _ in 0..200 {
            let v = (3usize..7).new_value(&mut r);
            assert!((3..7).contains(&v));
            let w = (-1i64..=300).new_value(&mut r);
            assert!((-1..=300).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = TestRunner::default();
        let s = (1usize..=4).prop_flat_map(|n| (0..n).prop_map(move |k| (n, k)));
        for _ in 0..100 {
            let (n, k) = s.new_value(&mut r);
            assert!(k < n);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum E {
            // The payload only exercises generation; nothing reads it.
            Leaf(#[allow(dead_code)] usize),
            Pair(Box<E>, Box<E>),
        }
        fn size(e: &E) -> usize {
            match e {
                E::Leaf(_) => 1,
                E::Pair(a, b) => size(a) + size(b),
            }
        }
        let s = (0usize..4)
            .prop_map(E::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| E::Pair(Box::new(a), Box::new(b)))
            });
        let mut r = TestRunner::default();
        let mut saw_pair = false;
        for _ in 0..64 {
            let e = s.new_value(&mut r);
            assert!(size(&e) <= 32, "depth bound exceeded");
            saw_pair |= matches!(e, E::Pair(..));
        }
        assert!(saw_pair, "recursion never took a branch");
    }
}
