//! Offline drop-in shim for [proptest](https://crates.io/crates/proptest).
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the *minimal* subset of proptest's API that its test suites
//! actually use: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map` / `prop_flat_map` / `prop_recursive`, integer-range and
//! tuple strategies, [`collection`] strategies, the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`] and [`prop_oneof!`] macros, and
//! [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case is reported with the full
//!   `Debug`-printed input instead of a minimized one.
//! - **Deterministic.** Values derive from a fixed-seed xorshift PRNG
//!   (overridable via the `PROPTEST_SEED` environment variable), so test
//!   runs are reproducible and regression files are unnecessary.
//! - **Fewer default cases** (64 instead of 256): the workspace's engine
//!   property tests are compute-heavy.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Builds a strategy choosing uniformly among the given alternatives
/// (upstream's `Union`; weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// `assert!` that reports through the property-test harness.
///
/// Upstream returns an `Err` to drive shrinking; without shrinking a
/// plain panic carries the same information.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs. A parameter
/// may also use the `name: Type` shorthand for `name in any::<Type>()`.
///
/// An optional leading `#![proptest_config(expr)]` sets the case count.
/// On failure the generated inputs are printed before the panic is
/// re-raised.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $crate::__proptest_case! {
            @parse [($config) ($(#[$meta])*) $name $body] [] $($params)*
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Parameter munching: normalize both `pat in strategy` and the
    // `name: Type` shorthand into `(pat)(strategy)` pairs.
    (@parse $ctx:tt [$($acc:tt)*] $pat:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_case! { @parse $ctx [$($acc)* ($pat)($strat)] $($rest)* }
    };
    (@parse $ctx:tt [$($acc:tt)*] $pat:pat in $strat:expr) => {
        $crate::__proptest_case! { @emit $ctx [$($acc)* ($pat)($strat)] }
    };
    (@parse $ctx:tt [$($acc:tt)*] $arg:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_case! {
            @parse $ctx [$($acc)* ($arg)($crate::strategy::any::<$ty>())] $($rest)*
        }
    };
    (@parse $ctx:tt [$($acc:tt)*] $arg:ident : $ty:ty) => {
        $crate::__proptest_case! {
            @emit $ctx [$($acc)* ($arg)($crate::strategy::any::<$ty>())]
        }
    };
    (@parse $ctx:tt [$($acc:tt)*]) => {
        $crate::__proptest_case! { @emit $ctx [$($acc)*] }
    };
    // All parameters normalized: emit the test function.
    (@emit [($config:expr) ($(#[$meta:meta])*) $name:ident $body:block]
     [$(($pat:pat)($strat:expr))+]) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __runner = $crate::test_runner::TestRunner::new(__config.clone());
            for __case in 0..__config.cases {
                let __vals = (
                    $($crate::strategy::Strategy::new_value(&($strat), &mut __runner),)+
                );
                let __dbg = format!("{:?}", __vals);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        let ($($pat,)+) = __vals;
                        $body
                    }),
                );
                if let Err(__err) = __outcome {
                    eprintln!(
                        "proptest: case {}/{} of `{}` failed with input {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __dbg
                    );
                    ::std::panic::resume_unwind(__err);
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tuple_params((a, b) in (0usize..10, 0usize..10), flip: bool) {
            prop_assert!(a < 10 && b < 10);
            let _ = flip;
        }

        #[test]
        fn oneof_hits_all_arms(v in prop_oneof![0usize..1, 1usize..2, 2usize..3]) {
            prop_assert!(v < 3);
        }
    }
}
