//! Multi-level networks of SOP nodes with AIG round-trips.

use std::collections::{HashMap, HashSet};

use sbm_aig::{Aig, Lit as AigLit, NodeId};

use crate::cover::{Cover, Cube, SignalLit};
use crate::factor::{factor, Factored};

/// A network signal: primary inputs come first (`0..num_inputs`), each node
/// drives one subsequent signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signal(pub u32);

/// A multi-level logic network whose nodes are SOP covers over other
/// signals.
///
/// This is the representation on which the paper's *elimination — kernel
/// extraction* pipeline operates (Section IV-B). It is intentionally
/// SIS-like: nodes are covers, cost is the literal count, and structural
/// transformations are collapse (eliminate) and divisor extraction.
///
/// # Example
///
/// ```
/// use sbm_sop::{Cover, Cube, SignalLit, SopNetwork};
///
/// let mut net = SopNetwork::new(2);
/// let a = SignalLit::positive(0);
/// let b = SignalLit::positive(1);
/// let f = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[a, b])]));
/// net.add_output(SignalLit::positive(f));
/// assert_eq!(net.eval(&[true, true]), vec![true]);
/// assert_eq!(net.eval(&[true, false]), vec![false]);
/// ```
#[derive(Debug, Clone)]
pub struct SopNetwork {
    num_inputs: usize,
    /// Node `i` drives signal `num_inputs + i`.
    nodes: Vec<Cover>,
    outputs: Vec<SignalLit>,
}

impl SopNetwork {
    /// Creates an empty network with `num_inputs` primary inputs.
    pub fn new(num_inputs: usize) -> Self {
        SopNetwork {
            num_inputs,
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of nodes (including dead ones until [`SopNetwork::cleanup`]).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of signals (inputs + nodes).
    pub fn num_signals(&self) -> usize {
        self.num_inputs + self.nodes.len()
    }

    /// Adds a node with the given cover; returns the signal it drives.
    pub fn add_node(&mut self, cover: Cover) -> u32 {
        self.nodes.push(cover);
        (self.num_inputs + self.nodes.len() - 1) as u32
    }

    /// Whether `signal` is a primary input.
    pub fn is_input(&self, signal: u32) -> bool {
        (signal as usize) < self.num_inputs
    }

    /// The cover of the node driving `signal`.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is an input or out of range.
    pub fn cover(&self, signal: u32) -> &Cover {
        assert!(!self.is_input(signal), "signal {signal} is an input");
        &self.nodes[signal as usize - self.num_inputs]
    }

    /// Replaces the cover of the node driving `signal`.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is an input or out of range.
    pub fn set_cover(&mut self, signal: u32, cover: Cover) {
        assert!(!self.is_input(signal), "signal {signal} is an input");
        self.nodes[signal as usize - self.num_inputs] = cover;
    }

    /// Registers `lit` as a primary output.
    pub fn add_output(&mut self, lit: SignalLit) {
        self.outputs.push(lit);
    }

    /// The primary outputs.
    pub fn outputs(&self) -> &[SignalLit] {
        &self.outputs
    }

    /// Signals of the nodes reachable from the outputs (live nodes only).
    pub fn live_nodes(&self) -> Vec<u32> {
        let mut live = Vec::new();
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = self.outputs.iter().map(|l| l.signal()).collect();
        while let Some(s) = stack.pop() {
            if self.is_input(s) || !seen.insert(s) {
                continue;
            }
            live.push(s);
            for dep in self.cover(s).signals() {
                stack.push(dep);
            }
        }
        live.sort_unstable();
        live
    }

    /// Total literal count over live nodes — the paper's optimization
    /// metric for eliminate/kerneling.
    pub fn num_lits(&self) -> usize {
        self.live_nodes()
            .iter()
            .map(|&s| self.cover(s).num_lits())
            .sum()
    }

    /// Live node signals in topological order (dependencies first).
    ///
    /// # Panics
    ///
    /// Panics if the network contains a combinational cycle.
    pub fn topo_order(&self) -> Vec<u32> {
        let mut order = Vec::new();
        let mut state: HashMap<u32, u8> = HashMap::new(); // 1 = visiting, 2 = done
        let mut stack: Vec<(u32, bool)> =
            self.outputs.iter().map(|l| (l.signal(), false)).collect();
        while let Some((s, expanded)) = stack.pop() {
            if self.is_input(s) {
                continue;
            }
            if expanded {
                state.insert(s, 2);
                order.push(s);
                continue;
            }
            match state.get(&s) {
                Some(2) => continue,
                // sbm-lint: allow(A003) a cyclic network violates the SopNetwork construction invariant; no caller can recover mid-traversal
                Some(1) => panic!("combinational cycle through signal {s}"),
                _ => {}
            }
            state.insert(s, 1);
            stack.push((s, true));
            for dep in self.cover(s).signals() {
                if state.get(&dep) != Some(&2) {
                    stack.push((dep, false));
                }
            }
        }
        order
    }

    /// For every signal, the set of live node signals whose covers mention
    /// it.
    pub fn fanouts(&self) -> HashMap<u32, Vec<u32>> {
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        for s in self.live_nodes() {
            for dep in self.cover(s).signals() {
                map.entry(dep).or_default().push(s);
            }
        }
        map
    }

    /// Evaluates the network under an input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_inputs` or the network is cyclic.
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(assignment.len(), self.num_inputs);
        let mut values: HashMap<u32, bool> = assignment
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u32, v))
            .collect();
        for s in self.topo_order() {
            let v = self.cover(s).eval(|dep| values[&dep]);
            values.insert(s, v);
        }
        self.outputs
            .iter()
            .map(|l| values[&l.signal()] != l.is_negated())
            .collect()
    }

    /// Drops dead nodes and renumbers signals compactly. Input and output
    /// order is preserved.
    pub fn cleanup(&self) -> SopNetwork {
        let live = self.topo_order();
        let mut remap: HashMap<u32, u32> = (0..self.num_inputs as u32).map(|s| (s, s)).collect();
        let mut out = SopNetwork::new(self.num_inputs);
        for &s in &live {
            let cover = self.cover(s);
            let remapped = remap_cover(cover, &remap);
            let new_signal = out.add_node(remapped);
            remap.insert(s, new_signal);
        }
        for l in &self.outputs {
            out.add_output(SignalLit::new(remap[&l.signal()], l.is_negated()));
        }
        out
    }

    /// Imports an AIG: every AND gate becomes a one-cube, two-literal node.
    /// Constant outputs become constant nodes.
    pub fn from_aig(aig: &Aig) -> SopNetwork {
        let mut net = SopNetwork::new(aig.num_inputs());
        let mut map: HashMap<NodeId, SignalLit> = HashMap::new();
        for (i, &input) in aig.inputs().iter().enumerate() {
            map.insert(input, SignalLit::positive(i as u32));
        }
        let to_slit = |l: AigLit, map: &HashMap<NodeId, SignalLit>| {
            let base = map[&l.node()];
            if l.is_complemented() {
                base.negate()
            } else {
                base
            }
        };
        for id in aig.topo_order() {
            let (a, b) = aig.fanins(id);
            let la = to_slit(a, &map);
            let lb = to_slit(b, &map);
            let cover = Cover::from_cubes(vec![Cube::from_lits(&[la, lb])]);
            let s = net.add_node(cover);
            map.insert(id, SignalLit::positive(s));
        }
        for l in aig.outputs() {
            if l.node() == NodeId::CONST {
                let s = net.add_node(if l.is_complemented() {
                    Cover::one()
                } else {
                    Cover::zero()
                });
                net.add_output(SignalLit::positive(s));
            } else {
                net.add_output(to_slit(l, &map));
            }
        }
        net
    }

    /// Exports the network to an AIG, factoring every node algebraically.
    pub fn to_aig(&self) -> Aig {
        let mut aig = Aig::new();
        let mut map: HashMap<u32, AigLit> = HashMap::new();
        for i in 0..self.num_inputs {
            let l = aig.add_input();
            map.insert(i as u32, l);
        }
        for s in self.topo_order() {
            let fac = factor(self.cover(s));
            let lit = emit_factored(&mut aig, &fac, &map);
            map.insert(s, lit);
        }
        for l in &self.outputs {
            let base = map[&l.signal()];
            aig.add_output(base.complement_if(l.is_negated()));
        }
        aig
    }
}

fn remap_cover(cover: &Cover, remap: &HashMap<u32, u32>) -> Cover {
    Cover::from_cubes(
        cover
            .cubes()
            .iter()
            .map(|c| {
                Cube::from_lits(
                    &c.lits()
                        .iter()
                        .map(|l| SignalLit::new(remap[&l.signal()], l.is_negated()))
                        .collect::<Vec<_>>(),
                )
            })
            .collect(),
    )
}

fn emit_factored(aig: &mut Aig, fac: &Factored, map: &HashMap<u32, AigLit>) -> AigLit {
    match fac {
        Factored::Zero => AigLit::FALSE,
        Factored::One => AigLit::TRUE,
        Factored::Lit(l) => map[&l.signal()].complement_if(l.is_negated()),
        Factored::And(a, b) => {
            let la = emit_factored(aig, a, map);
            let lb = emit_factored(aig, b, map);
            aig.and(la, lb)
        }
        Factored::Or(a, b) => {
            let la = emit_factored(aig, a, map);
            let lb = emit_factored(aig, b, map);
            aig.or(la, lb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval() {
        let mut net = SopNetwork::new(3);
        let (a, b, c) = (
            SignalLit::positive(0),
            SignalLit::positive(1),
            SignalLit::positive(2),
        );
        // x = a·b + c'
        let x = net.add_node(Cover::from_cubes(vec![
            Cube::from_lits(&[a, b]),
            Cube::from_lits(&[c.negate()]),
        ]));
        net.add_output(SignalLit::positive(x));
        assert_eq!(net.eval(&[true, true, true]), vec![true]);
        assert_eq!(net.eval(&[false, true, true]), vec![false]);
        assert_eq!(net.eval(&[false, false, false]), vec![true]);
    }

    #[test]
    fn aig_round_trip() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.maj3(a, b, c);
        let x = aig.xor(a, b);
        aig.add_output(m);
        aig.add_output(!x);
        let net = SopNetwork::from_aig(&aig);
        let back = net.to_aig();
        for i in 0..8 {
            let assignment = [(i & 1) == 1, (i >> 1) & 1 == 1, (i >> 2) & 1 == 1];
            assert_eq!(aig.eval(&assignment), net.eval(&assignment));
            assert_eq!(aig.eval(&assignment), back.eval(&assignment));
        }
    }

    #[test]
    fn constant_outputs_survive_round_trip() {
        let mut aig = Aig::new();
        let _a = aig.add_input();
        aig.add_output(AigLit::TRUE);
        aig.add_output(AigLit::FALSE);
        let net = SopNetwork::from_aig(&aig);
        assert_eq!(net.eval(&[false]), vec![true, false]);
        let back = net.to_aig();
        assert_eq!(back.eval(&[true]), vec![true, false]);
    }

    #[test]
    fn cleanup_drops_dead_nodes() {
        let mut net = SopNetwork::new(2);
        let a = SignalLit::positive(0);
        let b = SignalLit::positive(1);
        let _dead = net.add_node(Cover::literal(a));
        let live = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[a, b])]));
        net.add_output(SignalLit::positive(live));
        let clean = net.cleanup();
        assert_eq!(clean.num_nodes(), 1);
        assert_eq!(clean.eval(&[true, true]), vec![true]);
        assert_eq!(clean.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn fanouts_and_live_nodes() {
        let mut net = SopNetwork::new(2);
        let a = SignalLit::positive(0);
        let b = SignalLit::positive(1);
        let x = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[a, b])]));
        let y = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[
            SignalLit::positive(x),
            a,
        ])]));
        net.add_output(SignalLit::positive(y));
        let fanouts = net.fanouts();
        assert_eq!(fanouts[&x], vec![y]);
        assert_eq!(net.live_nodes(), vec![x, y]);
    }

    #[test]
    fn num_lits_counts_live_only() {
        let mut net = SopNetwork::new(2);
        let a = SignalLit::positive(0);
        let b = SignalLit::positive(1);
        let _dead = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[a, b])]));
        let live = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[a, b])]));
        net.add_output(SignalLit::positive(live));
        assert_eq!(net.num_lits(), 2);
    }
}
