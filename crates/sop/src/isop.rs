//! Irredundant sum-of-products from (incompletely specified) truth tables.
//!
//! Implements the Minato–Morreale ISOP algorithm on truth tables: given an
//! ON-set lower bound `on` and an upper bound `on ∨ dc`, it produces an
//! irredundant cover between the two. This is the bridge from functional
//! representations (truth tables, BDDs) back to SOP form, used by the
//! refactoring and rewriting moves to resynthesize collapsed cones —
//! optionally exploiting don't-cares (permissible functions).

use sbm_tt::TruthTable;

use crate::cover::{Cover, Cube, SignalLit};

/// Computes an irredundant cover `c` with `on ⊆ c ⊆ upper` (variable `i` of
/// the tables maps to signal `i`).
///
/// # Panics
///
/// Panics if the tables have different variable counts or `on ⊄ upper`.
pub fn isop(on: &TruthTable, upper: &TruthTable) -> Cover {
    assert_eq!(on.num_vars(), upper.num_vars());
    assert!(on.implies(upper), "lower bound must imply upper bound");
    let (cover, _) = isop_rec(on, upper, on.num_vars());
    cover
}

/// Computes an irredundant cover of `f` exactly (no don't-cares).
pub fn isop_exact(f: &TruthTable) -> Cover {
    isop(f, f)
}

/// Recursive Minato–Morreale: returns the cover and the table of its
/// function.
fn isop_rec(lower: &TruthTable, upper: &TruthTable, vars_left: usize) -> (Cover, TruthTable) {
    let n = lower.num_vars();
    if lower.is_zero() {
        return (Cover::zero(), TruthTable::zero(n));
    }
    if upper.is_one() {
        return (Cover::one(), TruthTable::one(n));
    }
    debug_assert!(vars_left > 0, "non-constant bounds but no variables left");
    let v = vars_left - 1;
    let x = SignalLit::positive(v as u32);
    let nx = SignalLit::negative(v as u32);

    let l0 = lower.cofactor0(v);
    let l1 = lower.cofactor1(v);
    let u0 = upper.cofactor0(v);
    let u1 = upper.cofactor1(v);

    // Cubes that must contain x̄: ON where x = 0 but not coverable with x = 1.
    let (c0, t0) = isop_rec(&(&l0 & &!&u1), &u0, v);
    // Cubes that must contain x.
    let (c1, t1) = isop_rec(&(&l1 & &!&u0), &u1, v);
    // Remaining minterms, coverable independently of v.
    let lnew = &(&l0 & &!&t0) | &(&l1 & &!&t1);
    let (cstar, tstar) = isop_rec(&lnew, &(&u0 & &u1), v);

    let xvar = TruthTable::var(n, v);
    let table = &(&(&!&xvar & &t0) | &(&xvar & &t1)) | &tstar;

    let mut cubes = Vec::new();
    for c in c0.cubes() {
        let Some(cube) = c.intersect(&Cube::from_lits(&[nx])) else {
            unreachable!("v cannot appear in a cofactor cover");
        };
        cubes.push(cube);
    }
    for c in c1.cubes() {
        let Some(cube) = c.intersect(&Cube::from_lits(&[x])) else {
            unreachable!("v cannot appear in a cofactor cover");
        };
        cubes.push(cube);
    }
    cubes.extend(cstar.cubes().iter().cloned());
    (Cover::from_cubes(cubes), table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_exact(f: &TruthTable) {
        let cover = isop_exact(f);
        for m in 0..f.num_bits() {
            let v = |s: u32| (m >> s) & 1 == 1;
            assert_eq!(cover.eval(v), f.bit(m), "minterm {m} of {f}");
        }
    }

    #[test]
    fn simple_functions() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        check_exact(&(&a & &b));
        check_exact(&(&a | &(&b & &c)));
        check_exact(&(&a ^ &b));
        check_exact(&(&(&a ^ &b) ^ &c));
        check_exact(&TruthTable::zero(3));
        check_exact(&TruthTable::one(3));
    }

    #[test]
    fn xor_cover_has_expected_size() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let cover = isop_exact(&(&a ^ &b));
        assert_eq!(cover.num_cubes(), 2);
        assert_eq!(cover.num_lits(), 4);
    }

    #[test]
    fn majority_cover() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let maj = &(&(&a & &b) | &(&a & &c)) | &(&b & &c);
        let cover = isop_exact(&maj);
        assert_eq!(cover.num_cubes(), 3, "{cover}");
        check_exact(&maj);
    }

    #[test]
    fn dont_cares_shrink_cover() {
        // f = a·b with b don't-care whenever a = 0: cover can be just "b"
        // or even smaller forms.
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let on = &a & &b;
        let upper = &on | &!&a; // DC where a = 0
        let cover = isop(&on, &upper);
        let exact = isop_exact(&on);
        assert!(cover.num_lits() <= exact.num_lits());
        // Result must lie between the bounds.
        for m in 0..4usize {
            let v = |s: u32| (m >> s) & 1 == 1;
            if on.bit(m) {
                assert!(cover.eval(v), "must cover ON minterm {m}");
            }
            if !upper.bit(m) {
                assert!(!cover.eval(v), "must avoid OFF minterm {m}");
            }
        }
    }

    #[test]
    fn random_functions_are_covered() {
        for seed in 0..20u64 {
            let bits = seed.wrapping_mul(0x9E3779B97F4A7C15) | seed;
            let f = TruthTable::from_bits(5, bits);
            check_exact(&f);
        }
    }
}
