//! Kernels and co-kernels of a cover.
//!
//! A *kernel* of a cover `f` is a cube-free quotient of `f` by a cube (its
//! *co-kernel*). Kernels are where multi-cube common divisors hide: two
//! covers have a nontrivial common multi-cube divisor iff their kernel sets
//! intersect in a cover with ≥ 2 cubes (Brayton & McMullen). The paper's
//! heterogeneous eliminate engine tunes elimination so that kerneling finds
//! more sharing (Section IV-B).

use crate::cover::{Cover, Cube, SignalLit};
use crate::divide::divide_by_cube;

/// Computes all kernels of `f` with their co-kernels, including `f` itself
/// (with co-kernel 1) when `f` is cube-free.
///
/// # Example
///
/// ```
/// use sbm_sop::{Cover, Cube, SignalLit};
/// use sbm_sop::kernel::kernels;
///
/// let a = SignalLit::positive(0);
/// let b = SignalLit::positive(1);
/// let c = SignalLit::positive(2);
/// // f = a·b + a·c: kernel (b + c) with co-kernel a.
/// let f = Cover::from_cubes(vec![
///     Cube::from_lits(&[a, b]),
///     Cube::from_lits(&[a, c]),
/// ]);
/// let ks = kernels(&f);
/// assert_eq!(ks.len(), 1);
/// assert_eq!(ks[0].1, Cube::from_lits(&[a]));
/// ```
pub fn kernels(f: &Cover) -> Vec<(Cover, Cube)> {
    let mut result = Vec::new();
    // Normalize: pull out the largest common cube first.
    let cc = f.common_cube();
    let (g, _) = divide_by_cube(f, &cc);
    let universe = literals(&g);
    kernels_rec(&g, &cc, 0, &universe, &mut result);
    if g.is_cube_free() {
        push_unique(&mut result, (g, cc));
    }
    result
}

/// The distinct literals of a cover, sorted.
fn literals(f: &Cover) -> Vec<SignalLit> {
    let mut set = std::collections::BTreeSet::new();
    for c in f.cubes() {
        set.extend(c.lits().iter().copied());
    }
    set.into_iter().collect()
}

/// Keeps distinct (kernel, co-kernel) pairs; the same kernel can have
/// several co-kernels and callers may want all of them.
fn push_unique(result: &mut Vec<(Cover, Cube)>, entry: (Cover, Cube)) {
    if !result.contains(&entry) {
        result.push(entry);
    }
}

/// The classic recursive kernel enumeration (De Micheli, Alg. 8.3.3):
/// branch on each literal appearing in ≥ 2 cubes, divide by the common cube
/// of those cubes, and recurse with an index guard to avoid duplicates.
fn kernels_rec(
    g: &Cover,
    cokernel: &Cube,
    start: usize,
    universe: &[SignalLit],
    result: &mut Vec<(Cover, Cube)>,
) {
    for (i, &l) in universe.iter().enumerate().skip(start) {
        if g.lit_count(l) < 2 {
            continue;
        }
        // Common cube of all cubes containing l.
        let mut common: Option<Cube> = None;
        for c in g.cubes() {
            if c.contains(l) {
                common = Some(match common {
                    None => c.clone(),
                    Some(acc) => acc.common(c),
                });
            }
        }
        let Some(common) = common else {
            unreachable!("lit_count >= 2 guarantees at least one cube contains l");
        };
        // Duplicate-avoidance: skip if the common cube contains an earlier
        // literal from the universe (that branch already produced it).
        if universe[..i].iter().any(|&e| common.contains(e)) {
            continue;
        }
        let (sub, _) = divide_by_cube(g, &common);
        let Some(new_cokernel) = cokernel.intersect(&common) else {
            unreachable!("co-kernel cubes cannot contradict");
        };
        kernels_rec(&sub, &new_cokernel, i + 1, universe, result);
        if sub.is_cube_free() {
            push_unique(result, (sub, new_cokernel));
        }
    }
}

/// The *level-0* kernels: kernels that have no kernels other than
/// themselves. Useful as cheap high-value divisors.
pub fn level0_kernels(f: &Cover) -> Vec<(Cover, Cube)> {
    kernels(f)
        .into_iter()
        .filter(|(k, _)| kernels(k).iter().all(|(inner, _)| inner == k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: u32) -> SignalLit {
        SignalLit::positive(s)
    }

    fn cover(cubes: &[&[SignalLit]]) -> Cover {
        Cover::from_cubes(cubes.iter().map(|c| Cube::from_lits(c)).collect())
    }

    #[test]
    fn textbook_kernels() {
        // f = a·c·e + b·c·e + d·e (De Micheli-style example)
        // kernels: {a + b} (cokernel c·e), {a·c + b·c + d} (cokernel e),
        // and f itself is not cube-free (common cube e).
        let (a, b, c, d, e) = (lit(0), lit(1), lit(2), lit(3), lit(4));
        let f = cover(&[&[a, c, e], &[b, c, e], &[d, e]]);
        let ks = kernels(&f);
        let kernel_covers: Vec<&Cover> = ks.iter().map(|(k, _)| k).collect();
        assert!(kernel_covers.contains(&&cover(&[&[a], &[b]])), "{ks:?}");
        assert!(
            kernel_covers.contains(&&cover(&[&[a, c], &[b, c], &[d]])),
            "{ks:?}"
        );
        // Every kernel must be cube-free.
        for (k, _) in &ks {
            assert!(k.is_cube_free(), "kernel {k} is not cube-free");
        }
    }

    #[test]
    fn cokernel_times_kernel_divides_f() {
        let (a, b, c, d, e) = (lit(0), lit(1), lit(2), lit(3), lit(4));
        let f = cover(&[&[a, c, e], &[b, c, e], &[d, e]]);
        for (k, ck) in kernels(&f) {
            // Every cube of ck·k must be a cube of f.
            let prod = k.and_cube(&ck);
            for cube in prod.cubes() {
                assert!(f.cubes().contains(cube), "{ck}·({k}) produced {cube} ∉ f");
            }
        }
    }

    #[test]
    fn single_cube_has_no_kernels() {
        let (a, b) = (lit(0), lit(1));
        let f = cover(&[&[a, b]]);
        assert!(kernels(&f).is_empty());
    }

    #[test]
    fn kernel_of_two_disjoint_cubes_is_self() {
        let (a, b) = (lit(0), lit(1));
        let f = cover(&[&[a], &[b]]);
        let ks = kernels(&f);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].0, f);
        assert!(ks[0].1.is_one());
    }

    #[test]
    fn level0_kernels_are_minimal() {
        let (a, b, c, d, e) = (lit(0), lit(1), lit(2), lit(3), lit(4));
        let f = cover(&[&[a, c, e], &[b, c, e], &[d, e]]);
        let l0 = level0_kernels(&f);
        assert!(l0.iter().any(|(k, _)| *k == cover(&[&[a], &[b]])));
        // The big kernel (a·c + b·c + d) has sub-kernels, so it is not L0.
        assert!(l0
            .iter()
            .all(|(k, _)| *k != cover(&[&[a, c], &[b, c], &[d]])));
    }
}
