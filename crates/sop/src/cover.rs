//! Sparse cubes and two-level covers.

use std::collections::BTreeSet;
use std::fmt;

/// A literal over a network *signal*: the signal id plus a phase.
///
/// The encoding is `signal << 1 | negated`, mirroring AIG literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalLit(u32);

impl SignalLit {
    /// The positive-phase literal of `signal`.
    pub fn positive(signal: u32) -> Self {
        SignalLit(signal << 1)
    }

    /// The negative-phase literal of `signal`.
    pub fn negative(signal: u32) -> Self {
        SignalLit(signal << 1 | 1)
    }

    /// Builds a literal from a signal id and a negation flag.
    pub fn new(signal: u32, negated: bool) -> Self {
        SignalLit(signal << 1 | negated as u32)
    }

    /// The signal this literal refers to.
    pub fn signal(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is in the negative phase.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite-phase literal of the same signal.
    pub fn negate(self) -> Self {
        SignalLit(self.0 ^ 1)
    }
}

impl fmt::Display for SignalLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "s{}'", self.signal())
        } else {
            write!(f, "s{}", self.signal())
        }
    }
}

/// A product term: a set of literals over distinct signals.
///
/// The constant-one cube is the empty cube. Cubes keep their literals sorted
/// so set operations are linear merges.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Cube {
    lits: Vec<SignalLit>,
}

impl Cube {
    /// The constant-one (empty) cube.
    pub fn one() -> Self {
        Cube::default()
    }

    /// Builds a cube from literals, sorting and deduplicating.
    ///
    /// # Panics
    ///
    /// Panics if the cube contains a signal in both phases (a contradiction
    /// — represent `0` as an empty [`Cover`], not a contradictory cube).
    pub fn from_lits(lits: &[SignalLit]) -> Self {
        let set: BTreeSet<SignalLit> = lits.iter().copied().collect();
        let lits: Vec<SignalLit> = set.into_iter().collect();
        for w in lits.windows(2) {
            assert!(
                w[0].signal() != w[1].signal(),
                "contradictory cube: {} and {}",
                w[0],
                w[1]
            );
        }
        Cube { lits }
    }

    /// Test-support: wraps the literal list verbatim — no sorting, no
    /// deduplication, no contradiction check. Used by `sbm-check` tests
    /// to seed non-canonical cubes.
    #[doc(hidden)]
    pub fn from_lits_unchecked(lits: Vec<SignalLit>) -> Self {
        Cube { lits }
    }

    /// The literals, sorted ascending.
    pub fn lits(&self) -> &[SignalLit] {
        &self.lits
    }

    /// Number of literals.
    pub fn num_lits(&self) -> usize {
        self.lits.len()
    }

    /// Whether this is the constant-one cube.
    pub fn is_one(&self) -> bool {
        self.lits.is_empty()
    }

    /// Whether the cube contains `lit`.
    pub fn contains(&self, lit: SignalLit) -> bool {
        self.lits.binary_search(&lit).is_ok()
    }

    /// Whether the cube mentions `signal` in either phase.
    pub fn mentions(&self, signal: u32) -> bool {
        self.contains(SignalLit::positive(signal)) || self.contains(SignalLit::negative(signal))
    }

    /// Whether every literal of `self` appears in `other` (so `other ⇒
    /// self` as products, i.e. `other`'s ON-set is contained in `self`'s).
    pub fn covers(&self, other: &Cube) -> bool {
        self.lits.iter().all(|l| other.contains(*l))
    }

    /// The product of two cubes; `None` if they contradict.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        let mut lits = Vec::with_capacity(self.lits.len() + other.lits.len());
        let (mut i, mut j) = (0, 0);
        while i < self.lits.len() && j < other.lits.len() {
            let (a, b) = (self.lits[i], other.lits[j]);
            if a.signal() == b.signal() {
                if a != b {
                    return None;
                }
                lits.push(a);
                i += 1;
                j += 1;
            } else if a < b {
                lits.push(a);
                i += 1;
            } else {
                lits.push(b);
                j += 1;
            }
        }
        lits.extend_from_slice(&self.lits[i..]);
        lits.extend_from_slice(&other.lits[j..]);
        Some(Cube { lits })
    }

    /// The cube quotient `self / divisor`: the literals of `self` not in
    /// `divisor`; `None` if `divisor` is not a subset of `self`.
    pub fn quotient(&self, divisor: &Cube) -> Option<Cube> {
        if !divisor.lits.iter().all(|l| self.contains(*l)) {
            return None;
        }
        Some(Cube {
            lits: self
                .lits
                .iter()
                .copied()
                .filter(|l| !divisor.contains(*l))
                .collect(),
        })
    }

    /// The largest common cube of two cubes (their shared literals).
    pub fn common(&self, other: &Cube) -> Cube {
        Cube {
            lits: self
                .lits
                .iter()
                .copied()
                .filter(|l| other.contains(*l))
                .collect(),
        }
    }

    /// Evaluates the cube under an assignment function.
    pub fn eval(&self, value: impl Fn(u32) -> bool) -> bool {
        self.lits
            .iter()
            .all(|l| value(l.signal()) != l.is_negated())
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "1");
        }
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// A sum of products: a set of cubes.
///
/// The constant-zero cover has no cubes; the constant-one cover is the
/// single empty cube. Single-cube containment is maintained on construction
/// (no cube covers another).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cover {
    cubes: Vec<Cube>,
}

impl Cover {
    /// The constant-zero cover.
    pub fn zero() -> Self {
        Cover::default()
    }

    /// The constant-one cover.
    pub fn one() -> Self {
        Cover {
            cubes: vec![Cube::one()],
        }
    }

    /// A cover consisting of a single literal.
    pub fn literal(lit: SignalLit) -> Self {
        Cover {
            cubes: vec![Cube::from_lits(&[lit])],
        }
    }

    /// Builds a cover from cubes, removing single-cube-contained cubes and
    /// duplicates.
    pub fn from_cubes(cubes: Vec<Cube>) -> Self {
        let mut cover = Cover { cubes };
        cover.make_scc_minimal();
        cover
    }

    /// Test-support: wraps the cube list verbatim — no single-cube
    /// containment minimization, no deduplication. Used by `sbm-check`
    /// tests to seed covers with absorbed cubes.
    #[doc(hidden)]
    pub fn from_cubes_unchecked(cubes: Vec<Cube>) -> Self {
        Cover { cubes }
    }

    /// Removes cubes covered by other cubes (single-cube containment).
    fn make_scc_minimal(&mut self) {
        self.cubes.sort();
        self.cubes.dedup();
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        for c in &cubes {
            if !cubes
                .iter()
                .any(|other| other != c && other.covers(c) && !(c.covers(other) && other > c))
            {
                kept.push(c.clone());
            }
        }
        // Handle exact duplicates removed by dedup; `kept` may still contain
        // mutually-covering distinct cubes only if equal, which dedup ruled
        // out.
        self.cubes = kept;
    }

    /// The cubes of this cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes (terms).
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Total number of literals — the paper's cost metric for elimination
    /// and kerneling.
    pub fn num_lits(&self) -> usize {
        self.cubes.iter().map(Cube::num_lits).sum()
    }

    /// Whether this is the constant-zero cover.
    pub fn is_zero(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Whether this is the constant-one cover.
    pub fn is_one(&self) -> bool {
        self.cubes.iter().any(Cube::is_one)
    }

    /// The distinct signals mentioned by the cover, ascending.
    pub fn signals(&self) -> Vec<u32> {
        let mut set = BTreeSet::new();
        for c in &self.cubes {
            for l in c.lits() {
                set.insert(l.signal());
            }
        }
        set.into_iter().collect()
    }

    /// How many cubes contain `lit`.
    pub fn lit_count(&self, lit: SignalLit) -> usize {
        self.cubes.iter().filter(|c| c.contains(lit)).count()
    }

    /// Disjunction of two covers.
    pub fn or(&self, other: &Cover) -> Cover {
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().cloned());
        Cover::from_cubes(cubes)
    }

    /// Conjunction of two covers (cube-by-cube distribution).
    pub fn and(&self, other: &Cover) -> Cover {
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.intersect(b) {
                    cubes.push(c);
                }
            }
        }
        Cover::from_cubes(cubes)
    }

    /// Multiplies the cover by a single cube.
    pub fn and_cube(&self, cube: &Cube) -> Cover {
        Cover::from_cubes(
            self.cubes
                .iter()
                .filter_map(|c| c.intersect(cube))
                .collect(),
        )
    }

    /// The largest cube dividing every cube of the cover. A cover is
    /// *cube-free* if this is the constant-one cube (and it has ≥ 2 cubes).
    pub fn common_cube(&self) -> Cube {
        let mut iter = self.cubes.iter();
        let first = match iter.next() {
            Some(c) => c.clone(),
            None => return Cube::one(),
        };
        iter.fold(first, |acc, c| acc.common(c))
    }

    /// Whether the cover is cube-free (no literal appears in all cubes) and
    /// has at least two cubes — the precondition for being a kernel.
    pub fn is_cube_free(&self) -> bool {
        self.cubes.len() >= 2 && self.common_cube().is_one()
    }

    /// Evaluates the cover under an assignment function.
    pub fn eval(&self, value: impl Fn(u32) -> bool + Copy) -> bool {
        self.cubes.iter().any(|c| c.eval(value))
    }

    /// Substitutes every occurrence of `signal` (either phase) using the
    /// covers `pos` (for positive literals) and `neg` (for negative
    /// literals): the collapse primitive of node elimination.
    pub fn substitute(&self, signal: u32, pos: &Cover, neg: &Cover) -> Cover {
        let mut cubes = Vec::new();
        for c in &self.cubes {
            let plit = SignalLit::positive(signal);
            let nlit = SignalLit::negative(signal);
            if c.contains(plit) {
                let Some(rest) = c.quotient(&Cube::from_lits(&[plit])) else {
                    unreachable!("quotient by a contained literal always divides");
                };
                for p in pos.cubes() {
                    if let Some(merged) = rest.intersect(p) {
                        cubes.push(merged);
                    }
                }
            } else if c.contains(nlit) {
                let Some(rest) = c.quotient(&Cube::from_lits(&[nlit])) else {
                    unreachable!("quotient by a contained literal always divides");
                };
                for n in neg.cubes() {
                    if let Some(merged) = rest.intersect(n) {
                        cubes.push(merged);
                    }
                }
            } else {
                cubes.push(c.clone());
            }
        }
        Cover::from_cubes(cubes)
    }

    /// The complement of the cover, computed by unate-style Shannon
    /// recursion. Returns `None` if the intermediate covers exceed
    /// `cube_limit` cubes (complementation can blow up exponentially).
    pub fn complement(&self, cube_limit: usize) -> Option<Cover> {
        if self.is_zero() {
            return Some(Cover::one());
        }
        if self.is_one() {
            return Some(Cover::zero());
        }
        // Pick the most frequent signal to branch on, breaking frequency
        // ties by smallest signal: the counts live in a `HashMap`, so a
        // bare `max_by_key` would resolve ties by hash-iteration order and
        // make the recursion (and every caller up to the hetero engine's
        // parallel-vs-serial agreement) nondeterministic.
        let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for c in &self.cubes {
            for l in c.lits() {
                *counts.entry(l.signal()).or_insert(0) += 1;
            }
        }
        // sbm-lint: allow(D001) max_by_key key (count, Reverse(signal)) is total over distinct signals — winner is order-independent
        let (&signal, _) = counts
            .iter()
            .max_by_key(|(&s, &n)| (n, std::cmp::Reverse(s)))?;
        let c0 = self.cofactor(SignalLit::negative(signal));
        let c1 = self.cofactor(SignalLit::positive(signal));
        let n0 = c0.complement(cube_limit)?;
        let n1 = c1.complement(cube_limit)?;
        let x0 = n0.and_cube(&Cube::from_lits(&[SignalLit::negative(signal)]));
        let x1 = n1.and_cube(&Cube::from_lits(&[SignalLit::positive(signal)]));
        let result = x0.or(&x1);
        if result.num_cubes() > cube_limit {
            None
        } else {
            Some(result)
        }
    }

    /// The cofactor with respect to `lit` being true: cubes containing the
    /// opposite literal drop out; occurrences of `lit` are erased.
    pub fn cofactor(&self, lit: SignalLit) -> Cover {
        let mut cubes = Vec::new();
        for c in &self.cubes {
            if c.contains(lit.negate()) {
                continue;
            }
            cubes.push(match c.quotient(&Cube::from_lits(&[lit])) {
                Some(q) => q,
                None => c.clone(),
            });
        }
        Cover::from_cubes(cubes)
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromIterator<Cube> for Cover {
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Self {
        Cover::from_cubes(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: u32) -> SignalLit {
        SignalLit::positive(s)
    }

    fn nlit(s: u32) -> SignalLit {
        SignalLit::negative(s)
    }

    #[test]
    fn cube_basics() {
        let c = Cube::from_lits(&[lit(2), lit(0), nlit(1)]);
        assert_eq!(c.num_lits(), 3);
        assert!(c.contains(nlit(1)));
        assert!(!c.contains(lit(1)));
        assert!(c.mentions(1));
        assert!(Cube::one().is_one());
    }

    #[test]
    #[should_panic(expected = "contradictory")]
    fn contradictory_cube_panics() {
        Cube::from_lits(&[lit(0), nlit(0)]);
    }

    #[test]
    fn cube_intersect() {
        let a = Cube::from_lits(&[lit(0), lit(1)]);
        let b = Cube::from_lits(&[lit(1), nlit(2)]);
        let ab = a.intersect(&b).unwrap();
        assert_eq!(ab, Cube::from_lits(&[lit(0), lit(1), nlit(2)]));
        let c = Cube::from_lits(&[nlit(0)]);
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn cube_quotient() {
        let a = Cube::from_lits(&[lit(0), lit(1), lit(2)]);
        let d = Cube::from_lits(&[lit(1)]);
        assert_eq!(a.quotient(&d).unwrap(), Cube::from_lits(&[lit(0), lit(2)]));
        let e = Cube::from_lits(&[lit(3)]);
        assert!(a.quotient(&e).is_none());
    }

    #[test]
    fn scc_minimization() {
        // a + a·b = a
        let cover = Cover::from_cubes(vec![
            Cube::from_lits(&[lit(0)]),
            Cube::from_lits(&[lit(0), lit(1)]),
        ]);
        assert_eq!(cover.num_cubes(), 1);
        assert_eq!(cover.cubes()[0], Cube::from_lits(&[lit(0)]));
    }

    #[test]
    fn or_and_eval() {
        // f = a·b + c'
        let f = Cover::from_cubes(vec![
            Cube::from_lits(&[lit(0), lit(1)]),
            Cube::from_lits(&[nlit(2)]),
        ]);
        let val = |a: bool, b: bool, c: bool| f.eval(|s| [a, b, c][s as usize]);
        assert!(val(true, true, true));
        assert!(val(false, false, false));
        assert!(!val(false, true, true));
    }

    #[test]
    fn common_cube_and_cube_free() {
        // a·b + a·c — common cube a, not cube-free.
        let f = Cover::from_cubes(vec![
            Cube::from_lits(&[lit(0), lit(1)]),
            Cube::from_lits(&[lit(0), lit(2)]),
        ]);
        assert_eq!(f.common_cube(), Cube::from_lits(&[lit(0)]));
        assert!(!f.is_cube_free());
        // b + c is cube-free.
        let k = Cover::from_cubes(vec![Cube::from_lits(&[lit(1)]), Cube::from_lits(&[lit(2)])]);
        assert!(k.is_cube_free());
    }

    #[test]
    fn substitute_positive_and_negative() {
        // f = x·a + x'·b, with x = c·d (so x' = c' + d').
        let f = Cover::from_cubes(vec![
            Cube::from_lits(&[lit(9), lit(0)]),
            Cube::from_lits(&[nlit(9), lit(1)]),
        ]);
        let pos = Cover::from_cubes(vec![Cube::from_lits(&[lit(2), lit(3)])]);
        let neg = Cover::from_cubes(vec![
            Cube::from_lits(&[nlit(2)]),
            Cube::from_lits(&[nlit(3)]),
        ]);
        let g = f.substitute(9, &pos, &neg);
        // g = a·c·d + b·c' + b·d'
        assert_eq!(g.num_cubes(), 3);
        for m in 0..16u32 {
            let v = |s: u32| (m >> s) & 1 == 1;
            let x = v(2) && v(3);
            let expected = (x && v(0)) || (!x && v(1));
            assert_eq!(g.eval(v), expected, "minterm {m}");
        }
    }

    #[test]
    fn complement_correct() {
        // f = a·b + c
        let f = Cover::from_cubes(vec![
            Cube::from_lits(&[lit(0), lit(1)]),
            Cube::from_lits(&[lit(2)]),
        ]);
        let nf = f.complement(100).unwrap();
        for m in 0..8u32 {
            let v = |s: u32| (m >> s) & 1 == 1;
            assert_eq!(nf.eval(v), !f.eval(v), "minterm {m}");
        }
    }

    #[test]
    fn complement_respects_limit() {
        // A wide XOR-like cover complements into many cubes; a tiny limit
        // must bail out rather than blow up.
        let mut cubes = Vec::new();
        for s in 0..8u32 {
            cubes.push(Cube::from_lits(&[lit(2 * s), lit(2 * s + 1)]));
        }
        let f = Cover::from_cubes(cubes);
        assert!(f.complement(4).is_none());
    }

    #[test]
    fn cofactor() {
        // f = a·b + a'·c; f|a = b, f|a' = c
        let f = Cover::from_cubes(vec![
            Cube::from_lits(&[lit(0), lit(1)]),
            Cube::from_lits(&[nlit(0), lit(2)]),
        ]);
        assert_eq!(f.cofactor(lit(0)), Cover::literal(lit(1)));
        assert_eq!(f.cofactor(nlit(0)), Cover::literal(lit(2)));
    }
}
