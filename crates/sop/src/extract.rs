//! Greedy divisor extraction — the *kerneling* step.
//!
//! After elimination has grown the SOPs, extraction finds common divisors
//! and pulls them out as new shared nodes. This implementation uses the
//! fast-extract family of divisors: **double-cube divisors** (the kernel
//! intersections of two-cube kernels) and **single-cube divisors** (pairs
//! of literals), applied greedily by exact literal saving. "Kernel
//! extraction … allows us to share large portions of logic circuits, which
//! are hard to find with other techniques" (paper, Section IV-B).

use std::collections::HashMap;

use crate::cover::{Cover, Cube, SignalLit};
use crate::divide::divide;
use crate::network::SopNetwork;

/// A candidate divisor: either a two-cube cover or a single cube.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Divisor {
    /// Two cube-free cubes (a double-cube divisor / 2-cube kernel).
    Double(Cube, Cube),
    /// A single cube of ≥ 2 literals.
    Single(Cube),
}

impl Divisor {
    fn to_cover(&self) -> Cover {
        match self {
            Divisor::Double(a, b) => Cover::from_cubes(vec![a.clone(), b.clone()]),
            Divisor::Single(c) => Cover::from_cubes(vec![c.clone()]),
        }
    }

    fn num_lits(&self) -> usize {
        match self {
            Divisor::Double(a, b) => a.num_lits() + b.num_lits(),
            Divisor::Single(c) => c.num_lits(),
        }
    }
}

/// Statistics of an extraction run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// New divisor nodes created.
    pub divisors_extracted: usize,
    /// Total literals saved (positive = improvement).
    pub literals_saved: i64,
}

/// Enumerates candidate divisors with their total per-occurrence literal
/// saving (before subtracting the cost of the new divisor node).
///
/// For a double-cube divisor `d` found in cubes `C·a + C·b` (co-kernel
/// cube `C`), rewriting the two cubes into `C·x` saves
/// `lits(d) + 2·|C| − (1 + |C|) = lits(d) + |C| − 1` literals. For a
/// single-cube divisor of `l` literals used once, the saving is `l − 1`.
fn candidates(net: &SopNetwork) -> HashMap<Divisor, i64> {
    let mut savings: HashMap<Divisor, i64> = HashMap::new();
    for s in net.live_nodes() {
        let cover = net.cover(s);
        let cubes = cover.cubes();
        // Double-cube divisors from every cube pair.
        for i in 0..cubes.len() {
            for j in i + 1..cubes.len() {
                let common = cubes[i].common(&cubes[j]);
                let (Some(a), Some(b)) = (cubes[i].quotient(&common), cubes[j].quotient(&common))
                else {
                    unreachable!("the common cube divides both of its cubes");
                };
                if a.is_one() || b.is_one() {
                    continue;
                }
                let saving = (a.num_lits() + b.num_lits() + common.num_lits()) as i64 - 1;
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                *savings.entry(Divisor::Double(a, b)).or_insert(0) += saving;
            }
        }
        // Single-cube divisors: all literal pairs within a cube.
        for c in cubes {
            let lits = c.lits();
            for i in 0..lits.len() {
                for j in i + 1..lits.len() {
                    let cube = Cube::from_lits(&[lits[i], lits[j]]);
                    *savings.entry(Divisor::Single(cube)).or_insert(0) += 1;
                }
            }
        }
    }
    savings
}

/// Estimated net literal saving of extracting `d`: the accumulated
/// per-occurrence savings minus the cost of the new divisor node.
fn estimated_value(d: &Divisor, total_saving: i64) -> i64 {
    total_saving - d.num_lits() as i64
}

/// Substitutes divisor cover `d` (new signal `x`) into `cover`; returns the
/// rewritten cover if it strictly saves literals.
fn substitute_divisor(cover: &Cover, d: &Cover, x: u32) -> Option<Cover> {
    let (q, r) = divide(cover, d);
    if q.is_zero() {
        return None;
    }
    let xlit = Cube::from_lits(&[SignalLit::positive(x)]);
    let rewritten = q.and_cube(&xlit).or(&r);
    if rewritten.num_lits() < cover.num_lits() {
        Some(rewritten)
    } else {
        None
    }
}

/// Runs greedy extraction until no divisor with positive value remains (or
/// `max_rounds` is hit). Returns the statistics.
///
/// # Example
///
/// ```
/// use sbm_sop::{Cover, Cube, SignalLit, SopNetwork};
/// use sbm_sop::extract::extract;
///
/// // f = a·c + b·c, g = a·d + b·d: divisor (a + b) shared by both.
/// let l = SignalLit::positive;
/// let mut net = SopNetwork::new(4);
/// let f = net.add_node(Cover::from_cubes(vec![
///     Cube::from_lits(&[l(0), l(2)]),
///     Cube::from_lits(&[l(1), l(2)]),
/// ]));
/// let g = net.add_node(Cover::from_cubes(vec![
///     Cube::from_lits(&[l(0), l(3)]),
///     Cube::from_lits(&[l(1), l(3)]),
/// ]));
/// net.add_output(l(f));
/// net.add_output(l(g));
/// let before = net.num_lits();
/// let stats = extract(&mut net, 10);
/// assert!(net.num_lits() < before);
/// assert!(stats.divisors_extracted >= 1);
/// ```
pub fn extract(net: &mut SopNetwork, max_rounds: usize) -> ExtractStats {
    let mut stats = ExtractStats::default();
    for _ in 0..max_rounds {
        let cands = candidates(net);
        // Rank by estimated value; try the best few with exact accounting.
        let mut ranked: Vec<(Divisor, i64)> = cands
            .into_iter()
            .filter(|(d, saving)| estimated_value(d, *saving) > 0)
            .collect();
        // Tie-break equal-value divisors by the divisor itself: `cands`
        // is a HashMap, so relying on stable sort alone would make the
        // greedy choice (and the final network) nondeterministic.
        ranked.sort_by(|(da, sa), (db, sb)| {
            estimated_value(db, *sb)
                .cmp(&estimated_value(da, *sa))
                .then_with(|| da.cmp(db))
        });
        let mut applied = false;
        for (divisor, _) in ranked.into_iter().take(8) {
            let d = divisor.to_cover();
            let before = net.num_lits() as i64;
            // Tentatively create the divisor node and rewrite users.
            let x = net.add_node(d.clone());
            let mut rewrote = false;
            for s in net.live_nodes() {
                if s == x {
                    continue;
                }
                if let Some(newc) = substitute_divisor(net.cover(s), &d, x) {
                    net.set_cover(s, newc);
                    rewrote = true;
                }
            }
            let after = net.num_lits() as i64;
            if rewrote && after < before {
                stats.divisors_extracted += 1;
                stats.literals_saved += before - after;
                applied = true;
                break;
            }
            // No exact gain: the new node is dead (no references) and will
            // be dropped by cleanup. Undo any rewrites by reverting is not
            // needed because substitute_divisor only fired when it strictly
            // reduced that cover; if total didn't improve, keep going.
            if rewrote && after >= before {
                applied = true;
                break;
            }
        }
        if !applied {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: u32) -> SignalLit {
        SignalLit::positive(s)
    }

    fn cover(cubes: &[&[SignalLit]]) -> Cover {
        Cover::from_cubes(cubes.iter().map(|c| Cube::from_lits(c)).collect())
    }

    #[test]
    fn extracts_shared_kernel() {
        // f = a·c + b·c + a·d + b·d → x = a + b; f = x·c + x·d.
        let mut net = SopNetwork::new(4);
        let f = net.add_node(cover(&[
            &[lit(0), lit(2)],
            &[lit(1), lit(2)],
            &[lit(0), lit(3)],
            &[lit(1), lit(3)],
        ]));
        net.add_output(lit(f));
        let before = net.num_lits();
        let stats = extract(&mut net, 10);
        assert!(stats.divisors_extracted >= 1);
        assert!(net.num_lits() < before, "{} -> {}", before, net.num_lits());
        // Function preserved.
        for m in 0..16u32 {
            let assignment: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let expected = ((m & 1 != 0) || (m & 2 != 0)) && ((m & 4 != 0) || (m & 8 != 0));
            assert_eq!(net.eval(&assignment), vec![expected], "minterm {m}");
        }
    }

    #[test]
    fn extracts_single_cube_divisor() {
        // f = a·b·c, g = a·b·d → x = a·b shared.
        let mut net = SopNetwork::new(4);
        let f = net.add_node(cover(&[&[lit(0), lit(1), lit(2)]]));
        let g = net.add_node(cover(&[&[lit(0), lit(1), lit(3)]]));
        net.add_output(lit(f));
        net.add_output(lit(g));
        let stats = extract(&mut net, 10);
        // 6 lits -> x(2) + f(2) + g(2) = 6: no strict gain for k=2, l=2.
        // With three users it pays off:
        let mut net3 = SopNetwork::new(5);
        let f = net3.add_node(cover(&[&[lit(0), lit(1), lit(2)]]));
        let g = net3.add_node(cover(&[&[lit(0), lit(1), lit(3)]]));
        let h = net3.add_node(cover(&[&[lit(0), lit(1), lit(4)]]));
        net3.add_output(lit(f));
        net3.add_output(lit(g));
        net3.add_output(lit(h));
        let before = net3.num_lits();
        let stats3 = extract(&mut net3, 10);
        assert!(stats3.divisors_extracted >= 1);
        assert!(net3.num_lits() < before);
        let _ = stats;
    }

    #[test]
    fn no_extraction_when_nothing_shared() {
        let mut net = SopNetwork::new(4);
        let f = net.add_node(cover(&[&[lit(0), lit(1)]]));
        let g = net.add_node(cover(&[&[lit(2), lit(3)]]));
        net.add_output(lit(f));
        net.add_output(lit(g));
        let before = net.num_lits();
        let stats = extract(&mut net, 10);
        assert_eq!(stats.divisors_extracted, 0);
        assert_eq!(net.num_lits(), before);
    }

    #[test]
    fn extraction_preserves_function_on_mixed_phases() {
        // f = a'·c + b·c + a'·d + b·d with negative literals.
        let a = SignalLit::negative(0);
        let (b, c, d) = (lit(1), lit(2), lit(3));
        let mut net = SopNetwork::new(4);
        let f = net.add_node(cover(&[&[a, c], &[b, c], &[a, d], &[b, d]]));
        net.add_output(lit(f));
        let snapshots: Vec<_> = (0..16)
            .map(|m| {
                let assignment: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
                net.eval(&assignment)
            })
            .collect();
        extract(&mut net, 10);
        for (m, snap) in snapshots.iter().enumerate() {
            let assignment: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(&net.eval(&assignment), snap, "minterm {m}");
        }
    }
}
