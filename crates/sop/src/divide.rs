//! Algebraic (weak) division of covers.
//!
//! Weak division finds, for a cover `f` and divisor `d`, the unique largest
//! quotient `q` and remainder `r` such that `f = q·d + r` algebraically
//! (no use of Boolean identities; the cubes of `q·d` are literally cubes of
//! `f`). It is the workhorse of kernel-based extraction (De Micheli \[10\]).

use crate::cover::{Cover, Cube};

/// Divides `f` by the single cube `d`: the quotient collects every cube of
/// `f` containing `d`, with `d`'s literals erased; the remainder is the
/// rest.
pub fn divide_by_cube(f: &Cover, d: &Cube) -> (Cover, Cover) {
    let mut q = Vec::new();
    let mut r = Vec::new();
    for c in f.cubes() {
        match c.quotient(d) {
            Some(qc) => q.push(qc),
            None => r.push(c.clone()),
        }
    }
    (Cover::from_cubes(q), Cover::from_cubes(r))
}

/// Weak division `f / d` for a multi-cube divisor: the quotient is the
/// intersection of the per-cube quotients, the remainder is `f − q·d`.
///
/// Returns `(q, r)` with `f = q·d + r` (checked by the crate's property
/// tests). When `d` does not divide `f`, `q` is the zero cover and `r = f`.
pub fn divide(f: &Cover, d: &Cover) -> (Cover, Cover) {
    if d.is_zero() {
        return (Cover::zero(), f.clone());
    }
    let mut quotient: Option<Vec<Cube>> = None;
    for dc in d.cubes() {
        let (qi, _) = divide_by_cube(f, dc);
        let set: Vec<Cube> = qi.cubes().to_vec();
        quotient = Some(match quotient {
            None => set,
            Some(prev) => prev.into_iter().filter(|c| set.contains(c)).collect(),
        });
        if quotient.as_ref().is_some_and(Vec::is_empty) {
            break;
        }
    }
    let q = Cover::from_cubes(quotient.unwrap_or_default());
    if q.is_zero() {
        return (Cover::zero(), f.clone());
    }
    // r = f − q·d, cube-wise (q·d's cubes are cubes of f by construction).
    let qd = q.and(d);
    let r = Cover::from_cubes(
        f.cubes()
            .iter()
            .filter(|c| !qd.cubes().contains(c))
            .cloned()
            .collect(),
    );
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::SignalLit;

    fn lit(s: u32) -> SignalLit {
        SignalLit::positive(s)
    }

    fn cover(cubes: &[&[SignalLit]]) -> Cover {
        Cover::from_cubes(cubes.iter().map(|c| Cube::from_lits(c)).collect())
    }

    #[test]
    fn textbook_division() {
        // f = a·c + a·d + b·c + b·d + e;  d = a + b
        // q = c + d, r = e.
        let (a, b, c, d, e) = (lit(0), lit(1), lit(2), lit(3), lit(4));
        let f = cover(&[&[a, c], &[a, d], &[b, c], &[b, d], &[e]]);
        let div = cover(&[&[a], &[b]]);
        let (q, r) = divide(&f, &div);
        assert_eq!(q, cover(&[&[c], &[d]]));
        assert_eq!(r, cover(&[&[e]]));
    }

    #[test]
    fn division_identity() {
        // f = q·d + r must hold.
        let (a, b, c, d, e) = (lit(0), lit(1), lit(2), lit(3), lit(4));
        let f = cover(&[&[a, c], &[a, d], &[b, c], &[b, d], &[e]]);
        let div = cover(&[&[a], &[b]]);
        let (q, r) = divide(&f, &div);
        assert_eq!(q.and(&div).or(&r), f);
    }

    #[test]
    fn non_divisor_gives_zero_quotient() {
        let (a, b, z) = (lit(0), lit(1), lit(9));
        let f = cover(&[&[a], &[b]]);
        let div = cover(&[&[z]]);
        let (q, r) = divide(&f, &div);
        assert!(q.is_zero());
        assert_eq!(r, f);
    }

    #[test]
    fn cube_division() {
        // f = a·b·c + a·b·d + e; divide by cube a·b.
        let (a, b, c, d, e) = (lit(0), lit(1), lit(2), lit(3), lit(4));
        let f = cover(&[&[a, b, c], &[a, b, d], &[e]]);
        let (q, r) = divide_by_cube(&f, &Cube::from_lits(&[a, b]));
        assert_eq!(q, cover(&[&[c], &[d]]));
        assert_eq!(r, cover(&[&[e]]));
    }

    #[test]
    fn divide_by_one_returns_f() {
        let (a, b) = (lit(0), lit(1));
        let f = cover(&[&[a], &[b]]);
        let (q, r) = divide(&f, &Cover::one());
        assert_eq!(q, f);
        assert!(r.is_zero());
    }
}
