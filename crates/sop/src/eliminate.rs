//! Node elimination (forward collapsing) under a literal-variation
//! threshold.
//!
//! "Node elimination, also known as forward node collapsing, aims at
//! collapsing a node into its fanouts' SOPs. As a result, the node is
//! eliminated" (paper, Section IV-B footnote). "We go over all nodes … and
//! for each node, we estimate the variation in the number of literals …
//! that would result from the collapsing of the node into its fanouts. If
//! this variation is less than the specified threshold, the collapsing is
//! performed. The operation is repeated until no node gets collapsed."
//!
//! The threshold is the knob the heterogeneous engine sweeps over
//! `(-1, 2, 5, 20, 50, 100, 200, 300)`.

use crate::cover::{Cover, SignalLit};
use crate::network::SopNetwork;

/// Cube budget for computing a collapsed node's complement (needed when a
/// fanout uses the node in the negative phase).
const COMPLEMENT_CUBE_LIMIT: usize = 64;

/// Statistics of an eliminate pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EliminateStats {
    /// Nodes collapsed into their fanouts.
    pub collapsed: usize,
    /// Passes over the network until a fixpoint.
    pub passes: usize,
}

/// Computes the literal variation that collapsing `signal` into its fanouts
/// would cause: `Σ lits(fanout after) − Σ lits(fanout before) − lits(node)`
/// (the node's own cover disappears when the node dies).
///
/// Returns `None` if the collapse is infeasible (a fanout uses the node in
/// the negative phase and the complement blows past the cube budget, or the
/// node drives a primary output so it cannot die).
pub fn collapse_variation(net: &SopNetwork, signal: u32) -> Option<i64> {
    if net.is_input(signal) {
        return None;
    }
    if net.outputs().iter().any(|l| l.signal() == signal) {
        return None;
    }
    let fanouts = net.fanouts();
    let users = fanouts.get(&signal)?;
    let pos = net.cover(signal).clone();
    let needs_neg = users.iter().any(|&u| {
        net.cover(u)
            .cubes()
            .iter()
            .any(|c| c.contains(SignalLit::negative(signal)))
    });
    let neg = if needs_neg {
        pos.complement(COMPLEMENT_CUBE_LIMIT)?
    } else {
        Cover::zero()
    };
    let mut delta: i64 = -(pos.num_lits() as i64);
    for &u in users {
        let before = net.cover(u).num_lits() as i64;
        let after = net.cover(u).substitute(signal, &pos, &neg).num_lits() as i64;
        delta += after - before;
    }
    Some(delta)
}

/// Collapses `signal` into all its fanouts (unconditionally, as long as it
/// is feasible). Returns whether the collapse happened.
pub fn collapse(net: &mut SopNetwork, signal: u32) -> bool {
    if net.is_input(signal) || net.outputs().iter().any(|l| l.signal() == signal) {
        return false;
    }
    let fanouts = net.fanouts();
    let users = match fanouts.get(&signal) {
        Some(u) => u.clone(),
        None => return false,
    };
    let pos = net.cover(signal).clone();
    let needs_neg = users.iter().any(|&u| {
        net.cover(u)
            .cubes()
            .iter()
            .any(|c| c.contains(SignalLit::negative(signal)))
    });
    let neg = if needs_neg {
        match pos.complement(COMPLEMENT_CUBE_LIMIT) {
            Some(n) => n,
            None => return false,
        }
    } else {
        Cover::zero()
    };
    for u in users {
        let new_cover = net.cover(u).substitute(signal, &pos, &neg);
        net.set_cover(u, new_cover);
    }
    true
}

/// Runs eliminate to a fixpoint with the given literal-variation
/// `threshold`: a node is collapsed when its variation is **less than** the
/// threshold (paper wording). Threshold `-1` therefore only collapses nodes
/// that strictly reduce literals by at least 2; threshold `300` collapses
/// almost everything feasible.
pub fn eliminate(net: &mut SopNetwork, threshold: i64) -> EliminateStats {
    let mut stats = EliminateStats::default();
    loop {
        stats.passes += 1;
        let mut any = false;
        // Snapshot the node list: collapsing changes fanouts as we go.
        for signal in net.live_nodes() {
            if let Some(delta) = collapse_variation(net, signal) {
                if delta < threshold && collapse(net, signal) {
                    stats.collapsed += 1;
                    any = true;
                }
            }
        }
        if !any {
            return stats;
        }
        // Safety valve against pathological ping-pong (collapse cannot
        // re-create nodes, so this is just an upper bound on passes).
        if stats.passes > 64 {
            return stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::{Cover, Cube, SignalLit};
    use crate::network::SopNetwork;

    fn lit(s: u32) -> SignalLit {
        SignalLit::positive(s)
    }

    /// x = a·b; f = x·c — collapsing x gives f = a·b·c.
    fn simple_chain() -> (SopNetwork, u32, u32) {
        let mut net = SopNetwork::new(3);
        let x = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[lit(0), lit(1)])]));
        let f = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[lit(x), lit(2)])]));
        net.add_output(lit(f));
        (net, x, f)
    }

    #[test]
    fn variation_estimates_collapse() {
        let (net, x, _) = simple_chain();
        // Before: x has 2 lits, f has 2 lits (4 total). After: f has 3 lits.
        // delta = 3 - 2 - 2 = -1.
        assert_eq!(collapse_variation(&net, x), Some(-1));
    }

    #[test]
    fn collapse_preserves_function() {
        let (mut net, x, _) = simple_chain();
        let before: Vec<_> = (0..8)
            .map(|m| net.eval(&[(m & 1) == 1, (m >> 1) & 1 == 1, (m >> 2) & 1 == 1]))
            .collect();
        assert!(collapse(&mut net, x));
        let after: Vec<_> = (0..8)
            .map(|m| net.eval(&[(m & 1) == 1, (m >> 1) & 1 == 1, (m >> 2) & 1 == 1]))
            .collect();
        assert_eq!(before, after);
        // x is now dead.
        assert!(!net.live_nodes().contains(&x));
    }

    #[test]
    fn negative_phase_collapse_uses_complement() {
        let mut net = SopNetwork::new(2);
        // x = a·b; f = x' (pure complement use).
        let x = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[lit(0), lit(1)])]));
        let f = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[
            SignalLit::negative(x),
        ])]));
        net.add_output(lit(f));
        assert!(collapse(&mut net, x));
        assert_eq!(net.eval(&[true, true]), vec![false]);
        assert_eq!(net.eval(&[true, false]), vec![true]);
    }

    #[test]
    fn output_nodes_not_collapsed() {
        let mut net = SopNetwork::new(2);
        let x = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[lit(0), lit(1)])]));
        net.add_output(lit(x));
        assert_eq!(collapse_variation(&net, x), None);
        assert!(!collapse(&mut net, x));
    }

    #[test]
    fn threshold_controls_aggressiveness() {
        // y = a + b (2 lits); f = y·c + y·d (4 lits). Collapsing y:
        // f = a·c + b·c + a·d + b·d (8 lits): delta = 8 - 4 - 2 = +2.
        let mut net = SopNetwork::new(4);
        let y = net.add_node(Cover::from_cubes(vec![
            Cube::from_lits(&[lit(0)]),
            Cube::from_lits(&[lit(1)]),
        ]));
        let f = net.add_node(Cover::from_cubes(vec![
            Cube::from_lits(&[lit(y), lit(2)]),
            Cube::from_lits(&[lit(y), lit(3)]),
        ]));
        net.add_output(lit(f));
        assert_eq!(collapse_variation(&net, y), Some(2));
        // threshold -1: not collapsed.
        let mut strict = net.clone();
        let stats = eliminate(&mut strict, -1);
        assert_eq!(stats.collapsed, 0);
        assert!(strict.live_nodes().contains(&y));
        // threshold 5 (> 2): collapsed.
        let mut loose = net.clone();
        let stats = eliminate(&mut loose, 5);
        assert_eq!(stats.collapsed, 1);
        assert!(!loose.live_nodes().contains(&y));
    }

    #[test]
    fn eliminate_reaches_fixpoint() {
        // A chain of single-literal buffers all collapse away.
        let mut net = SopNetwork::new(1);
        let mut cur = 0u32;
        for _ in 0..5 {
            cur = net.add_node(Cover::literal(lit(cur)));
        }
        let f = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[lit(cur)])]));
        net.add_output(lit(f));
        let stats = eliminate(&mut net, 2);
        assert_eq!(stats.collapsed, 5);
        assert_eq!(net.live_nodes().len(), 1);
        assert_eq!(net.eval(&[true]), vec![true]);
    }
}
