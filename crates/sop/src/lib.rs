//! Multi-level logic networks of sum-of-products (SOP) nodes.
//!
//! This crate is the substrate for the paper's **heterogeneous elimination
//! for kernel extraction** engine (Section IV-B): "kernel extraction is one
//! of the most effective techniques in logic optimization … prior to kernel
//! extraction, node elimination is often used to create larger SOPs."
//!
//! It provides:
//!
//! * [`Cube`] / [`Cover`] — sparse cubes and two-level covers over network
//!   signals;
//! * [`divide`] — algebraic (weak) division `f = q·d + r`;
//! * [`kernel`] — kernels and co-kernels of a cover;
//! * [`factor`] — algebraic factoring, used to emit compact AIGs;
//! * [`SopNetwork`] — the multi-level network with AIG round-trip
//!   conversions;
//! * [`eliminate`] — forward node collapsing under a literal-variation
//!   threshold (the knob the heterogeneous engine sweeps);
//! * [`extract`] — greedy divisor extraction (single- and double-cube
//!   divisors, the fast-extract family), which realizes kerneling.
//!
//! # Example
//!
//! ```
//! use sbm_sop::{Cover, Cube, SignalLit};
//!
//! // f = a·b + a·c — one kernel (b + c) with co-kernel a.
//! let a = SignalLit::positive(0);
//! let b = SignalLit::positive(1);
//! let c = SignalLit::positive(2);
//! let f = Cover::from_cubes(vec![Cube::from_lits(&[a, b]), Cube::from_lits(&[a, c])]);
//! let kernels = sbm_sop::kernel::kernels(&f);
//! assert!(kernels.iter().any(|(k, _)| k.num_cubes() == 2));
//! ```

mod cover;
pub mod divide;
pub mod eliminate;
pub mod extract;
pub mod factor;
pub mod isop;
pub mod kernel;
mod network;

pub use cover::{Cover, Cube, SignalLit};
pub use network::{Signal, SopNetwork};
