//! Algebraic factoring of covers.
//!
//! Factoring turns a flat SOP into a nested AND/OR form with fewer literals;
//! it is how SOP nodes are implemented compactly when the network is
//! translated back to an AIG after elimination/kerneling (paper Section
//! V-A: "after each transformation, the logic network is translated into an
//! AIG").

use std::fmt;

use crate::cover::{Cover, Cube, SignalLit};
use crate::divide::divide_by_cube;

/// A factored Boolean expression over network signals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Factored {
    /// Constant false.
    Zero,
    /// Constant true.
    One,
    /// A single literal.
    Lit(SignalLit),
    /// Conjunction.
    And(Box<Factored>, Box<Factored>),
    /// Disjunction.
    Or(Box<Factored>, Box<Factored>),
}

impl Factored {
    /// Number of literal leaves — the factored literal count.
    pub fn num_lits(&self) -> usize {
        match self {
            Factored::Zero | Factored::One => 0,
            Factored::Lit(_) => 1,
            Factored::And(a, b) | Factored::Or(a, b) => a.num_lits() + b.num_lits(),
        }
    }

    /// Evaluates under an assignment function.
    pub fn eval(&self, value: impl Fn(u32) -> bool + Copy) -> bool {
        match self {
            Factored::Zero => false,
            Factored::One => true,
            Factored::Lit(l) => value(l.signal()) != l.is_negated(),
            Factored::And(a, b) => a.eval(value) && b.eval(value),
            Factored::Or(a, b) => a.eval(value) || b.eval(value),
        }
    }
}

impl fmt::Display for Factored {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Factored::Zero => write!(f, "0"),
            Factored::One => write!(f, "1"),
            Factored::Lit(l) => write!(f, "{l}"),
            Factored::And(a, b) => write!(f, "({a}·{b})"),
            Factored::Or(a, b) => write!(f, "({a} + {b})"),
        }
    }
}

fn and(a: Factored, b: Factored) -> Factored {
    match (a, b) {
        (Factored::Zero, _) | (_, Factored::Zero) => Factored::Zero,
        (Factored::One, x) | (x, Factored::One) => x,
        (a, b) => Factored::And(Box::new(a), Box::new(b)),
    }
}

fn or(a: Factored, b: Factored) -> Factored {
    match (a, b) {
        (Factored::One, _) | (_, Factored::One) => Factored::One,
        (Factored::Zero, x) | (x, Factored::Zero) => x,
        (a, b) => Factored::Or(Box::new(a), Box::new(b)),
    }
}

fn cube_to_factored(c: &Cube) -> Factored {
    c.lits()
        .iter()
        .fold(Factored::One, |acc, &l| and(acc, Factored::Lit(l)))
}

/// Literal factoring: repeatedly divide out the most frequent literal.
///
/// Produces `f = l·(f/l) + r` recursively; exact (the result evaluates to
/// the same function as the cover — algebraic factoring never uses Boolean
/// identities).
///
/// # Example
///
/// ```
/// use sbm_sop::{Cover, Cube, SignalLit};
/// use sbm_sop::factor::factor;
///
/// let a = SignalLit::positive(0);
/// let b = SignalLit::positive(1);
/// let c = SignalLit::positive(2);
/// // a·b + a·c factors to a·(b + c): 3 literals instead of 4.
/// let f = Cover::from_cubes(vec![
///     Cube::from_lits(&[a, b]),
///     Cube::from_lits(&[a, c]),
/// ]);
/// assert_eq!(factor(&f).num_lits(), 3);
/// ```
pub fn factor(f: &Cover) -> Factored {
    if f.is_zero() {
        return Factored::Zero;
    }
    if f.is_one() {
        return Factored::One;
    }
    if f.num_cubes() == 1 {
        return cube_to_factored(&f.cubes()[0]);
    }
    // Pull out the global common cube first.
    let cc = f.common_cube();
    if !cc.is_one() {
        let (q, _) = divide_by_cube(f, &cc);
        return and(cube_to_factored(&cc), factor(&q));
    }
    // Kernel-based step: divide by the best proper kernel, which captures
    // multi-cube sharing like (a + b)(c + d) that literal factoring misses.
    // Kernel enumeration is super-linear in the cube count; wide covers
    // (e.g. parity ISOPs) fall back to literal factoring.
    let proper_kernels: Vec<Cover> = if f.num_cubes() > 24 {
        Vec::new()
    } else {
        crate::kernel::kernels(f)
            .into_iter()
            .map(|(k, _)| k)
            .filter(|k| k != f && k.num_cubes() >= 2)
            .collect()
    };
    let best_kernel = proper_kernels.into_iter().max_by_key(|k| {
        let (q, _) = crate::divide::divide(f, k);
        // Prefer kernels that remove the most literals from f.
        (q.num_cubes().saturating_sub(1)) * k.num_lits()
    });
    if let Some(k) = best_kernel {
        let (q, r) = crate::divide::divide(f, &k);
        if !q.is_zero() && q.num_cubes() >= 1 && (q.num_cubes() > 1 || k.num_lits() > 1) {
            return or(and(factor(&q), factor(&k)), factor(&r));
        }
    }
    // Fall back to literal factoring on the most frequent literal.
    let mut best: Option<(SignalLit, usize)> = None;
    for c in f.cubes() {
        for &l in c.lits() {
            let count = f.lit_count(l);
            if best.is_none_or(|(_, b)| count > b) {
                best = Some((l, count));
            }
        }
    }
    match best {
        Some((l, count)) if count >= 2 => {
            let (q, r) = divide_by_cube(f, &Cube::from_lits(&[l]));
            or(and(Factored::Lit(l), factor(&q)), factor(&r))
        }
        _ => {
            // No sharing: plain OR of cubes.
            f.cubes()
                .iter()
                .fold(Factored::Zero, |acc, c| or(acc, cube_to_factored(c)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: u32) -> SignalLit {
        SignalLit::positive(s)
    }

    fn nlit(s: u32) -> SignalLit {
        SignalLit::negative(s)
    }

    fn cover(cubes: &[&[SignalLit]]) -> Cover {
        Cover::from_cubes(cubes.iter().map(|c| Cube::from_lits(c)).collect())
    }

    fn check_equiv(f: &Cover, fac: &Factored, num_signals: u32) {
        for m in 0..(1u32 << num_signals) {
            let v = |s: u32| (m >> s) & 1 == 1;
            assert_eq!(f.eval(v), fac.eval(v), "minterm {m}: {f} vs {fac}");
        }
    }

    #[test]
    fn factor_shares_literals() {
        let (a, b, c, d) = (lit(0), lit(1), lit(2), lit(3));
        // a·b + a·c + a·d → a·(b + c + d): 4 lits.
        let f = cover(&[&[a, b], &[a, c], &[a, d]]);
        let fac = factor(&f);
        assert_eq!(fac.num_lits(), 4);
        check_equiv(&f, &fac, 4);
    }

    #[test]
    fn factor_textbook() {
        // f = a·c + a·d + b·c + b·d + e → (a+b)(c+d) + e: 5 lits vs 9.
        let (a, b, c, d, e) = (lit(0), lit(1), lit(2), lit(3), lit(4));
        let f = cover(&[&[a, c], &[a, d], &[b, c], &[b, d], &[e]]);
        let fac = factor(&f);
        assert!(fac.num_lits() <= 6, "got {} lits: {fac}", fac.num_lits());
        check_equiv(&f, &fac, 5);
    }

    #[test]
    fn factor_handles_phases() {
        let (a, b) = (lit(0), nlit(1));
        let f = cover(&[&[a, b], &[a.negate()]]);
        check_equiv(&f, &factor(&f), 2);
    }

    #[test]
    fn factor_constants() {
        assert_eq!(factor(&Cover::zero()), Factored::Zero);
        assert_eq!(factor(&Cover::one()), Factored::One);
    }

    #[test]
    fn factor_single_cube() {
        let (a, b, c) = (lit(0), lit(1), lit(2));
        let f = cover(&[&[a, b, c]]);
        let fac = factor(&f);
        assert_eq!(fac.num_lits(), 3);
        check_equiv(&f, &fac, 3);
    }
}
