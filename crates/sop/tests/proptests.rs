//! Property tests: SOP transformations must preserve network function, and
//! algebraic division must satisfy its defining identity.

use proptest::prelude::*;
use sbm_sop::{divide, eliminate, extract, factor, Cover, Cube, SignalLit, SopNetwork};

/// A random cover over `num_signals` input signals.
fn arb_cover(num_signals: u32) -> impl Strategy<Value = Cover> {
    let cube =
        proptest::collection::btree_map(0..num_signals, any::<bool>(), 1..=4).prop_map(|m| {
            Cube::from_lits(
                &m.into_iter()
                    .map(|(s, neg)| SignalLit::new(s, neg))
                    .collect::<Vec<_>>(),
            )
        });
    proptest::collection::vec(cube, 1..=6).prop_map(Cover::from_cubes)
}

/// A random 2-level network: `n` nodes over 5 inputs, later nodes may use
/// earlier node outputs.
fn arb_network() -> impl Strategy<Value = SopNetwork> {
    let node_cube = |pool: u32| {
        proptest::collection::btree_map(0..pool, any::<bool>(), 1..=3).prop_map(|m| {
            Cube::from_lits(
                &m.into_iter()
                    .map(|(s, neg)| SignalLit::new(s, neg))
                    .collect::<Vec<_>>(),
            )
        })
    };
    (2usize..=5).prop_flat_map(move |num_nodes| {
        let mut node_strats = Vec::new();
        for i in 0..num_nodes {
            let pool = 5 + i as u32;
            node_strats.push(
                proptest::collection::vec(node_cube(pool), 1..=4).prop_map(Cover::from_cubes),
            );
        }
        node_strats.prop_map(|covers| {
            let mut net = SopNetwork::new(5);
            let mut last = 0;
            for c in covers {
                last = net.add_node(c);
            }
            net.add_output(SignalLit::positive(last));
            net
        })
    })
}

fn truth_vector(net: &SopNetwork) -> Vec<Vec<bool>> {
    (0..32usize)
        .map(|m| {
            let assignment: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            net.eval(&assignment)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn division_identity(f in arb_cover(6), d in arb_cover(6)) {
        let (q, r) = divide::divide(&f, &d);
        // f ≡ q·d + r must hold as Boolean functions.
        let recombined = q.and(&d).or(&r);
        for m in 0..64u32 {
            let v = |s: u32| (m >> s) & 1 == 1;
            prop_assert_eq!(recombined.eval(v), f.eval(v), "minterm {}", m);
        }
    }

    #[test]
    fn factoring_is_exact(f in arb_cover(6)) {
        let fac = factor::factor(&f);
        for m in 0..64u32 {
            let v = |s: u32| (m >> s) & 1 == 1;
            prop_assert_eq!(fac.eval(v), f.eval(v), "minterm {}", m);
        }
        // Algebraic factoring never increases literal count.
        prop_assert!(fac.num_lits() <= f.num_lits());
    }

    #[test]
    fn complement_is_exact(f in arb_cover(5)) {
        if let Some(nf) = f.complement(256) {
            for m in 0..32u32 {
                let v = |s: u32| (m >> s) & 1 == 1;
                prop_assert_eq!(nf.eval(v), !f.eval(v), "minterm {}", m);
            }
        }
    }

    #[test]
    fn eliminate_preserves_function(mut net in arb_network(), threshold in -1i64..=300) {
        let before = truth_vector(&net);
        eliminate::eliminate(&mut net, threshold);
        prop_assert_eq!(truth_vector(&net), before);
    }

    #[test]
    fn extract_preserves_function(mut net in arb_network()) {
        let before = truth_vector(&net);
        let lits_before = net.num_lits();
        let stats = extract::extract(&mut net, 8);
        prop_assert_eq!(truth_vector(&net), before);
        if stats.divisors_extracted > 0 {
            prop_assert!(net.num_lits() <= lits_before);
        }
    }

    #[test]
    fn kernels_are_cube_free(f in arb_cover(6)) {
        for (k, _) in sbm_sop::kernel::kernels(&f) {
            prop_assert!(k.is_cube_free(), "kernel {} not cube-free", k);
        }
    }

    #[test]
    fn aig_round_trip_preserves_function(net in arb_network()) {
        let aig = net.to_aig();
        for m in 0..32usize {
            let assignment: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            prop_assert_eq!(aig.eval(&assignment), net.eval(&assignment));
        }
    }
}
