//! # sbm-journal — crash-safe persistence for pipeline runs
//!
//! The SBM flow runs for hours inside ASIC flows; a process crash, OOM
//! kill or operator Ctrl-C must not lose every completed window. This
//! crate provides the durability substrate:
//!
//! * a **versioned, CRC32-checked binary snapshot** format for [`Aig`]
//!   networks and [`SopNetwork`]s with atomic write-temp-then-rename
//!   semantics ([`snapshot`]),
//! * a **write-ahead window journal** — an append-only record per
//!   completed pipeline window (window id, outcome, pre/post hashes,
//!   gain, fault-ledger slice), fsync'd on a configurable
//!   `checkpoint_every` cadence ([`wal`]),
//! * the **resume bookkeeping** type [`ResumeSummary`] surfaced on
//!   `sbm-core`'s `PipelineReport`.
//!
//! The snapshot codec is *id-exact*: a cleaned AIG has a deterministic
//! layout (constant node 0, inputs `1..=I`, ANDs appended in creation
//! order), so decoding replays the same `add_input()`/`and()` calls and
//! asserts that every node receives the id it had when encoded. A
//! payload that does not round-trip exactly is rejected with
//! [`JournalError::NotCanonical`] — the codec doubles as a structural
//! validator, on top of the `sbm-check` validation the snapshot readers
//! run. Because ids survive the round trip, re-partitioning a restored
//! network reproduces the original run's windows exactly, which is what
//! makes journal replay sound.
//!
//! Nothing here panics on malformed input: truncated files, flipped
//! bytes and crafted payloads all surface as typed [`JournalError`]s,
//! and decoders never allocate based on unvalidated claimed sizes.

pub mod codec;
pub mod snapshot;
pub mod wal;

use std::fmt;
use std::path::PathBuf;

use sbm_check::CheckError;

pub use codec::{aig_fingerprint, decode_aig, decode_sop, encode_aig, encode_sop, Fnv64};
pub use snapshot::{
    read_aig_snapshot, read_sop_snapshot, write_aig_snapshot, write_sop_snapshot, SnapshotKind,
    SnapshotMeta,
};
pub use wal::{
    read_journal, FaultRecord, InjectedFaultRecord, JournalReadout, JournalWriter, ReadMode,
    RecordOutcome, WindowRecord,
};

/// On-disk format version stamped into every snapshot and journal
/// header. Readers reject other versions with
/// [`JournalError::VersionMismatch`].
pub const FORMAT_VERSION: u16 = 1;

/// Default file name for the pipeline input snapshot inside a
/// checkpoint directory.
pub const SNAPSHOT_FILE: &str = "snapshot.sbmj";

/// Default file name for the write-ahead window journal inside a
/// checkpoint directory.
pub const JOURNAL_FILE: &str = "windows.wal";

/// Default file name for the script-level state snapshot inside a
/// checkpoint directory.
pub const SCRIPT_STATE_FILE: &str = "script.state";

/// Typed failure of any journal/snapshot operation.
///
/// Corruption is always reported, never panicked on: a flipped byte in
/// a snapshot body or CRC field surfaces as [`Self::BadCrc`], a flipped
/// version field as [`Self::VersionMismatch`], a truncated tail as
/// [`Self::TornTail`], and a snapshot produced by a different pipeline
/// configuration as [`Self::ConfigMismatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// An I/O operation failed; `op` names the operation, `path` the
    /// file involved.
    Io {
        /// The failed operation, e.g. `"open"`, `"rename"`, `"fsync"`.
        op: &'static str,
        /// The path the operation targeted.
        path: PathBuf,
        /// The OS error text.
        detail: String,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file claims a format version this build cannot read.
    VersionMismatch {
        /// Version found in the file.
        found: u16,
        /// Version this build writes ([`FORMAT_VERSION`]).
        expected: u16,
    },
    /// A CRC32 check failed; `context` names the protected region.
    BadCrc {
        /// What failed the check, e.g. `"snapshot"` or
        /// `"journal record"`.
        context: &'static str,
    },
    /// The file ends mid-record or mid-header: a crash interrupted the
    /// last append. Lenient journal reads drop the torn tail instead.
    TornTail,
    /// The snapshot or journal was written under a different pipeline
    /// configuration fingerprint and cannot be resumed by this one.
    ConfigMismatch {
        /// Fingerprint the resuming configuration computed.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
    /// A CRC-valid payload is structurally malformed (internal
    /// inconsistency, out-of-range reference, or oversized claim).
    BadPayload {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// An encoded network did not round-trip id-exactly — the payload
    /// does not describe a canonical (cleaned) network.
    NotCanonical {
        /// The node index at which replay diverged.
        node: u64,
    },
    /// The decoded network failed `sbm-check` structural or simulation
    /// validation.
    SnapshotInvalid(CheckError),
    /// A resume entry point was called without checkpointing configured.
    NotConfigured,
}

impl JournalError {
    pub(crate) fn io(op: &'static str, path: &std::path::Path, err: &std::io::Error) -> Self {
        JournalError::Io {
            op,
            path: path.to_path_buf(),
            detail: err.to_string(),
        }
    }

    pub(crate) fn payload(detail: impl Into<String>) -> Self {
        JournalError::BadPayload {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, path, detail } => {
                write!(f, "journal I/O failure: {op} {}: {detail}", path.display())
            }
            JournalError::BadMagic => write!(f, "not an SBM journal/snapshot file (bad magic)"),
            JournalError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "format version {found} unsupported (expected {expected})"
                )
            }
            JournalError::BadCrc { context } => write!(f, "CRC mismatch in {context}"),
            JournalError::TornTail => write!(f, "file ends mid-record (torn tail)"),
            JournalError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint written under configuration {found:#018x}, \
                 cannot resume under {expected:#018x}"
            ),
            JournalError::BadPayload { detail } => write!(f, "malformed payload: {detail}"),
            JournalError::NotCanonical { node } => {
                write!(
                    f,
                    "payload is not a canonical network (diverged at node {node})"
                )
            }
            JournalError::SnapshotInvalid(e) => write!(f, "snapshot failed validation: {e}"),
            JournalError::NotConfigured => {
                write!(
                    f,
                    "resume requested but no checkpoint directory is configured"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Bookkeeping of a resumed run, surfaced on `PipelineReport`.
///
/// Every window of the resumed run is accounted exactly once: it was
/// either satisfied from a replayed journal record
/// ([`Self::windows_replayed`]) or executed fresh
/// ([`Self::windows_rerun`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResumeSummary {
    /// Valid journal records loaded from disk.
    pub records_replayed: usize,
    /// Torn tail records dropped (and truncated) during journal read.
    pub torn_dropped: usize,
    /// Records that were valid on disk but did not match the resumed
    /// run's windows (pre/post-hash mismatch or failed re-validation);
    /// their windows were re-run.
    pub stale_dropped: usize,
    /// Windows satisfied from the journal without re-running engines.
    pub windows_replayed: usize,
    /// Windows executed fresh after the resume point.
    pub windows_rerun: usize,
    /// Script-level steps skipped because a state snapshot already
    /// covered them.
    pub steps_skipped: usize,
}

impl ResumeSummary {
    /// Accumulates another summary into this one (used when reports
    /// from several pipeline invocations are merged).
    pub fn merge(&mut self, other: &ResumeSummary) {
        self.records_replayed += other.records_replayed;
        self.torn_dropped += other.torn_dropped;
        self.stale_dropped += other.stale_dropped;
        self.windows_replayed += other.windows_replayed;
        self.windows_rerun += other.windows_rerun;
        self.steps_skipped += other.steps_skipped;
    }

    /// Whether the summary records any resume activity at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == ResumeSummary::default()
    }
}

impl fmt::Display for ResumeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resume: {} records replayed ({} torn dropped, {} stale), \
             {} windows replayed, {} re-run, {} steps skipped",
            self.records_replayed,
            self.torn_dropped,
            self.stale_dropped,
            self.windows_replayed,
            self.windows_rerun,
            self.steps_skipped,
        )
    }
}

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over `bytes`.
/// This is the checksum every snapshot and journal record carries.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

static CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"write-ahead journal record payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn resume_summary_merges_and_displays() {
        let mut a = ResumeSummary {
            records_replayed: 3,
            torn_dropped: 1,
            stale_dropped: 0,
            windows_replayed: 3,
            windows_rerun: 2,
            steps_skipped: 0,
        };
        let b = ResumeSummary {
            records_replayed: 1,
            windows_rerun: 4,
            steps_skipped: 5,
            ..ResumeSummary::default()
        };
        a.merge(&b);
        assert_eq!(a.records_replayed, 4);
        assert_eq!(a.windows_rerun, 6);
        assert_eq!(a.steps_skipped, 5);
        assert!(!a.is_empty());
        assert!(ResumeSummary::default().is_empty());
        let text = a.to_string();
        assert!(text.contains("4 records replayed"), "{text}");
    }

    #[test]
    fn errors_display_their_diagnostics() {
        let e = JournalError::ConfigMismatch {
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("cannot resume"));
        assert!(JournalError::TornTail.to_string().contains("torn"));
        assert!(JournalError::BadCrc {
            context: "snapshot"
        }
        .to_string()
        .contains("snapshot"));
    }
}
