//! The write-ahead window journal.
//!
//! A journal file records, append-only, one [`WindowRecord`] per
//! pipeline window whose outcome is final (optimized, unchanged,
//! gate-rejected, or deterministically degraded). Records are framed
//! individually so a crash mid-append tears at most the last frame:
//!
//! ```text
//! header:  magic b"SBMJWAL\0" (8) | version u16 | reserved u16 |
//!          configuration fingerprint u64            = 20 bytes
//! record:  payload length u32 | payload CRC32 u32 | payload
//! ```
//!
//! Appends are buffered in the OS and fsync'd every `checkpoint_every`
//! records ([`JournalWriter::append`]) and at phase end / budget expiry
//! ([`JournalWriter::flush`]). Reads come in two modes: [`ReadMode::Strict`]
//! surfaces a torn tail as [`JournalError::TornTail`]; [`ReadMode::Lenient`]
//! — what `resume` uses — drops and counts the torn tail region and
//! reports the valid prefix length so the writer can truncate it.
//! A CRC failure *before* the final frame is corruption, not a torn
//! append, and is a hard [`JournalError::BadCrc`] in both modes.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{push_u32, push_u64, Reader};
use crate::{crc32, JournalError, FORMAT_VERSION};

const WAL_MAGIC: [u8; 8] = *b"SBMJWAL\0";
const WAL_HEADER_LEN: u64 = 20;
/// Upper bound on a single record frame; larger length claims are
/// treated as corruption rather than allocated.
const MAX_RECORD_LEN: u32 = 1 << 30;

/// The final outcome of one pipeline window, as recorded durably.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordOutcome {
    /// Engines ran but produced no improvement; the original
    /// sub-network stands.
    Unchanged,
    /// The stitch-time equivalence gate rejected the rewrite.
    GateRejected,
    /// The window was improved; carries the encoded canonical rewrite.
    Improved(Vec<u8>),
    /// Every engine attempt failed deterministically (injected bailouts
    /// or panics); the window degraded to its original sub-network.
    Degraded,
}

impl RecordOutcome {
    fn tag(&self) -> u8 {
        match self {
            RecordOutcome::Unchanged => 0,
            RecordOutcome::GateRejected => 1,
            RecordOutcome::Improved(_) => 2,
            RecordOutcome::Degraded => 3,
        }
    }
}

/// One injected fault, mirrored from the pipeline's fault ledger so a
/// resumed run can reconstruct exact accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFaultRecord {
    /// Engine name the fault hit.
    pub engine: String,
    /// Window index.
    pub window: u64,
    /// Attempt number (0 = first try, 1 = retry).
    pub attempt: u8,
    /// Fault kind tag (pipeline-defined: 0 panic, 1 delay, 2 bailout).
    pub kind: u8,
}

/// The fault-ledger slice of a single window: per-engine counters (the
/// pipeline's seven `FaultCounts` fields in order), whether the window
/// degraded, and the exact injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultRecord {
    /// `(engine name, [panics, deadline_hits, bailouts,
    /// injected_bailouts, delays, retries, retry_successes])`.
    pub per_engine: Vec<(String, [u64; 7])>,
    /// 1 if the window degraded to its original sub-network.
    pub degraded: u64,
    /// Exact injected-fault ledger entries for this window.
    pub injected: Vec<InjectedFaultRecord>,
}

/// One durable journal record: the identity, outcome and accounting of
/// a completed pipeline window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRecord {
    /// Partition (window) index within the run.
    pub window: u64,
    /// Final outcome.
    pub outcome: RecordOutcome,
    /// FNV-1a fingerprint of the window's encoded sub-network before
    /// optimization — resume refuses to replay onto a different window.
    pub pre_hash: u64,
    /// Fingerprint of the encoded rewrite (equal to `pre_hash` when the
    /// window is unchanged/degraded/rejected).
    pub post_hash: u64,
    /// AND-node gain (positive = nodes saved).
    pub gain: i64,
    /// Fault-ledger slice for the window.
    pub fault: FaultRecord,
}

impl WindowRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_u64(&mut out, self.window);
        out.push(self.outcome.tag());
        push_u64(&mut out, self.pre_hash);
        push_u64(&mut out, self.post_hash);
        push_u64(&mut out, self.gain as u64);
        push_u32(&mut out, self.fault.per_engine.len() as u32);
        for (name, counts) in &self.fault.per_engine {
            push_str(&mut out, name);
            for &c in counts {
                push_u64(&mut out, c);
            }
        }
        push_u64(&mut out, self.fault.degraded);
        push_u32(&mut out, self.fault.injected.len() as u32);
        for inj in &self.fault.injected {
            push_str(&mut out, &inj.engine);
            push_u64(&mut out, inj.window);
            out.push(inj.attempt);
            out.push(inj.kind);
        }
        if let RecordOutcome::Improved(payload) = &self.outcome {
            push_u64(&mut out, payload.len() as u64);
            out.extend_from_slice(payload);
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self, JournalError> {
        let mut r = Reader::new(bytes);
        let window = r.u64()?;
        let tag = r.u8()?;
        let pre_hash = r.u64()?;
        let post_hash = r.u64()?;
        let gain = r.u64()? as i64;
        let n_engines = r.u32()? as usize;
        if n_engines > bytes.len() {
            return Err(JournalError::payload("engine count exceeds payload"));
        }
        let mut per_engine = Vec::new();
        for _ in 0..n_engines {
            let name = read_str(&mut r)?;
            let mut counts = [0u64; 7];
            for c in &mut counts {
                *c = r.u64()?;
            }
            per_engine.push((name, counts));
        }
        let degraded = r.u64()?;
        let n_injected = r.u32()? as usize;
        if n_injected > bytes.len() {
            return Err(JournalError::payload("injected count exceeds payload"));
        }
        let mut injected = Vec::new();
        for _ in 0..n_injected {
            let engine = read_str(&mut r)?;
            let w = r.u64()?;
            let attempt = r.u8()?;
            let kind = r.u8()?;
            injected.push(InjectedFaultRecord {
                engine,
                window: w,
                attempt,
                kind,
            });
        }
        let outcome = match tag {
            0 => RecordOutcome::Unchanged,
            1 => RecordOutcome::GateRejected,
            2 => {
                let len = r.u64()?;
                if len > u64::from(MAX_RECORD_LEN) {
                    return Err(JournalError::payload("rewrite payload length oversized"));
                }
                RecordOutcome::Improved(r.bytes(len as usize)?.to_vec())
            }
            3 => RecordOutcome::Degraded,
            other => {
                return Err(JournalError::payload(format!(
                    "unknown outcome tag {other}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(JournalError::payload("trailing bytes after window record"));
        }
        Ok(WindowRecord {
            window,
            outcome,
            pre_hash,
            post_hash,
            gain,
            fault: FaultRecord {
                per_engine,
                degraded,
                injected,
            },
        })
    }
}

/// Appender for the write-ahead journal.
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    every: usize,
    pending: usize,
    records_written: u64,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter")
            .field("path", &self.path)
            .field("every", &self.every)
            .field("records_written", &self.records_written)
            .finish_non_exhaustive()
    }
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any existing one),
    /// writes and fsyncs the header. `every` is the fsync cadence in
    /// records (clamped to at least 1).
    pub fn create(path: &Path, fingerprint: u64, every: usize) -> Result<Self, JournalError> {
        // sbm-lint: allow(P001) the WAL is append-only with its own fsync cadence; tmp+rename would defeat appending to one live file
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| JournalError::io("open", path, &e))?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes());
        push_u64(&mut header, fingerprint);
        file.write_all(&header)
            .map_err(|e| JournalError::io("write", path, &e))?;
        file.sync_all()
            .map_err(|e| JournalError::io("fsync", path, &e))?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            every: every.max(1),
            pending: 0,
            records_written: 0,
        })
    }

    /// Reopens an existing journal for appending after a resume,
    /// truncating it to `valid_len` (the valid prefix reported by
    /// [`read_journal`]) to drop any torn tail. The header must match
    /// `fingerprint`.
    pub fn open_append(
        path: &Path,
        fingerprint: u64,
        every: usize,
        valid_len: u64,
        records: u64,
    ) -> Result<Self, JournalError> {
        let readout = read_journal(path, ReadMode::Lenient)?;
        if readout.fingerprint != fingerprint {
            return Err(JournalError::ConfigMismatch {
                expected: fingerprint,
                found: readout.fingerprint,
            });
        }
        // sbm-lint: allow(P001) resume reopens the existing WAL in place to truncate the torn tail; a tmp copy would lose the append handle
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| JournalError::io("open", path, &e))?;
        file.set_len(valid_len.max(WAL_HEADER_LEN))
            .map_err(|e| JournalError::io("truncate", path, &e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| JournalError::io("seek", path, &e))?;
        file.sync_all()
            .map_err(|e| JournalError::io("fsync", path, &e))?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            every: every.max(1),
            pending: 0,
            records_written: records,
        })
    }

    /// Appends one record frame. The record hits the OS immediately and
    /// is fsync'd once `every` appends have accumulated.
    pub fn append(&mut self, record: &WindowRecord) -> Result<(), JournalError> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        push_u32(&mut frame, payload.len() as u32);
        push_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| JournalError::io("append", &self.path, &e))?;
        self.records_written += 1;
        self.pending += 1;
        if self.pending >= self.every {
            self.flush()?;
        }
        Ok(())
    }

    /// Forces an fsync of all appended records — called at phase end
    /// and when the budget expires, so the final checkpoint is durable
    /// before the process exits.
    pub fn flush(&mut self) -> Result<(), JournalError> {
        if self.pending > 0 {
            self.file
                .sync_data()
                .map_err(|e| JournalError::io("fsync", &self.path, &e))?;
            self.pending = 0;
        }
        Ok(())
    }

    /// Total records appended through this writer (including the
    /// already-present count passed to [`Self::open_append`]).
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.records_written
    }
}

/// How [`read_journal`] treats a torn tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// A torn tail is a hard [`JournalError::TornTail`].
    Strict,
    /// A torn tail is dropped and counted; the valid prefix is
    /// returned. This is what resume uses before truncating.
    Lenient,
}

/// The result of reading a journal file.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalReadout {
    /// Configuration fingerprint from the header.
    pub fingerprint: u64,
    /// All valid records, in append order.
    pub records: Vec<WindowRecord>,
    /// Byte length of the valid prefix (header + intact frames);
    /// everything past it is torn.
    pub valid_len: u64,
    /// Torn tail regions dropped (0 or 1 in lenient mode).
    pub torn_dropped: usize,
}

/// Reads a journal file. See [`ReadMode`] for torn-tail handling; a
/// CRC failure on a non-final frame is corruption and fails in both
/// modes.
pub fn read_journal(path: &Path, mode: ReadMode) -> Result<JournalReadout, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| JournalError::io("read", path, &e))?;
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(JournalError::TornTail);
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != FORMAT_VERSION {
        return Err(JournalError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let mut fp_bytes = [0u8; 8];
    fp_bytes.copy_from_slice(&bytes[12..20]);
    let fingerprint = u64::from_le_bytes(fp_bytes);

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut torn_dropped = 0usize;
    let mut valid_len = pos as u64;
    while pos < bytes.len() {
        // A frame that cannot even hold its length+CRC prefix, claims
        // more bytes than remain, or claims an absurd length is a torn
        // or corrupt tail region.
        let torn = || -> Result<usize, JournalError> {
            match mode {
                ReadMode::Strict => Err(JournalError::TornTail),
                ReadMode::Lenient => Ok(1),
            }
        };
        if bytes.len() - pos < 8 {
            torn_dropped += torn()?;
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let stored_crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > MAX_RECORD_LEN || pos + 8 + len as usize > bytes.len() {
            torn_dropped += torn()?;
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        let is_final_frame = pos + 8 + len as usize == bytes.len();
        if crc32(payload) != stored_crc {
            if is_final_frame {
                torn_dropped += torn()?;
                break;
            }
            return Err(JournalError::BadCrc {
                context: "journal record",
            });
        }
        let record = match WindowRecord::decode(payload) {
            Ok(r) => r,
            Err(e) => {
                if is_final_frame {
                    torn_dropped += torn()?;
                    break;
                }
                return Err(e);
            }
        };
        records.push(record);
        pos += 8 + len as usize;
        valid_len = pos as u64;
    }
    Ok(JournalReadout {
        fingerprint,
        records,
        valid_len,
        torn_dropped,
    })
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = u16::try_from(bytes.len()).unwrap_or(u16::MAX);
    push_u32(out, u32::from(len));
    out.extend_from_slice(&bytes[..usize::from(len)]);
}

fn read_str(r: &mut Reader<'_>) -> Result<String, JournalError> {
    let len = r.u32()? as usize;
    if len > usize::from(u16::MAX) {
        return Err(JournalError::payload("string length oversized"));
    }
    let bytes = r.bytes(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| JournalError::payload("string is not valid UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sbm-journal-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn sample_record(window: u64) -> WindowRecord {
        WindowRecord {
            window,
            outcome: if window.is_multiple_of(2) {
                RecordOutcome::Improved(vec![1, 2, 3, (window & 0xFF) as u8])
            } else {
                RecordOutcome::Unchanged
            },
            pre_hash: 0x1111 * window,
            post_hash: 0x2222 * window,
            gain: window as i64 - 2,
            fault: FaultRecord {
                per_engine: vec![("rewrite".to_string(), [1, 0, 0, 0, 2, 1, 1])],
                degraded: 0,
                injected: vec![InjectedFaultRecord {
                    engine: "rewrite".to_string(),
                    window,
                    attempt: 0,
                    kind: 1,
                }],
            },
        }
    }

    #[test]
    fn append_and_read_round_trips() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("w.wal");
        let mut w = JournalWriter::create(&path, 0xFEED, 2).expect("create");
        for i in 0..5 {
            w.append(&sample_record(i)).expect("append");
        }
        w.flush().expect("flush");
        assert_eq!(w.records_written(), 5);
        for mode in [ReadMode::Strict, ReadMode::Lenient] {
            let out = read_journal(&path, mode).expect("read");
            assert_eq!(out.fingerprint, 0xFEED);
            assert_eq!(out.records.len(), 5);
            assert_eq!(out.torn_dropped, 0);
            assert_eq!(out.records[3], sample_record(3));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_strict_error_lenient_drop() {
        let dir = temp_dir("torn");
        let path = dir.join("w.wal");
        let mut w = JournalWriter::create(&path, 1, 1).expect("create");
        for i in 0..3 {
            w.append(&sample_record(i)).expect("append");
        }
        drop(w);
        // Tear the last frame: chop 3 bytes off the end.
        let full = fs::read(&path).expect("read file");
        fs::write(&path, &full[..full.len() - 3]).expect("truncate");

        assert_eq!(
            read_journal(&path, ReadMode::Strict).expect_err("strict"),
            JournalError::TornTail
        );
        let out = read_journal(&path, ReadMode::Lenient).expect("lenient");
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.torn_dropped, 1);
        assert!(out.valid_len < full.len() as u64);

        // Reopening truncates to the valid prefix and appends cleanly.
        let mut w =
            JournalWriter::open_append(&path, 1, 1, out.valid_len, out.records.len() as u64)
                .expect("reopen");
        w.append(&sample_record(9)).expect("append");
        w.flush().expect("flush");
        let out = read_journal(&path, ReadMode::Strict).expect("read");
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[2].window, 9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_hard_error_in_both_modes() {
        let dir = temp_dir("midcorrupt");
        let path = dir.join("w.wal");
        let mut w = JournalWriter::create(&path, 1, 1).expect("create");
        for i in 0..4 {
            w.append(&sample_record(i)).expect("append");
        }
        drop(w);
        let mut bytes = fs::read(&path).expect("read file");
        // Flip a byte inside the first record's payload.
        let target = WAL_HEADER_LEN as usize + 8 + 4;
        bytes[target] ^= 0xFF;
        fs::write(&path, &bytes).expect("write corrupted");
        for mode in [ReadMode::Strict, ReadMode::Lenient] {
            assert_eq!(
                read_journal(&path, mode).expect_err("corrupt"),
                JournalError::BadCrc {
                    context: "journal record"
                }
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_problems_are_typed() {
        let dir = temp_dir("header");
        let path = dir.join("w.wal");
        let w = JournalWriter::create(&path, 1, 1).expect("create");
        drop(w);
        let good = fs::read(&path).expect("read");

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        fs::write(&path, &bad_magic).expect("write");
        assert_eq!(
            read_journal(&path, ReadMode::Lenient).expect_err("magic"),
            JournalError::BadMagic
        );

        let mut bad_version = good.clone();
        bad_version[8] = 0x7F;
        fs::write(&path, &bad_version).expect("write");
        assert!(matches!(
            read_journal(&path, ReadMode::Lenient).expect_err("version"),
            JournalError::VersionMismatch { found: 0x7F, .. }
        ));

        fs::write(&path, &good[..10]).expect("write");
        assert_eq!(
            read_journal(&path, ReadMode::Lenient).expect_err("short"),
            JournalError::TornTail
        );

        // Fingerprint mismatch on reopen.
        fs::write(&path, &good).expect("restore");
        assert!(matches!(
            JournalWriter::open_append(&path, 2, 1, good.len() as u64, 0).expect_err("fp"),
            JournalError::ConfigMismatch {
                expected: 2,
                found: 1
            }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_cadence_counts_pending() {
        let dir = temp_dir("cadence");
        let path = dir.join("w.wal");
        // every=0 clamps to 1.
        let mut w = JournalWriter::create(&path, 1, 0).expect("create");
        w.append(&sample_record(0)).expect("append");
        assert_eq!(w.pending, 0, "cadence 1 syncs every append");
        drop(w);
        let mut w = JournalWriter::create(&path, 1, 10).expect("create");
        for i in 0..4 {
            w.append(&sample_record(i)).expect("append");
        }
        assert_eq!(w.pending, 4);
        w.flush().expect("flush");
        assert_eq!(w.pending, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
