//! Versioned, CRC32-checked snapshot files with atomic
//! write-temp-then-rename semantics.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"SBMJSNAP"
//!      8     2  format version
//!     10     1  kind (1 = AIG, 2 = SOP)
//!     11     1  reserved (0)
//!     12     8  configuration fingerprint
//!     20     8  sequence number (resume point for script states)
//!     28     8  payload length
//!     36     n  payload (see `codec`)
//!   36+n     4  CRC32 over bytes [0, 36+n)
//! ```
//!
//! Field-level checks (magic, version, kind, length) run before the
//! checksum so that a flipped version byte reports
//! [`JournalError::VersionMismatch`] rather than a bare CRC failure;
//! any other corruption of header or body is caught by the CRC.
//!
//! Durability: the snapshot is written to `<path>.tmp`, fsync'd,
//! renamed over `<path>`, and the parent directory is fsync'd, so a
//! crash at any point leaves either the old snapshot or the new one —
//! never a torn file at the final path.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use sbm_aig::Aig;
use sbm_check::{check_aig, check_sop};
use sbm_sop::SopNetwork;

use crate::codec::{decode_aig, decode_sop, encode_aig, encode_sop, push_u64, Reader};
use crate::{crc32, JournalError, FORMAT_VERSION};

const SNAP_MAGIC: [u8; 8] = *b"SBMJSNAP";
const HEADER_LEN: usize = 36;

/// What a snapshot file contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// An [`Aig`] payload.
    Aig,
    /// A [`SopNetwork`] payload.
    Sop,
}

impl SnapshotKind {
    fn to_byte(self) -> u8 {
        match self {
            SnapshotKind::Aig => 1,
            SnapshotKind::Sop => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, JournalError> {
        match b {
            1 => Ok(SnapshotKind::Aig),
            2 => Ok(SnapshotKind::Sop),
            other => Err(JournalError::payload(format!(
                "unknown snapshot kind {other}"
            ))),
        }
    }
}

/// Header metadata of a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Payload kind.
    pub kind: SnapshotKind,
    /// Configuration fingerprint the writer ran under.
    pub fingerprint: u64,
    /// Writer-defined sequence number (e.g. script steps completed).
    pub seq: u64,
}

/// Atomically writes an AIG snapshot. The network must be canonical
/// (cleaned); pass the output of [`Aig::cleanup`].
pub fn write_aig_snapshot(
    path: &Path,
    aig: &Aig,
    fingerprint: u64,
    seq: u64,
) -> Result<(), JournalError> {
    let payload = encode_aig(aig)?;
    write_snapshot_raw(path, SnapshotKind::Aig, &payload, fingerprint, seq)
}

/// Reads and fully validates an AIG snapshot: CRC, id-exact decode,
/// then `sbm-check` structural validation. Never returns a
/// structurally invalid network.
pub fn read_aig_snapshot(path: &Path) -> Result<(Aig, SnapshotMeta), JournalError> {
    let (meta, payload) = read_snapshot_raw(path)?;
    if meta.kind != SnapshotKind::Aig {
        return Err(JournalError::payload("snapshot does not contain an AIG"));
    }
    let aig = decode_aig(&payload)?;
    check_aig(&aig).map_err(JournalError::SnapshotInvalid)?;
    Ok((aig, meta))
}

/// Atomically writes a [`SopNetwork`] snapshot.
pub fn write_sop_snapshot(
    path: &Path,
    net: &SopNetwork,
    fingerprint: u64,
    seq: u64,
) -> Result<(), JournalError> {
    let payload = encode_sop(net)?;
    write_snapshot_raw(path, SnapshotKind::Sop, &payload, fingerprint, seq)
}

/// Reads and fully validates a [`SopNetwork`] snapshot (CRC, decode,
/// `check_sop`).
pub fn read_sop_snapshot(path: &Path) -> Result<(SopNetwork, SnapshotMeta), JournalError> {
    let (meta, payload) = read_snapshot_raw(path)?;
    if meta.kind != SnapshotKind::Sop {
        return Err(JournalError::payload(
            "snapshot does not contain an SOP network",
        ));
    }
    let net = decode_sop(&payload)?;
    check_sop(&net).map_err(JournalError::SnapshotInvalid)?;
    Ok((net, meta))
}

fn write_snapshot_raw(
    path: &Path,
    kind: SnapshotKind,
    payload: &[u8],
    fingerprint: u64,
    seq: u64,
) -> Result<(), JournalError> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    bytes.extend_from_slice(&SNAP_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.push(kind.to_byte());
    bytes.push(0);
    push_u64(&mut bytes, fingerprint);
    push_u64(&mut bytes, seq);
    push_u64(&mut bytes, payload.len() as u64);
    bytes.extend_from_slice(payload);
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());

    let tmp = tmp_path(path);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| JournalError::io("open", &tmp, &e))?;
        f.write_all(&bytes)
            .map_err(|e| JournalError::io("write", &tmp, &e))?;
        f.sync_all()
            .map_err(|e| JournalError::io("fsync", &tmp, &e))?;
    }
    fs::rename(&tmp, path).map_err(|e| JournalError::io("rename", path, &e))?;
    // Make the rename itself durable. Directory fsync is best-effort:
    // not every platform/filesystem supports opening a directory.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn read_snapshot_raw(path: &Path) -> Result<(SnapshotMeta, Vec<u8>), JournalError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| JournalError::io("read", path, &e))?;
    if bytes.len() < HEADER_LEN + 4 {
        return Err(JournalError::TornTail);
    }
    let mut r = Reader::new(&bytes);
    let magic = r.bytes(8).map_err(|_| JournalError::TornTail)?;
    if magic != SNAP_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = r.u16().map_err(|_| JournalError::TornTail)?;
    if version != FORMAT_VERSION {
        return Err(JournalError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let kind = SnapshotKind::from_byte(r.u8().map_err(|_| JournalError::TornTail)?)?;
    let _reserved = r.u8().map_err(|_| JournalError::TornTail)?;
    let fingerprint = r.u64().map_err(|_| JournalError::TornTail)?;
    let seq = r.u64().map_err(|_| JournalError::TornTail)?;
    let payload_len = r.u64().map_err(|_| JournalError::TornTail)?;
    let expected_total = (HEADER_LEN as u64)
        .checked_add(payload_len)
        .and_then(|v| v.checked_add(4))
        .ok_or(JournalError::TornTail)?;
    match (bytes.len() as u64).cmp(&expected_total) {
        std::cmp::Ordering::Less => return Err(JournalError::TornTail),
        std::cmp::Ordering::Greater => {
            return Err(JournalError::payload("trailing bytes after snapshot"))
        }
        std::cmp::Ordering::Equal => {}
    }
    let body_end = HEADER_LEN + payload_len as usize;
    let stored_crc = u32::from_le_bytes([
        bytes[body_end],
        bytes[body_end + 1],
        bytes[body_end + 2],
        bytes[body_end + 3],
    ]);
    if crc32(&bytes[..body_end]) != stored_crc {
        return Err(JournalError::BadCrc {
            context: "snapshot",
        });
    }
    let payload = bytes[HEADER_LEN..body_end].to_vec();
    Ok((
        SnapshotMeta {
            kind,
            fingerprint,
            seq,
        },
        payload,
    ))
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_aig::Lit;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sbm-journal-snap-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let f = aig.or(ab, !c);
        aig.add_output(f);
        aig.add_output(Lit::TRUE);
        aig.cleanup()
    }

    #[test]
    fn aig_snapshot_round_trips_with_meta() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("net.sbmj");
        let aig = sample_aig();
        write_aig_snapshot(&path, &aig, 0xDEAD_BEEF, 7).expect("write");
        let (back, meta) = read_aig_snapshot(&path).expect("read");
        assert_eq!(meta.kind, SnapshotKind::Aig);
        assert_eq!(meta.fingerprint, 0xDEAD_BEEF);
        assert_eq!(meta.seq, 7);
        assert_eq!(back.num_ands(), aig.num_ands());
        assert_eq!(back.outputs(), aig.outputs());
        // No temp file left behind.
        assert!(!tmp_path(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_replaces_previous_snapshot() {
        let dir = temp_dir("rewrite");
        let path = dir.join("net.sbmj");
        let aig = sample_aig();
        write_aig_snapshot(&path, &aig, 1, 1).expect("write");
        write_aig_snapshot(&path, &aig, 2, 9).expect("rewrite");
        let (_, meta) = read_aig_snapshot(&path).expect("read");
        assert_eq!(meta.fingerprint, 2);
        assert_eq!(meta.seq, 9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sop_snapshot_round_trips() {
        let dir = temp_dir("sop");
        let path = dir.join("net.sbmj");
        let net = SopNetwork::from_aig(&sample_aig());
        write_sop_snapshot(&path, &net, 3, 0).expect("write");
        let (back, meta) = read_sop_snapshot(&path).expect("read");
        assert_eq!(meta.kind, SnapshotKind::Sop);
        assert_eq!(back.num_nodes(), net.num_nodes());
        // Reading with the wrong-kind accessor is a typed error.
        assert!(read_aig_snapshot(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = temp_dir("missing");
        let err = read_aig_snapshot(&dir.join("nope.sbmj")).expect_err("missing");
        assert!(matches!(err, JournalError::Io { op: "read", .. }));
        let _ = fs::remove_dir_all(&dir);
    }
}
