//! Binary codecs for [`Aig`] and [`SopNetwork`] payloads.
//!
//! The AIG codec is *id-exact*: encoding walks the canonical (cleaned)
//! layout — constant node `0`, inputs `1..=I`, ANDs in creation order —
//! and decoding replays the same `add_input()`/`and()` sequence,
//! asserting every node lands on the id it was encoded with. Structural
//! hashing and the one-level rewrite rules are deterministic, so replay
//! on an identical prefix graph reproduces identical decisions; any
//! divergence means the payload does not describe a canonical network
//! and is rejected with [`JournalError::NotCanonical`].
//!
//! Decoders never trust claimed sizes: counts are validated against the
//! actual payload length before any element is read, and element data
//! is read incrementally, so a crafted header cannot trigger an
//! unbounded allocation.

use sbm_aig::{Aig, Lit};
use sbm_sop::{Cover, Cube, SignalLit, SopNetwork};

use crate::JournalError;

/// Hard cap on the input count a decoded AIG snapshot may claim.
/// Inputs occupy no payload bytes, so without a cap a crafted header
/// could drive an arbitrarily large `add_input()` loop.
pub const MAX_SNAPSHOT_INPUTS: usize = 1 << 24;

/// FNV-1a 64-bit hasher — the cheap content fingerprint used for
/// window pre/post hashes and configuration fingerprints.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xCBF2_9CE4_8422_2325)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// Mixes a byte slice into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Mixes a `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Mixes a string (bytes plus a terminator so concatenations cannot
    /// collide) into the hash.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xFF]);
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a fingerprint of a canonical AIG's encoded payload. Two AIGs
/// share a fingerprint iff they encode byte-identically, i.e. they are
/// the same graph node-for-node.
pub fn aig_fingerprint(aig: &Aig) -> Result<u64, JournalError> {
    let bytes = encode_aig(aig)?;
    let mut h = Fnv64::new();
    h.write(&bytes);
    Ok(h.finish())
}

/// Encodes a canonical (cleaned) AIG.
///
/// Layout: `u32` input/AND/output counts, then per AND the two fanin
/// literal codes (`u32` each) in id order, then the output literal
/// codes. Returns [`JournalError::NotCanonical`] if the network is not
/// in the cleaned layout (inputs not at ids `1..=I`, pending
/// replacements, or non-AND interior nodes).
pub fn encode_aig(aig: &Aig) -> Result<Vec<u8>, JournalError> {
    let num_inputs = aig.num_inputs();
    let num_nodes = aig.num_nodes();
    let num_ands = num_nodes - 1 - num_inputs;
    for (i, &id) in aig.inputs().iter().enumerate() {
        if id.index() != i + 1 {
            return Err(JournalError::NotCanonical {
                node: id.index() as u64,
            });
        }
    }
    if let Some((id, _)) = aig.replacements().next() {
        return Err(JournalError::NotCanonical {
            node: id.index() as u64,
        });
    }
    let mut out = Vec::with_capacity(12 + 8 * num_ands + 4 * aig.num_outputs());
    push_u32(&mut out, to_u32(num_inputs, "input count")?);
    push_u32(&mut out, to_u32(num_ands, "AND count")?);
    push_u32(&mut out, to_u32(aig.num_outputs(), "output count")?);
    for idx in (1 + num_inputs)..num_nodes {
        let id = node_at(idx);
        if !aig.is_and(id) {
            return Err(JournalError::NotCanonical { node: idx as u64 });
        }
        let (a, b) = aig.fanins(id);
        push_u32(&mut out, a.code());
        push_u32(&mut out, b.code());
    }
    for l in aig.outputs() {
        push_u32(&mut out, l.code());
    }
    Ok(out)
}

/// Decodes an AIG payload produced by [`encode_aig`], verifying the
/// id-exact round trip. The result is always a structurally valid,
/// canonical AIG; malformed payloads return typed errors and never
/// panic or over-allocate.
pub fn decode_aig(bytes: &[u8]) -> Result<Aig, JournalError> {
    let mut r = Reader::new(bytes);
    let num_inputs = r.u32()? as usize;
    let num_ands = r.u32()? as usize;
    let num_outputs = r.u32()? as usize;
    let expected = 12u64 + 8 * num_ands as u64 + 4 * num_outputs as u64;
    if expected != bytes.len() as u64 {
        return Err(JournalError::payload(format!(
            "AIG payload length {} does not match declared counts (expected {expected})",
            bytes.len()
        )));
    }
    if num_inputs > MAX_SNAPSHOT_INPUTS {
        return Err(JournalError::payload(format!(
            "declared input count {num_inputs} exceeds cap {MAX_SNAPSHOT_INPUTS}"
        )));
    }
    let total_nodes = 1 + num_inputs + num_ands;
    if total_nodes as u64 >= u64::from(u32::MAX >> 1) {
        return Err(JournalError::payload(format!(
            "declared node count {total_nodes} exceeds the literal space"
        )));
    }
    let mut aig = Aig::new();
    for _ in 0..num_inputs {
        aig.add_input();
    }
    for k in 0..num_ands {
        let idx = 1 + num_inputs + k;
        let la = read_lit(&mut r, idx)?;
        let lb = read_lit(&mut r, idx)?;
        let got = aig.and(la, lb);
        if got.code() != (idx as u32) << 1 {
            return Err(JournalError::NotCanonical { node: idx as u64 });
        }
    }
    for _ in 0..num_outputs {
        let code = r.u32()?;
        if (code >> 1) as usize >= total_nodes {
            return Err(JournalError::payload(format!(
                "output literal {code} references a node outside the graph"
            )));
        }
        aig.add_output(Lit::from_code(code));
    }
    Ok(aig)
}

/// Encodes a [`SopNetwork`]: `u32` input and interior-node counts, per
/// node its cover (cube count, then per cube the literal count and
/// literal codes `signal << 1 | negated`), then the output literal
/// codes.
pub fn encode_sop(net: &SopNetwork) -> Result<Vec<u8>, JournalError> {
    let mut out = Vec::new();
    push_u32(&mut out, to_u32(net.num_inputs(), "input count")?);
    push_u32(&mut out, to_u32(net.num_nodes(), "node count")?);
    for signal in net.num_inputs()..net.num_signals() {
        let cover = net.cover(to_u32(signal, "signal")?);
        push_u32(&mut out, to_u32(cover.num_cubes(), "cube count")?);
        for cube in cover.cubes() {
            push_u32(&mut out, to_u32(cube.num_lits(), "literal count")?);
            for &lit in cube.lits() {
                push_u32(&mut out, lit.signal() << 1 | u32::from(lit.is_negated()));
            }
        }
    }
    push_u32(&mut out, to_u32(net.outputs().len(), "output count")?);
    for &lit in net.outputs() {
        push_u32(&mut out, lit.signal() << 1 | u32::from(lit.is_negated()));
    }
    Ok(out)
}

/// Decodes a [`SopNetwork`] payload produced by [`encode_sop`]. Cubes
/// are validated before construction (a contradictory cube is a typed
/// error, not a panic); the caller is expected to run `check_sop` on
/// the result for full structural validation, which the snapshot reader
/// does.
pub fn decode_sop(bytes: &[u8]) -> Result<SopNetwork, JournalError> {
    let mut r = Reader::new(bytes);
    let num_inputs = r.u32()? as usize;
    let num_nodes = r.u32()? as usize;
    if num_inputs > MAX_SNAPSHOT_INPUTS {
        return Err(JournalError::payload(format!(
            "declared input count {num_inputs} exceeds cap {MAX_SNAPSHOT_INPUTS}"
        )));
    }
    // Each declared node costs at least 4 payload bytes (its cube
    // count), so the node count is bounded by the payload length.
    if num_nodes > bytes.len() / 4 {
        return Err(JournalError::payload(format!(
            "declared node count {num_nodes} exceeds what the payload could hold"
        )));
    }
    let num_signals = num_inputs + num_nodes;
    let mut net = SopNetwork::new(num_inputs);
    for _ in 0..num_nodes {
        let num_cubes = r.u32()? as usize;
        let mut cubes = Vec::new();
        for _ in 0..num_cubes {
            let num_lits = r.u32()? as usize;
            let mut lits: Vec<SignalLit> = Vec::new();
            for _ in 0..num_lits {
                let code = r.u32()?;
                if (code >> 1) as usize >= num_signals {
                    return Err(JournalError::payload(format!(
                        "cube literal {code} references a signal outside the network"
                    )));
                }
                lits.push(SignalLit::new(code >> 1, code & 1 != 0));
            }
            lits.sort_unstable();
            lits.dedup();
            for w in lits.windows(2) {
                if w[0].signal() == w[1].signal() {
                    return Err(JournalError::payload(format!(
                        "contradictory cube: signal {} appears in both phases",
                        w[0].signal()
                    )));
                }
            }
            cubes.push(Cube::from_lits(&lits));
        }
        net.add_node(Cover::from_cubes(cubes));
    }
    let num_outputs = r.u32()? as usize;
    if num_outputs > bytes.len() / 4 {
        return Err(JournalError::payload(format!(
            "declared output count {num_outputs} exceeds what the payload could hold"
        )));
    }
    for _ in 0..num_outputs {
        let code = r.u32()?;
        if (code >> 1) as usize >= num_signals {
            return Err(JournalError::payload(format!(
                "output literal {code} references a signal outside the network"
            )));
        }
        net.add_output(SignalLit::new(code >> 1, code & 1 != 0));
    }
    if !r.is_empty() {
        return Err(JournalError::payload("trailing bytes after SOP payload"));
    }
    Ok(net)
}

fn read_lit(r: &mut Reader<'_>, defining_idx: usize) -> Result<Lit, JournalError> {
    let code = r.u32()?;
    if (code >> 1) as usize >= defining_idx {
        return Err(JournalError::payload(format!(
            "AND node {defining_idx} references literal {code} at or above itself"
        )));
    }
    Ok(Lit::from_code(code))
}

/// Constructs the [`sbm_aig::NodeId`] at `idx` through the public
/// literal API (node ids are not directly constructible).
fn node_at(idx: usize) -> sbm_aig::NodeId {
    Lit::from_code((idx as u32) << 1).node()
}

fn to_u32(v: usize, what: &str) -> Result<u32, JournalError> {
    u32::try_from(v).map_err(|_| JournalError::payload(format!("{what} {v} exceeds u32")))
}

pub(crate) fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian payload reader. Every read returns a
/// typed error on exhaustion instead of panicking.
pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.data.len()
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| JournalError::payload("payload ends mid-field"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, JournalError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, JournalError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, JournalError> {
        let b = self.bytes(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let bc = aig.and(b, !c);
        let f = aig.or(ab, bc);
        let g = aig.xor(a, c);
        aig.add_output(f);
        aig.add_output(!g);
        aig.add_output(Lit::TRUE);
        aig.cleanup()
    }

    #[test]
    fn aig_round_trip_is_id_exact() {
        let aig = sample_aig();
        let bytes = encode_aig(&aig).expect("canonical");
        let back = decode_aig(&bytes).expect("round trip");
        assert_eq!(back.num_nodes(), aig.num_nodes());
        assert_eq!(back.num_ands(), aig.num_ands());
        assert_eq!(back.outputs(), aig.outputs());
        assert_eq!(encode_aig(&back).expect("canonical"), bytes);
        // Functional identity on a few patterns.
        for pattern in 0..8u32 {
            let assignment: Vec<bool> = (0..3).map(|i| pattern >> i & 1 != 0).collect();
            assert_eq!(aig.eval(&assignment), back.eval(&assignment));
        }
    }

    #[test]
    fn empty_and_const_networks_round_trip() {
        let aig = Aig::new().cleanup();
        let bytes = encode_aig(&aig).expect("canonical");
        let back = decode_aig(&bytes).expect("round trip");
        assert_eq!(back.num_nodes(), 1);

        let mut konst = Aig::new();
        konst.add_output(Lit::TRUE);
        konst.add_output(Lit::FALSE);
        let konst = konst.cleanup();
        let bytes = encode_aig(&konst).expect("canonical");
        let back = decode_aig(&bytes).expect("round trip");
        assert_eq!(back.outputs(), konst.outputs());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let aig = sample_aig();
        let fp = aig_fingerprint(&aig).expect("canonical");
        assert_eq!(fp, aig_fingerprint(&aig).expect("canonical"));
        let mut other = sample_aig();
        other.add_output(Lit::FALSE);
        let other = other.cleanup();
        assert_ne!(fp, aig_fingerprint(&other).expect("canonical"));
    }

    #[test]
    fn non_canonical_aig_is_rejected_by_encode() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.and(a, b);
        aig.add_output(ab);
        // A pending replacement makes the graph non-canonical.
        aig.corrupt_force_replace(ab.node(), a);
        assert!(matches!(
            encode_aig(&aig),
            Err(JournalError::NotCanonical { .. })
        ));
    }

    #[test]
    fn decode_rejects_malformed_aig_payloads() {
        let aig = sample_aig();
        let good = encode_aig(&aig).expect("canonical");

        // Truncated payload.
        assert!(decode_aig(&good[..good.len() - 2]).is_err());
        // Trailing garbage.
        let mut long = good.clone();
        long.extend_from_slice(&[0, 0, 0, 0]);
        assert!(decode_aig(&long).is_err());
        // Oversized input claim (no matching payload bytes needed).
        let mut huge = good.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_aig(&huge).is_err());
        // Forward reference: point the first AND's fanin at itself.
        let mut fwd = good.clone();
        let self_code = ((1u32 + 3) << 1).to_le_bytes();
        fwd[12..16].copy_from_slice(&self_code);
        assert!(decode_aig(&fwd).is_err());
    }

    #[test]
    fn decode_rejects_non_canonical_duplicate_and() {
        // Payload declaring two identical ANDs: the second replays onto
        // the first via strashing, so its id check fails.
        let mut bytes = Vec::new();
        push_u32(&mut bytes, 2); // inputs
        push_u32(&mut bytes, 2); // ands
        push_u32(&mut bytes, 1); // outputs
        let a = Lit::from_code(2);
        let b = Lit::from_code(4);
        for _ in 0..2 {
            push_u32(&mut bytes, a.code());
            push_u32(&mut bytes, b.code());
        }
        push_u32(&mut bytes, (4u32) << 1);
        assert!(matches!(
            decode_aig(&bytes),
            Err(JournalError::NotCanonical { node: 4 })
        ));
    }

    #[test]
    fn sop_round_trip_preserves_function() {
        let aig = sample_aig();
        let net = SopNetwork::from_aig(&aig);
        let bytes = encode_sop(&net).expect("encodable");
        let back = decode_sop(&bytes).expect("round trip");
        assert_eq!(back.num_inputs(), net.num_inputs());
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.outputs(), net.outputs());
        for pattern in 0..8u32 {
            let assignment: Vec<bool> = (0..3).map(|i| pattern >> i & 1 != 0).collect();
            assert_eq!(net.eval(&assignment), back.eval(&assignment));
        }
    }

    #[test]
    fn decode_rejects_malformed_sop_payloads() {
        // Contradictory cube: x0 & !x0.
        let mut bytes = Vec::new();
        push_u32(&mut bytes, 1); // inputs
        push_u32(&mut bytes, 1); // nodes
        push_u32(&mut bytes, 1); // cubes
        push_u32(&mut bytes, 2); // lits
        push_u32(&mut bytes, 0); // +x0
        push_u32(&mut bytes, 1); // -x0
        push_u32(&mut bytes, 1); // outputs
        push_u32(&mut bytes, 1 << 1); // signal 1
        assert!(matches!(
            decode_sop(&bytes),
            Err(JournalError::BadPayload { .. })
        ));

        // Out-of-range signal reference.
        let mut oob = Vec::new();
        push_u32(&mut oob, 1);
        push_u32(&mut oob, 1);
        push_u32(&mut oob, 1);
        push_u32(&mut oob, 1);
        push_u32(&mut oob, 99 << 1);
        push_u32(&mut oob, 0);
        assert!(decode_sop(&oob).is_err());

        // Truncated mid-cube.
        let mut trunc = Vec::new();
        push_u32(&mut trunc, 1);
        push_u32(&mut trunc, 1);
        push_u32(&mut trunc, 5); // claims 5 cubes, provides none
        assert!(decode_sop(&trunc).is_err());
    }

    #[test]
    fn fnv_write_str_is_concatenation_safe() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
