// Test code: a panic IS the failure report (clippy.toml only relaxes
// unwrap/expect inside #[test] fns, not test-file helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Race-shaped property tests for concurrent checkpoint writers: the
//! job server runs one snapshot writer per worker, each in its own
//! per-job subdirectory. Two writers snapshotting into *sibling*
//! directories must never observe each other's `.tmp` files or torn
//! state, and a concurrent reader polling a job's snapshot (the
//! recovery scan does exactly this) must only ever see a complete,
//! CRC-valid network that some writer actually wrote — or no file at
//! all. Extends the byte-flip corruption suite with scheduling
//! nondeterminism instead of byte-level damage.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use proptest::prelude::*;
use sbm_aig::Aig;
use sbm_journal::{read_aig_snapshot, write_aig_snapshot};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbm-races-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small deterministic network parameterized by `(writer, seq)`: the
/// reader recomputes it from the metadata it read back and demands
/// byte-identity, so any torn or cross-wired payload is caught.
fn network(writer: u64, seq: u64) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_input();
    let b = aig.add_input();
    let c = aig.add_input();
    let mut cur = aig.and(a, b);
    // Mix the identity into the shape, not just the size.
    let mut bits = writer.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seq;
    for _ in 0..(4 + (seq % 7)) {
        let other = if bits & 1 == 0 { b } else { c };
        cur = if bits & 2 == 0 {
            aig.and(cur, other)
        } else {
            aig.or(cur, other.complement_if(true))
        };
        bits >>= 2;
    }
    aig.add_output(cur);
    aig.cleanup()
}

/// Every snapshot file a writer produces lives at the same path, like
/// the script's single overwritten state file.
fn snapshot_path(root: &Path, writer: u64) -> PathBuf {
    root.join(format!("job-{writer}")).join("state.sbmj")
}

/// A per-job directory may only ever contain that job's snapshot and
/// its own transient tmp file — a sibling writer's tmp or any other
/// residue leaking in is a durability bug.
fn assert_only_own_files(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            name == "state.sbmj" || name == "state.sbmj.tmp",
            "foreign file `{name}` in {dir:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two writers hammer sibling per-job directories while a reader
    /// polls both snapshots, exactly like the recovery scan racing live
    /// workers. Every successful read must be a complete network the
    /// owning writer wrote for that exact `(fingerprint, seq)`; every
    /// failed read must be "no file yet", never a torn or cross-wired
    /// payload.
    #[test]
    fn sibling_writers_never_tear_or_cross_wire(
        writes_a in 4u64..24,
        writes_b in 4u64..24,
        fingerprint in any::<u64>(),
    ) {
        let root = temp_dir(&format!("sib-{writes_a}-{writes_b}"));
        for writer in [0u64, 1] {
            let path = snapshot_path(&root, writer);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            // Seed seq 0 before the race so the reader always has a
            // snapshot to poll: from here on, *every* read must succeed
            // with a complete state — there is no legal error left.
            write_aig_snapshot(&path, &network(writer, 0), fingerprint, 0).unwrap();
        }
        let stop = AtomicBool::new(false);

        thread::scope(|scope| {
            let writers: Vec<_> = [(0u64, writes_a), (1u64, writes_b)]
                .into_iter()
                .map(|(writer, writes)| {
                    let root = root.clone();
                    scope.spawn(move || {
                        let path = snapshot_path(&root, writer);
                        for seq in 1..writes {
                            write_aig_snapshot(&path, &network(writer, seq), fingerprint, seq)
                                .expect("concurrent snapshot write");
                        }
                    })
                })
                .collect();
            let reader = scope.spawn(|| {
                let paths = [snapshot_path(&root, 0), snapshot_path(&root, 1)];
                loop {
                    let last_sweep = stop.load(Ordering::Acquire);
                    for (writer, path) in paths.iter().enumerate() {
                        match read_aig_snapshot(path) {
                            Ok((aig, meta)) => {
                                // Complete, CRC-valid, and exactly what
                                // the owning writer wrote for this seq —
                                // never the sibling's bits.
                                assert_eq!(meta.fingerprint, fingerprint);
                                let expected = network(writer as u64, meta.seq);
                                assert_eq!(
                                    sbm_aig::aiger::write(&aig),
                                    sbm_aig::aiger::write(&expected),
                                    "writer {writer} seq {} torn or cross-wired",
                                    meta.seq
                                );
                            }
                            // tmp+rename makes every replacement
                            // atomic: with seq 0 seeded, a racing
                            // reader has no legal failure at all.
                            Err(other) => panic!("reader saw torn state: {other:?}"),
                        }
                        // Nothing foreign may ever appear in a job's
                        // directory, mid-run included.
                        assert_only_own_files(path.parent().unwrap());
                    }
                    if last_sweep {
                        break;
                    }
                }
            });
            // Keep the reader racing until every writer is done, then
            // let it run one final settled sweep.
            for handle in writers {
                handle.join().expect("writer thread");
            }
            stop.store(true, Ordering::Release);
            reader.join().expect("reader thread");
        });

        // Settled state: each directory holds exactly its own final
        // snapshot, no tmp residue anywhere.
        for (writer, writes) in [(0u64, writes_a), (1u64, writes_b)] {
            let path = snapshot_path(&root, writer);
            let names: Vec<String> = std::fs::read_dir(path.parent().unwrap())
                .unwrap()
                .filter_map(Result::ok)
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect();
            prop_assert_eq!(&names, &vec!["state.sbmj".to_string()]);
            let (aig, meta) = read_aig_snapshot(&path).expect("final snapshot");
            prop_assert_eq!(meta.seq, writes - 1);
            prop_assert_eq!(
                sbm_aig::aiger::write(&aig),
                sbm_aig::aiger::write(&network(writer, writes - 1))
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
