// Test code: a panic IS the failure report (clippy.toml only relaxes
// unwrap/expect inside #[test] fns, not test-file helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Byte-level corruption tests: every way a checkpoint file can be
//! damaged on disk must surface as the *specific* typed
//! [`JournalError`] the format documentation promises — never a panic,
//! never a silently wrong network.

use std::fs;
use std::path::PathBuf;

use sbm_aig::Aig;
use sbm_journal::{
    read_aig_snapshot, read_journal, write_aig_snapshot, FaultRecord, JournalError, JournalWriter,
    ReadMode, RecordOutcome, WindowRecord,
};

/// Snapshot header layout constants (see `snapshot.rs` docs): the
/// version field starts at byte 8, the payload at byte 36.
const SNAP_VERSION_OFFSET: usize = 8;
const SNAP_PAYLOAD_OFFSET: usize = 36;
/// Journal header layout (see `wal.rs` docs): version at byte 8,
/// first frame at byte 20.
const WAL_VERSION_OFFSET: usize = 8;
const WAL_FRAMES_OFFSET: usize = 20;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbm-corruption-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_aig() -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_input();
    let b = aig.add_input();
    let c = aig.add_input();
    let ab = aig.or(a, b);
    let f = aig.and(ab, c);
    aig.add_output(f);
    aig.cleanup()
}

fn record(window: u64) -> WindowRecord {
    WindowRecord {
        window,
        outcome: RecordOutcome::Unchanged,
        pre_hash: 0x1234 + window,
        post_hash: 0x1234 + window,
        gain: 0,
        fault: FaultRecord::default(),
    }
}

/// Writes a journal with `n` records and returns its path.
fn journal_with_records(dir: &std::path::Path, n: u64) -> PathBuf {
    let path = dir.join("windows.wal");
    let mut writer = JournalWriter::create(&path, 0xFEED, 1).unwrap();
    for w in 0..n {
        writer.append(&record(w)).unwrap();
    }
    writer.flush().unwrap();
    path
}

fn flip_byte(path: &std::path::Path, offset: usize) {
    let mut bytes = fs::read(path).unwrap();
    bytes[offset] ^= 0xFF;
    fs::write(path, bytes).unwrap();
}

#[test]
fn snapshot_body_flip_is_bad_crc() {
    let dir = temp_dir("snap-body");
    let path = dir.join("snapshot.sbmj");
    write_aig_snapshot(&path, &small_aig(), 1, 0).unwrap();
    flip_byte(&path, SNAP_PAYLOAD_OFFSET + 2);
    assert_eq!(
        read_aig_snapshot(&path).unwrap_err(),
        JournalError::BadCrc {
            context: "snapshot"
        }
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_crc_field_flip_is_bad_crc() {
    let dir = temp_dir("snap-crc");
    let path = dir.join("snapshot.sbmj");
    write_aig_snapshot(&path, &small_aig(), 1, 0).unwrap();
    let len = fs::metadata(&path).unwrap().len() as usize;
    flip_byte(&path, len - 1); // last byte of the trailing CRC32
    assert_eq!(
        read_aig_snapshot(&path).unwrap_err(),
        JournalError::BadCrc {
            context: "snapshot"
        }
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_version_flip_is_version_mismatch_not_crc() {
    let dir = temp_dir("snap-version");
    let path = dir.join("snapshot.sbmj");
    write_aig_snapshot(&path, &small_aig(), 1, 0).unwrap();
    flip_byte(&path, SNAP_VERSION_OFFSET);
    // Field checks run before the checksum, so the report names the
    // actual problem.
    assert!(matches!(
        read_aig_snapshot(&path).unwrap_err(),
        JournalError::VersionMismatch { expected: 1, .. }
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_magic_flip_is_bad_magic() {
    let dir = temp_dir("snap-magic");
    let path = dir.join("snapshot.sbmj");
    write_aig_snapshot(&path, &small_aig(), 1, 0).unwrap();
    flip_byte(&path, 0);
    assert_eq!(
        read_aig_snapshot(&path).unwrap_err(),
        JournalError::BadMagic
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_truncation_is_torn_tail_at_every_length() {
    let dir = temp_dir("snap-trunc");
    let path = dir.join("snapshot.sbmj");
    write_aig_snapshot(&path, &small_aig(), 1, 0).unwrap();
    let full = fs::read(&path).unwrap();
    // Mid-header, end-of-header, and mid-payload cuts all tear.
    for cut in [0, 7, SNAP_PAYLOAD_OFFSET, full.len() - 1] {
        fs::write(&path, &full[..cut]).unwrap();
        assert_eq!(
            read_aig_snapshot(&path).unwrap_err(),
            JournalError::TornTail,
            "cut at {cut}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn journal_garbage_tail_is_strict_error_lenient_drop() {
    let dir = temp_dir("wal-tail");
    let path = journal_with_records(&dir, 3);
    let mut bytes = fs::read(&path).unwrap();
    let valid_len = bytes.len() as u64;
    bytes.extend_from_slice(&[0xAB; 5]); // a crash mid-append
    fs::write(&path, bytes).unwrap();

    assert_eq!(
        read_journal(&path, ReadMode::Strict).unwrap_err(),
        JournalError::TornTail
    );
    let readout = read_journal(&path, ReadMode::Lenient).unwrap();
    assert_eq!(readout.records.len(), 3);
    assert_eq!(readout.torn_dropped, 1);
    assert_eq!(readout.valid_len, valid_len);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn journal_truncated_final_frame_is_strict_error_lenient_drop() {
    let dir = temp_dir("wal-trunc");
    let path = journal_with_records(&dir, 2);
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

    assert_eq!(
        read_journal(&path, ReadMode::Strict).unwrap_err(),
        JournalError::TornTail
    );
    let readout = read_journal(&path, ReadMode::Lenient).unwrap();
    assert_eq!(readout.records.len(), 1);
    assert_eq!(readout.torn_dropped, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn journal_mid_file_corruption_is_hard_bad_crc_in_both_modes() {
    let dir = temp_dir("wal-mid");
    let path = journal_with_records(&dir, 3);
    // Flip a byte inside the FIRST frame's payload: not a torn append,
    // so even the lenient reader must refuse the file.
    flip_byte(&path, WAL_FRAMES_OFFSET + 8 + 1);
    for mode in [ReadMode::Strict, ReadMode::Lenient] {
        assert_eq!(
            read_journal(&path, mode).unwrap_err(),
            JournalError::BadCrc {
                context: "journal record"
            },
            "{mode:?}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn journal_header_corruption_is_typed() {
    let dir = temp_dir("wal-header");
    let path = journal_with_records(&dir, 1);
    let pristine = fs::read(&path).unwrap();

    flip_byte(&path, 0);
    assert_eq!(
        read_journal(&path, ReadMode::Lenient).unwrap_err(),
        JournalError::BadMagic
    );

    fs::write(&path, &pristine).unwrap();
    flip_byte(&path, WAL_VERSION_OFFSET);
    assert!(matches!(
        read_journal(&path, ReadMode::Lenient).unwrap_err(),
        JournalError::VersionMismatch { expected: 1, .. }
    ));

    // A header cut below 20 bytes cannot even be identified.
    fs::write(&path, &pristine[..10]).unwrap();
    assert_eq!(
        read_journal(&path, ReadMode::Strict).unwrap_err(),
        JournalError::TornTail
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn journal_huge_length_claim_is_torn_not_allocated() {
    let dir = temp_dir("wal-claim");
    let path = journal_with_records(&dir, 1);
    let mut bytes = fs::read(&path).unwrap();
    // Overwrite the first frame's length field with an absurd claim;
    // the reader must treat it as a torn/corrupt region instead of
    // allocating gigabytes.
    bytes[WAL_FRAMES_OFFSET..WAL_FRAMES_OFFSET + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    fs::write(&path, bytes).unwrap();
    assert_eq!(
        read_journal(&path, ReadMode::Strict).unwrap_err(),
        JournalError::TornTail
    );
    let readout = read_journal(&path, ReadMode::Lenient).unwrap();
    assert!(readout.records.is_empty());
    assert_eq!(readout.torn_dropped, 1);
    let _ = fs::remove_dir_all(&dir);
}
