//! Network partitioning into windows.
//!
//! The SBM engines evaluate Boolean transformations "locally on limited size
//! circuit partitions" created "by collecting all the nodes in topological
//! order and by sorting them according to the similarity of their structural
//! support. Each partition respects some predefined characteristic, e.g.,
//! maximum number of primary inputs, maximum number of internal nodes,
//! maximum number of levels" — with priority given to the level limit
//! (Section III-B). The paper reports useful level bounds of 5–30 and a
//! controlled maximum partition size of 1000 nodes.

use std::collections::{BTreeSet, HashSet};

use crate::graph::Aig;
use crate::lit::NodeId;

/// Limits a partition must respect.
#[derive(Debug, Clone, Copy)]
pub struct PartitionOptions {
    /// Maximum number of internal (AND) nodes per partition.
    pub max_nodes: usize,
    /// Maximum number of leaves (partition primary inputs).
    pub max_inputs: usize,
    /// Maximum number of levels spanned — this limit has priority, as it
    /// "correlates with the complexity of the reasoning engine" (paper).
    pub max_levels: u32,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        // The paper's empirically promising bounds: levels 5..30, size ≤ 1000.
        PartitionOptions {
            max_nodes: 1000,
            max_inputs: 14,
            max_levels: 20,
        }
    }
}

/// A window of logic: a set of internal nodes, the leaves feeding them and
/// the roots observed from outside.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Internal AND nodes, in global topological order.
    pub nodes: Vec<NodeId>,
    /// Boundary nodes (inputs of the window): every fanin of a member that
    /// is not itself a member.
    pub leaves: Vec<NodeId>,
    /// Members whose value is observed outside the window (fanout to a
    /// non-member or to a primary output).
    pub roots: Vec<NodeId>,
}

impl Partition {
    /// Number of internal nodes.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Copies the window out of `aig` as a standalone AIG: leaf `i` becomes
    /// input `i` (in the partition's sorted leaf order) and root `j` becomes
    /// output `j`, always in positive phase. Structural hashing in the copy
    /// may merge isomorphic members, so the extract can be smaller than
    /// [`Partition::size`].
    ///
    /// Returns `None` if a member's fanin is neither a leaf, the constant,
    /// nor an earlier member — i.e. the partition is not self-contained in
    /// topological order (a malformed partition, not an extraction limit).
    pub fn extract(&self, aig: &Aig) -> Option<Aig> {
        let mut sub = Aig::new();
        let mut map: std::collections::HashMap<NodeId, crate::lit::Lit> =
            std::collections::HashMap::new();
        map.insert(NodeId::CONST, crate::lit::Lit::FALSE);
        for &leaf in &self.leaves {
            map.insert(leaf, sub.add_input());
        }
        for &id in &self.nodes {
            let (a, b) = aig.fanins(id);
            let fa = map.get(&a.node())?.complement_if(a.is_complemented());
            let fb = map.get(&b.node())?.complement_if(b.is_complemented());
            let f = sub.and(fa, fb);
            map.insert(id, f);
        }
        for &root in &self.roots {
            sub.add_output(*map.get(&root)?);
        }
        Some(sub)
    }
}

/// Support descriptor used to order nodes by structural-support similarity:
/// the centroid (mean primary-input index) and the level of the node.
fn support_centroids(aig: &Aig) -> Vec<f64> {
    // Bottom-up weighted centroid: cheap O(n) proxy for support similarity.
    let mut centroid = vec![0.0f64; aig.num_nodes()];
    let mut weight = vec![0.0f64; aig.num_nodes()];
    for (i, &input) in aig.inputs().iter().enumerate() {
        centroid[input.index()] = i as f64;
        weight[input.index()] = 1.0;
    }
    for id in aig.topo_order() {
        let (a, b) = aig.fanins(id);
        let (ia, ib) = (a.node().index(), b.node().index());
        let w = weight[ia] + weight[ib];
        if w > 0.0 {
            centroid[id.index()] = (centroid[ia] * weight[ia] + centroid[ib] * weight[ib]) / w;
        }
        weight[id.index()] = w.max(1.0);
    }
    centroid
}

/// Splits the network into disjoint partitions respecting `options`.
///
/// Nodes are collected in topological order, bucketed into level bands of
/// `max_levels` (the priority limit) and ordered within a band by support
/// centroid, then greedily packed while the node and leaf limits hold.
///
/// Every live AND node belongs to exactly one partition.
pub fn partition(aig: &Aig, options: &PartitionOptions) -> Vec<Partition> {
    let order = aig.topo_order();
    if order.is_empty() {
        return Vec::new();
    }
    let levels = aig.levels();
    let centroids = support_centroids(aig);

    // Sort by (level band, support centroid, level) — topological validity
    // inside a partition is restored later, since partitions store nodes in
    // global topological order.
    let mut sorted = order.clone();
    let band = |id: NodeId| levels[id.index()] / options.max_levels.max(1);
    sorted.sort_by(|&x, &y| {
        band(x)
            .cmp(&band(y))
            .then(
                centroids[x.index()]
                    .partial_cmp(&centroids[y.index()])
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(levels[x.index()].cmp(&levels[y.index()]))
    });

    // Greedy packing.
    let mut partitions: Vec<Vec<NodeId>> = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();
    let mut current_set: HashSet<NodeId> = HashSet::new();
    let mut current_leaves: HashSet<NodeId> = HashSet::new();
    let mut current_band: u32 = 0;

    let flush = |partitions: &mut Vec<Vec<NodeId>>,
                 current: &mut Vec<NodeId>,
                 current_set: &mut HashSet<NodeId>,
                 current_leaves: &mut HashSet<NodeId>| {
        if !current.is_empty() {
            partitions.push(std::mem::take(current));
            current_set.clear();
            current_leaves.clear();
        }
    };

    for id in sorted {
        let (a, b) = aig.fanins(id);
        let new_leaves: Vec<NodeId> = [a.node(), b.node()]
            .into_iter()
            .filter(|n| !current_set.contains(n) && !current_leaves.contains(n))
            .collect();
        let over_nodes = current.len() + 1 > options.max_nodes;
        // A member that was a leaf is promoted; account approximately.
        let promoted = current_leaves.contains(&id) as usize;
        let over_inputs = current_leaves.len() + new_leaves.len() - promoted > options.max_inputs;
        let over_band = !current.is_empty() && band(id) != current_band;
        if over_nodes || over_inputs || over_band {
            flush(
                &mut partitions,
                &mut current,
                &mut current_set,
                &mut current_leaves,
            );
        }
        if current.is_empty() {
            current_band = band(id);
        }
        current_leaves.remove(&id);
        current_set.insert(id);
        current.push(id);
        for leaf in [a.node(), b.node()] {
            if !current_set.contains(&leaf) {
                current_leaves.insert(leaf);
            }
        }
    }
    flush(
        &mut partitions,
        &mut current,
        &mut current_set,
        &mut current_leaves,
    );

    // Restore global topological order inside each partition and compute the
    // exact leaf/root sets.
    let topo_pos: std::collections::HashMap<NodeId, usize> =
        order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let outputs: HashSet<NodeId> = aig.outputs().iter().map(|l| l.node()).collect();

    partitions
        .into_iter()
        .map(|mut nodes| {
            nodes.sort_by_key(|n| topo_pos[n]);
            let member: HashSet<NodeId> = nodes.iter().copied().collect();
            let mut leaves: BTreeSet<NodeId> = BTreeSet::new();
            for &n in &nodes {
                let (a, b) = aig.fanins(n);
                for fanin in [a.node(), b.node()] {
                    if !member.contains(&fanin) && fanin != NodeId::CONST {
                        leaves.insert(fanin);
                    }
                }
            }
            // Roots: members with fanout outside the partition or to a PO.
            let mut has_external_fanout: HashSet<NodeId> = HashSet::new();
            for id in aig.topo_order() {
                if member.contains(&id) {
                    continue;
                }
                let (a, b) = aig.fanins(id);
                for fanin in [a.node(), b.node()] {
                    if member.contains(&fanin) {
                        has_external_fanout.insert(fanin);
                    }
                }
            }
            let roots: Vec<NodeId> = nodes
                .iter()
                .copied()
                .filter(|n| has_external_fanout.contains(n) || outputs.contains(n))
                .collect();
            Partition {
                nodes,
                leaves: leaves.into_iter().collect(),
                roots,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Aig;

    fn chain_aig(n: usize) -> Aig {
        let mut aig = Aig::new();
        let inputs: Vec<_> = (0..n + 1).map(|_| aig.add_input()).collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = aig.and(acc, x);
        }
        aig.add_output(acc);
        aig
    }

    #[test]
    fn every_node_in_exactly_one_partition() {
        let aig = chain_aig(50);
        let parts = partition(&aig, &PartitionOptions::default());
        let mut seen = std::collections::HashSet::new();
        for p in &parts {
            for &n in &p.nodes {
                assert!(seen.insert(n), "node {n} in two partitions");
            }
        }
        assert_eq!(seen.len(), aig.num_ands());
    }

    #[test]
    fn limits_respected() {
        let aig = chain_aig(100);
        let opts = PartitionOptions {
            max_nodes: 10,
            max_inputs: 12,
            max_levels: 10,
        };
        let parts = partition(&aig, &opts);
        for p in &parts {
            assert!(p.size() <= opts.max_nodes);
            assert!(
                p.leaves.len() <= opts.max_inputs + 2,
                "leaves {}",
                p.leaves.len()
            );
        }
    }

    #[test]
    fn leaves_are_outside_nodes_inside() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let f = aig.xor(ab, c);
        aig.add_output(f);
        let parts = partition(&aig, &PartitionOptions::default());
        for p in &parts {
            let member: std::collections::HashSet<_> = p.nodes.iter().copied().collect();
            for &l in &p.leaves {
                assert!(!member.contains(&l));
            }
            for &r in &p.roots {
                assert!(member.contains(&r));
            }
        }
    }

    #[test]
    fn roots_cover_observed_nodes() {
        let aig = chain_aig(20);
        let opts = PartitionOptions {
            max_nodes: 5,
            max_inputs: 8,
            max_levels: 6,
        };
        let parts = partition(&aig, &opts);
        // The final output node must be a root of its partition.
        let out_node = aig.outputs()[0].node();
        assert!(parts.iter().any(|p| p.roots.contains(&out_node)));
    }

    #[test]
    fn extract_reproduces_root_functions() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let f = aig.xor(ab, c);
        aig.add_output(f);
        let parts = partition(&aig, &PartitionOptions::default());
        for p in &parts {
            let sub = p.extract(&aig).expect("partition is self-contained");
            assert_eq!(sub.num_inputs(), p.leaves.len());
            assert_eq!(sub.num_outputs(), p.roots.len());
            // Every root's function over the leaves must match: drive the
            // original AIG with each input pattern, read the leaf values,
            // and evaluate the extract on them.
            for m in 0..8u32 {
                let assignment: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
                let values = aig.eval_nodes(&assignment);
                let leaf_vals: Vec<bool> = p.leaves.iter().map(|l| values[l.index()]).collect();
                let sub_out = sub.eval(&leaf_vals);
                for (j, &root) in p.roots.iter().enumerate() {
                    assert_eq!(sub_out[j], values[root.index()], "pattern {m}");
                }
            }
        }
    }

    #[test]
    fn extract_covers_every_partition_of_a_chain() {
        let aig = chain_aig(40);
        let opts = PartitionOptions {
            max_nodes: 7,
            max_inputs: 10,
            max_levels: 8,
        };
        for p in partition(&aig, &opts) {
            let sub = p
                .extract(&aig)
                .expect("chain partitions are self-contained");
            assert!(sub.num_ands() <= p.size());
        }
    }

    #[test]
    fn nodes_in_topological_order() {
        let aig = chain_aig(30);
        let parts = partition(&aig, &PartitionOptions::default());
        let order = aig.topo_order();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for p in &parts {
            assert!(p.nodes.windows(2).all(|w| pos[&w[0]] < pos[&w[1]]));
        }
    }
}
