//! And-Inverter Graphs (AIGs) — the logic-network representation of the SBM
//! framework.
//!
//! An AIG is a directed acyclic graph whose internal nodes are two-input AND
//! gates and whose edges may carry inverters (complemented literals). The
//! paper's flow translates the logic network into an AIG "after each
//! transformation … in order to have a consistent interface and costing
//! between the various steps of the flow" (Section V-A); all four SBM
//! engines ultimately measure gain in AIG nodes.
//!
//! This crate provides:
//!
//! * [`Aig`] — the graph, with structural hashing (strashing), constant
//!   propagation, node replacement with cycle protection, and compaction;
//! * [`Lit`] / [`NodeId`] — typed literals and node handles;
//! * [`sim`] — bit-parallel random simulation and exhaustive window
//!   simulation to truth tables;
//! * [`mffc`] — maximum fan-out-free cone computation (the paper's saving
//!   metric, Section III-C);
//! * [`cut`] — k-feasible cut enumeration (for rewriting and LUT mapping);
//! * [`window`] — partitioning by structural-support similarity with limits
//!   on levels, size and input count (Section III-B);
//! * [`aiger`] — ASCII AIGER (`aag`) reading and writing.
//!
//! # Example
//!
//! ```
//! use sbm_aig::Aig;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let f = aig.xor(a, b);
//! aig.add_output(f);
//! assert_eq!(aig.num_ands(), 3); // XOR costs three AND nodes
//! assert_eq!(aig.depth(), 2);
//! ```

pub mod aiger;
pub mod cut;
mod graph;
mod lit;
pub mod mffc;
pub mod sim;
pub mod window;

pub use graph::{Aig, ReplaceError};
pub use lit::{Lit, NodeId};
