//! Maximum fan-out-free cone (MFFC) computation.
//!
//! The MFFC of a node `n` is the set of nodes that are used *only* by `n`
//! (transitively): removing `n` removes exactly its MFFC. The paper uses
//! `mffc(f)` as the saving term when deciding whether a Boolean-difference
//! rewrite pays off (Alg. 1, line 11).

use std::collections::HashMap;

use crate::graph::Aig;
use crate::lit::NodeId;

/// Computes the MFFC of `node` given the network's fanout counts (from
/// [`Aig::fanout_counts`]). Returns the member node ids, `node` included.
///
/// # Example
///
/// ```
/// use sbm_aig::{Aig, mffc};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let c = aig.add_input();
/// let ab = aig.and(a, b);
/// let f = aig.and(ab, c);
/// aig.add_output(f);
/// let counts = aig.fanout_counts();
/// // ab is used only by f, so both are in f's MFFC.
/// assert_eq!(mffc::mffc_nodes(&aig, f.node(), &counts).len(), 2);
/// ```
pub fn mffc_nodes(aig: &Aig, node: NodeId, fanout_counts: &[u32]) -> Vec<NodeId> {
    if !aig.is_and(node) {
        return Vec::new();
    }
    // Simulate dereferencing: a fanin joins the MFFC when its last fanout
    // inside the cone is removed.
    let mut remaining: HashMap<NodeId, u32> = HashMap::new();
    let mut members = Vec::new();
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        members.push(id);
        let (a, b) = aig.fanins(id);
        for fanin in [a.node(), b.node()] {
            if !aig.is_and(fanin) {
                continue;
            }
            // Saturating: callers may hold slightly stale fanout counts
            // (e.g. while iterating a pre-pass node order); a stale zero
            // must not underflow — the fanin is simply treated as shared.
            let left = remaining
                .entry(fanin)
                .or_insert_with(|| fanout_counts[fanin.index()]);
            if *left == 0 {
                continue;
            }
            *left -= 1;
            if *left == 0 {
                stack.push(fanin);
            }
        }
    }
    members
}

/// The size of the MFFC of `node` — the paper's `mffc(f)` saving metric.
pub fn mffc_size(aig: &Aig, node: NodeId, fanout_counts: &[u32]) -> usize {
    mffc_nodes(aig, node, fanout_counts).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Aig;

    #[test]
    fn shared_fanin_excluded() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let f = aig.and(ab, c);
        let g = aig.and(ab, a); // ab is shared between f and g
        aig.add_output(f);
        aig.add_output(g);
        let counts = aig.fanout_counts();
        let mf = mffc_nodes(&aig, f.node(), &counts);
        assert_eq!(mf, vec![f.node()], "shared ab must not be in f's MFFC");
        let mg = mffc_nodes(&aig, g.node(), &counts);
        assert_eq!(mg, vec![g.node()]);
    }

    #[test]
    fn chain_fully_contained() {
        let mut aig = Aig::new();
        let inputs: Vec<_> = (0..4).map(|_| aig.add_input()).collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = aig.and(acc, x);
        }
        aig.add_output(acc);
        let counts = aig.fanout_counts();
        assert_eq!(mffc_size(&aig, acc.node(), &counts), 3);
    }

    #[test]
    fn input_has_empty_mffc() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        aig.add_output(a);
        let counts = aig.fanout_counts();
        assert_eq!(mffc_size(&aig, a.node(), &counts), 0);
    }

    #[test]
    fn mffc_members_are_disjoint_for_independent_cones() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let d = aig.add_input();
        let f = aig.and(a, b);
        let g = aig.and(c, d);
        aig.add_output(f);
        aig.add_output(g);
        let counts = aig.fanout_counts();
        let mf = mffc_nodes(&aig, f.node(), &counts);
        let mg = mffc_nodes(&aig, g.node(), &counts);
        assert!(mf.iter().all(|n| !mg.contains(n)));
    }
}
