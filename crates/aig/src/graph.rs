//! The [`Aig`] graph: structural hashing, node replacement and compaction.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::lit::{Lit, NodeId};

/// Internal node payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    /// The constant-false node (always node 0).
    Const,
    /// A primary input.
    Input,
    /// A two-input AND gate over two literals.
    And(Lit, Lit),
}

/// Error returned by [`Aig::replace`] when the replacement would create a
/// combinational cycle (the replacement literal's cone contains the node
/// being replaced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaceError {
    node: NodeId,
}

impl fmt::Display for ReplaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replacing node {} would create a combinational cycle",
            self.node
        )
    }
}

impl Error for ReplaceError {}

/// An And-Inverter Graph with structural hashing.
///
/// The graph is append-only: AND nodes are interned through a strash table so
/// that structurally identical gates share one node, and the one-level rules
/// (`x·x = x`, `x·x̄ = 0`, `x·1 = x`, `x·0 = 0`) are applied on construction.
/// Optimization engines *replace* nodes by recording redirections which are
/// resolved transparently by every accessor; [`Aig::cleanup`] compacts the
/// graph by rebuilding only the logic reachable from the outputs.
///
/// # Example
///
/// ```
/// use sbm_aig::Aig;
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let ab = aig.and(a, b);
/// let ab2 = aig.and(b, a); // strashing: same node
/// assert_eq!(ab, ab2);
/// assert_eq!(aig.and(a, !a), sbm_aig::Lit::FALSE);
/// ```
#[derive(Debug, Clone)]
pub struct Aig {
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<Lit>,
    strash: HashMap<(Lit, Lit), NodeId>,
    repl: HashMap<NodeId, Lit>,
}

impl Default for Aig {
    fn default() -> Self {
        Self::new()
    }
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::Const],
            inputs: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
            repl: HashMap::new(),
        }
    }

    /// Creates an AIG with `n` primary inputs already added.
    pub fn with_inputs(n: usize) -> (Self, Vec<Lit>) {
        let mut aig = Self::new();
        let lits = (0..n).map(|_| aig.add_input()).collect();
        (aig, lits)
    }

    /// Adds a primary input; returns its positive literal.
    pub fn add_input(&mut self) -> Lit {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Input);
        self.inputs.push(id);
        Lit::new(id, false)
    }

    /// Registers `lit` as a primary output; returns its output index.
    pub fn add_output(&mut self, lit: Lit) -> usize {
        let lit = self.resolve(lit);
        self.outputs.push(lit);
        self.outputs.len() - 1
    }

    /// Redirects output `index` to a new literal.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_output(&mut self, index: usize, lit: Lit) {
        let lit = self.resolve(lit);
        self.outputs[index] = lit;
    }

    /// The primary inputs, in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The positive literal of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input_lit(&self, i: usize) -> Lit {
        Lit::new(self.inputs[i], false)
    }

    /// The primary outputs (resolved through any pending replacements).
    pub fn outputs(&self) -> Vec<Lit> {
        self.outputs.iter().map(|&l| self.resolve(l)).collect()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of allocated nodes (including dead ones awaiting cleanup).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes reachable from the outputs — the paper's network
    /// *size*.
    pub fn num_ands(&self) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut count = 0usize;
        let mut stack: Vec<NodeId> = self.outputs().iter().map(|l| l.node()).collect();
        while let Some(id) = stack.pop() {
            let id = self.resolve(Lit::new(id, false)).node();
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            if let Node::And(a, b) = self.nodes[id.index()] {
                count += 1;
                stack.push(self.resolve(a).node());
                stack.push(self.resolve(b).node());
            }
        }
        count
    }

    /// Whether `id` is a primary input.
    pub fn is_input(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()], Node::Input)
    }

    /// Whether `id` is an AND gate.
    pub fn is_and(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()], Node::And(..))
    }

    /// The two fanin literals of AND node `id`, resolved through pending
    /// replacements.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an AND node.
    pub fn fanins(&self, id: NodeId) -> (Lit, Lit) {
        match self.nodes[id.index()] {
            Node::And(a, b) => (self.resolve(a), self.resolve(b)),
            // sbm-lint: allow(A003) documented precondition panic — the `# Panics` contract above is this method's API
            _ => panic!("node {id} is not an AND gate"),
        }
    }

    /// Follows the replacement map until a live literal is reached.
    pub fn resolve(&self, lit: Lit) -> Lit {
        let mut cur = lit;
        while let Some(&r) = self.repl.get(&cur.node()) {
            cur = r.complement_if(cur.is_complemented());
        }
        cur
    }

    /// Whether `id` has been redirected by [`Aig::replace`].
    pub fn is_replaced(&self, id: NodeId) -> bool {
        self.repl.contains_key(&id)
    }

    /// Creates (or reuses) the AND of two literals, applying one-level
    /// simplification rules and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        let a = self.resolve(a);
        let b = self.resolve(b);
        // Trivial rules.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        // Canonical order for strashing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(a, b)) {
            // The interned node may itself have been replaced since.
            return self.resolve(Lit::new(id, false));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::And(a, b));
        self.strash.insert((a, b), id);
        Lit::new(id, false)
    }

    /// `a ∨ b` (one AND node).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// `¬(a ∧ b)` (one AND node).
    pub fn nand(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(a, b)
    }

    /// `¬(a ∨ b)` (one AND node).
    pub fn nor(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(!a, !b)
    }

    /// `a ⊕ b` (three AND nodes — the paper's `xor_cost` default).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n1 = self.and(a, !b);
        let n2 = self.and(!a, b);
        self.or(n1, n2)
    }

    /// `a ⊙ b` (three AND nodes).
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Multiplexer `sel ? t : e` (three AND nodes).
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let a = self.and(sel, t);
        let b = self.and(!sel, e);
        self.or(a, b)
    }

    /// Majority of three (four AND nodes).
    pub fn maj3(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// Conjunction of many literals, balanced (tree-shaped for depth).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => Lit::TRUE,
            1 => lits[0],
            _ => {
                let mid = lits.len() / 2;
                let (l, r) = lits.split_at(mid);
                let a = self.and_many(l);
                let b = self.and_many(r);
                self.and(a, b)
            }
        }
    }

    /// Disjunction of many literals, balanced.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let inverted: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        !self.and_many(&inverted)
    }

    /// XOR of many literals, balanced.
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => Lit::FALSE,
            1 => lits[0],
            _ => {
                let mid = lits.len() / 2;
                let (l, r) = lits.split_at(mid);
                let a = self.xor_many(l);
                let b = self.xor_many(r);
                self.xor(a, b)
            }
        }
    }

    /// Replaces node `old` with literal `new` everywhere: all existing and
    /// future references to `old` resolve to `new`.
    ///
    /// This is the primitive behind resubstitution: the paper's Alg. 2
    /// "Change f with diff in N".
    ///
    /// # Errors
    ///
    /// Returns [`ReplaceError`] if `new`'s resolved cone contains `old`
    /// (which would create a combinational cycle).
    ///
    /// # Panics
    ///
    /// Panics if `old` is the constant node or an input.
    pub fn replace(&mut self, old: NodeId, new: Lit) -> Result<(), ReplaceError> {
        assert!(self.is_and(old), "only AND nodes can be replaced");
        let new = self.resolve(new);
        if new.node() == old {
            // Self-replacement (possibly with complement): reject the
            // complemented case as a cycle, ignore the identity case.
            if new.is_complemented() {
                return Err(ReplaceError { node: old });
            }
            return Ok(());
        }
        // Cycle check: DFS through the resolved cone of `new`.
        let mut stack = vec![new.node()];
        let mut seen = std::collections::HashSet::new();
        while let Some(id) = stack.pop() {
            if id == old {
                return Err(ReplaceError { node: old });
            }
            if !seen.insert(id) {
                continue;
            }
            if let Node::And(a, b) = self.nodes[id.index()] {
                stack.push(self.resolve(a).node());
                stack.push(self.resolve(b).node());
            }
        }
        self.repl.insert(old, new);
        Ok(())
    }

    /// Live AND nodes in topological order (fanins before fanouts).
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut order = Vec::new();
        let mut state = vec![0u8; self.nodes.len()]; // 0 = new, 2 = done
        let mut stack: Vec<(NodeId, bool)> =
            self.outputs().iter().map(|l| (l.node(), false)).collect();
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                if state[id.index()] != 2 {
                    state[id.index()] = 2;
                    order.push(id);
                }
                continue;
            }
            if state[id.index()] != 0 {
                continue;
            }
            state[id.index()] = 1;
            if let Node::And(a, b) = self.nodes[id.index()] {
                stack.push((id, true));
                stack.push((self.resolve(a).node(), false));
                stack.push((self.resolve(b).node(), false));
            } else {
                state[id.index()] = 2;
            }
        }
        order.retain(|&id| self.is_and(id));
        order
    }

    /// Per-node logic levels (inputs and constants are level 0); indexed by
    /// node. Dead nodes get level 0.
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.nodes.len()];
        for id in self.topo_order() {
            let (a, b) = self.fanins(id);
            level[id.index()] = 1 + level[a.node().index()].max(level[b.node().index()]);
        }
        level
    }

    /// The network depth: the maximum output level — the paper's *number of
    /// levels*.
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs()
            .iter()
            .map(|l| levels[l.node().index()])
            .max()
            .unwrap_or(0)
    }

    /// Number of fanouts of each live node (outputs count as one fanout
    /// each); indexed by node.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for id in self.topo_order() {
            let (a, b) = self.fanins(id);
            counts[a.node().index()] += 1;
            counts[b.node().index()] += 1;
        }
        for l in self.outputs() {
            counts[l.node().index()] += 1;
        }
        counts
    }

    /// Evaluates the network under a full input assignment; returns output
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_inputs`.
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(assignment.len(), self.inputs.len());
        let mut values = vec![false; self.nodes.len()];
        for (i, &id) in self.inputs.iter().enumerate() {
            values[id.index()] = assignment[i];
        }
        for id in self.topo_order() {
            let (a, b) = self.fanins(id);
            let va = values[a.node().index()] ^ a.is_complemented();
            let vb = values[b.node().index()] ^ b.is_complemented();
            values[id.index()] = va && vb;
        }
        self.outputs()
            .iter()
            .map(|l| values[l.node().index()] ^ l.is_complemented())
            .collect()
    }

    /// Evaluates the network under a full input assignment; returns the
    /// value of every node, indexed by [`NodeId::index`]. Dead nodes
    /// evaluate to `false`.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_inputs`.
    pub fn eval_nodes(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(assignment.len(), self.inputs.len());
        let mut values = vec![false; self.nodes.len()];
        for (i, &id) in self.inputs.iter().enumerate() {
            values[id.index()] = assignment[i];
        }
        for id in self.topo_order() {
            let (a, b) = self.fanins(id);
            let va = values[a.node().index()] ^ a.is_complemented();
            let vb = values[b.node().index()] ^ b.is_complemented();
            values[id.index()] = va && vb;
        }
        values
    }

    /// Rebuilds a compact AIG containing only logic reachable from the
    /// outputs, dropping dead nodes and flushing the replacement map.
    /// Input and output order is preserved.
    pub fn cleanup(&self) -> Aig {
        let mut out = Aig::new();
        let mut map: HashMap<NodeId, Lit> = HashMap::new();
        map.insert(NodeId::CONST, Lit::FALSE);
        for &id in &self.inputs {
            let l = out.add_input();
            map.insert(id, l);
        }
        for id in self.topo_order() {
            let (a, b) = self.fanins(id);
            let na = map[&a.node()].complement_if(a.is_complemented());
            let nb = map[&b.node()].complement_if(b.is_complemented());
            let nl = out.and(na, nb);
            map.insert(id, nl);
        }
        for l in self.outputs() {
            let nl = map[&l.node()].complement_if(l.is_complemented());
            out.add_output(nl);
        }
        out
    }

    /// Collects the node ids of the transitive fanin cone of `roots`,
    /// stopping at (and excluding) `leaves`, inputs and constants.
    pub fn cone(&self, roots: &[NodeId], leaves: &[NodeId]) -> Vec<NodeId> {
        let leaf_set: std::collections::HashSet<NodeId> = leaves.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut cone = Vec::new();
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if leaf_set.contains(&id) || !seen.insert(id) || !self.is_and(id) {
                continue;
            }
            cone.push(id);
            let (a, b) = self.fanins(id);
            stack.push(a.node());
            stack.push(b.node());
        }
        cone
    }

    /// Whether node `target` lies in the transitive fanin cone of `root`
    /// (inclusive).
    pub fn cone_contains(&self, root: NodeId, target: NodeId) -> bool {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if id == target {
                return true;
            }
            if !seen.insert(id) {
                continue;
            }
            if let Node::And(a, b) = self.nodes[id.index()] {
                stack.push(self.resolve(a).node());
                stack.push(self.resolve(b).node());
            }
        }
        false
    }

    /// The structural support of `root`: the primary inputs in its cone.
    pub fn structural_support(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen = std::collections::HashSet::new();
        let mut support = std::collections::BTreeSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            match self.nodes[id.index()] {
                Node::Input => {
                    support.insert(id);
                }
                Node::And(a, b) => {
                    stack.push(self.resolve(a).node());
                    stack.push(self.resolve(b).node());
                }
                Node::Const => {}
            }
        }
        support.into_iter().collect()
    }

    // ------------------------------------------------------------------
    // Raw introspection — used by `sbm-check` to validate the structural
    // invariants without going through the resolving accessors (which
    // would loop forever on a corrupted replacement map).
    // ------------------------------------------------------------------

    /// Whether `id` is the constant node.
    pub fn is_const_node(&self, id: NodeId) -> bool {
        matches!(self.nodes.get(id.index()), Some(Node::Const))
    }

    /// The fanin literals of AND node `id` exactly as stored — **no**
    /// replacement resolution. `None` for constants, inputs and
    /// out-of-range ids.
    pub fn raw_fanins(&self, id: NodeId) -> Option<(Lit, Lit)> {
        match self.nodes.get(id.index()) {
            Some(Node::And(a, b)) => Some((*a, *b)),
            _ => None,
        }
    }

    /// The pending replacement entries (`old` node → `new` literal), in
    /// ascending node order so consumers (validators, codecs) see — and
    /// report — the same entry first on every run. Entries are raw: the
    /// `new` literal may itself be replaced.
    pub fn replacements(&self) -> impl Iterator<Item = (NodeId, Lit)> + '_ {
        let mut entries: Vec<(NodeId, Lit)> = self.repl.iter().map(|(&n, &l)| (n, l)).collect();
        entries.sort_unstable_by_key(|&(n, _)| n);
        entries.into_iter()
    }

    /// The strash-table entries (canonically ordered fanin pair → node),
    /// in ascending fanin-pair order so validation walks — and the
    /// diagnostics they produce — are run-to-run deterministic.
    pub fn strash_entries(&self) -> impl Iterator<Item = ((Lit, Lit), NodeId)> + '_ {
        let mut entries: Vec<((Lit, Lit), NodeId)> =
            self.strash.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        entries.into_iter()
    }

    // ------------------------------------------------------------------
    // Corruption injectors — bypass the constructors' canonicity
    // maintenance so `sbm-check` tests can seed known-bad structures.
    // Never called by the optimization engines.
    // ------------------------------------------------------------------

    /// Test-support: appends an AND node verbatim, bypassing strashing,
    /// the one-level rules and replacement resolution.
    #[doc(hidden)]
    pub fn corrupt_push_raw_and(&mut self, a: Lit, b: Lit) -> Lit {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::And(a, b));
        Lit::new(id, false)
    }

    /// Test-support: records the redirection `old → new` verbatim,
    /// bypassing the combinational-cycle check.
    #[doc(hidden)]
    pub fn corrupt_force_replace(&mut self, old: NodeId, new: Lit) {
        self.repl.insert(old, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_rules() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(a, Lit::TRUE), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_nodes(), 2); // const + input, no ANDs created
    }

    #[test]
    fn strashing_dedups() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        let z = aig.and(!b, a);
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn eval_xor_mux() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let x = aig.xor(a, b);
        let m = aig.mux(c, a, b);
        aig.add_output(x);
        aig.add_output(m);
        for i in 0..8 {
            let assignment = [(i & 1) == 1, (i >> 1) & 1 == 1, (i >> 2) & 1 == 1];
            let out = aig.eval(&assignment);
            assert_eq!(out[0], assignment[0] ^ assignment[1]);
            assert_eq!(
                out[1],
                if assignment[2] {
                    assignment[0]
                } else {
                    assignment[1]
                }
            );
        }
    }

    #[test]
    fn replace_redirects_everything() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.and(a, b); // will be replaced by just `a`
        let f = aig.and(ab, b);
        aig.add_output(f);
        aig.replace(ab.node(), a).unwrap();
        // f = (a)&b now; outputs resolve through the replacement.
        for i in 0..4 {
            let assignment = [(i & 1) == 1, (i >> 1) & 1 == 1];
            assert_eq!(aig.eval(&assignment)[0], assignment[0] && assignment[1]);
        }
    }

    #[test]
    fn replace_detects_cycles() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.and(a, b);
        let f = aig.and(ab, a);
        aig.add_output(f);
        // Replacing ab with f would create a cycle (f depends on ab).
        assert!(aig.replace(ab.node(), f).is_err());
        // Replacing ab with itself complemented is also a cycle.
        assert!(aig.replace(ab.node(), !ab).is_err());
        // Identity replacement is a no-op.
        assert!(aig.replace(ab.node(), ab).is_ok());
    }

    #[test]
    fn cleanup_drops_dead_nodes() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let _dead = aig.and(a, !b);
        let live = aig.and(a, b);
        aig.add_output(live);
        assert_eq!(aig.num_ands(), 1);
        let compact = aig.cleanup();
        assert_eq!(compact.num_nodes(), 4); // const, 2 inputs, 1 AND
        assert_eq!(compact.num_ands(), 1);
        assert_eq!(compact.num_inputs(), 2);
    }

    #[test]
    fn cleanup_preserves_function() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let f = aig.maj3(a, b, c);
        let g = aig.xor(a, c);
        aig.add_output(f);
        aig.add_output(!g);
        let clean = aig.cleanup();
        for i in 0..8 {
            let assignment = [(i & 1) == 1, (i >> 1) & 1 == 1, (i >> 2) & 1 == 1];
            assert_eq!(aig.eval(&assignment), clean.eval(&assignment));
        }
    }

    #[test]
    fn topo_order_is_topological() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        let f = aig.xor(abc, ab);
        aig.add_output(f);
        let order = aig.topo_order();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for &id in &order {
            let (x, y) = aig.fanins(id);
            for fanin in [x.node(), y.node()] {
                if let Some(&p) = pos.get(&fanin) {
                    assert!(p < pos[&id]);
                }
            }
        }
    }

    #[test]
    fn levels_and_depth() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.and(a, b);
        let f = aig.and(ab, a);
        aig.add_output(f);
        assert_eq!(aig.depth(), 2);
        let levels = aig.levels();
        assert_eq!(levels[ab.node().index()], 1);
        assert_eq!(levels[f.node().index()], 2);
    }

    #[test]
    fn structural_support() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let _c = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        let sup = aig.structural_support(f.node());
        assert_eq!(sup, vec![a.node(), b.node()]);
    }

    #[test]
    fn and_or_xor_many() {
        let mut aig = Aig::new();
        let lits: Vec<Lit> = (0..5).map(|_| aig.add_input()).collect();
        let and_all = aig.and_many(&lits);
        let or_all = aig.or_many(&lits);
        let xor_all = aig.xor_many(&lits);
        aig.add_output(and_all);
        aig.add_output(or_all);
        aig.add_output(xor_all);
        for m in 0..32usize {
            let assignment: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let out = aig.eval(&assignment);
            assert_eq!(out[0], m == 31);
            assert_eq!(out[1], m != 0);
            assert_eq!(out[2], (m.count_ones() & 1) == 1);
        }
    }

    #[test]
    fn fanout_counts() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.and(a, b);
        let f = aig.and(ab, a);
        aig.add_output(f);
        aig.add_output(ab);
        let counts = aig.fanout_counts();
        assert_eq!(counts[ab.node().index()], 2); // f + output
        assert_eq!(counts[a.node().index()], 2);
        assert_eq!(counts[f.node().index()], 1);
    }
}
