//! Typed node handles and complementable literals.

use std::fmt;

/// A handle to an AIG node (constant, input or AND gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The constant-false node; node 0 of every AIG.
    pub const CONST: NodeId = NodeId(0);

    /// Raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a node together with an optional complement (inverter edge).
///
/// The encoding follows the AIGER convention: `node << 1 | complement`.
/// [`Lit::FALSE`] and [`Lit::TRUE`] are the two literals of the constant
/// node.
///
/// # Example
///
/// ```
/// use sbm_aig::{Aig, Lit};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// assert_eq!(!!a, a);
/// assert_ne!(!a, a);
/// assert_eq!((!a).node(), a.node());
/// assert_eq!(!Lit::FALSE, Lit::TRUE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node and a complement flag.
    pub fn new(node: NodeId, complemented: bool) -> Self {
        Lit(node.0 << 1 | complemented as u32)
    }

    /// The node this literal refers to.
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the literal carries an inverter.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the two constant literals.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// The positive (uncomplemented) literal of the same node.
    pub fn positive(self) -> Lit {
        Lit(self.0 & !1)
    }

    /// This literal, complemented if `c` is true.
    pub fn complement_if(self, c: bool) -> Lit {
        Lit(self.0 ^ c as u32)
    }

    /// Raw AIGER-style encoding (`node << 1 | complement`).
    pub fn code(self) -> u32 {
        self.0
    }

    /// Builds a literal from its raw AIGER-style encoding.
    pub fn from_code(code: u32) -> Lit {
        Lit(code)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node().index())
        } else {
            write!(f, "n{}", self.node().index())
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_involution() {
        let l = Lit::new(NodeId(7), false);
        assert_eq!(!!l, l);
        assert!((!l).is_complemented());
        assert_eq!((!l).node(), NodeId(7));
    }

    #[test]
    fn constants() {
        assert!(Lit::FALSE.is_const());
        assert!(Lit::TRUE.is_const());
        assert_eq!(!Lit::FALSE, Lit::TRUE);
        assert_eq!(Lit::FALSE.node(), NodeId::CONST);
    }

    #[test]
    fn complement_if_flags() {
        let l = Lit::new(NodeId(3), false);
        assert_eq!(l.complement_if(true), !l);
        assert_eq!(l.complement_if(false), l);
    }

    #[test]
    fn code_round_trip() {
        let l = Lit::new(NodeId(12), true);
        assert_eq!(Lit::from_code(l.code()), l);
    }
}
