//! ASCII AIGER (`aag`) reading and writing.
//!
//! The EPFL benchmark suite distributes its circuits in AIGER format; this
//! module provides the interchange layer so that externally produced AIGs
//! can be optimized by the SBM engines, and results exported for independent
//! verification. Only combinational AIGs (no latches) are supported, which
//! matches the EPFL suite.

use std::error::Error;
use std::fmt;

use crate::graph::Aig;
use crate::lit::Lit;

/// Error produced when parsing an AIGER file fails.
///
/// Every malformed document — truncated, oversized claims, garbage bytes
/// — maps to one of these variants; the parsers never panic, and never
/// allocate based on unvalidated header claims (a tiny document declaring
/// billions of variables is rejected before any allocation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseAigerError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// The file contains latches (sequential logic is unsupported).
    HasLatches,
    /// A literal refers to a variable beyond the declared maximum.
    LiteralOutOfRange(u64),
    /// A line could not be parsed.
    BadLine(String),
    /// An AND gate's left-hand side is not a fresh positive literal.
    BadAndDefinition(String),
    /// The document ended before every declared section was read.
    Truncated,
    /// A header count that the document cannot back (more declared
    /// entries than the remaining bytes could encode) or that exceeds
    /// the representable maximum. Nothing is allocated from such claims.
    ClaimTooLarge {
        /// Which header field made the claim (`"inputs"`, `"outputs"`,
        /// `"ands"`, `"vars"`).
        what: &'static str,
        /// The claimed count.
        claimed: u64,
    },
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::BadHeader(l) => write!(f, "bad aag header: {l:?}"),
            ParseAigerError::HasLatches => {
                write!(f, "sequential aiger files are not supported")
            }
            ParseAigerError::LiteralOutOfRange(l) => {
                write!(f, "literal {l} out of declared range")
            }
            ParseAigerError::BadLine(l) => write!(f, "unparseable line: {l:?}"),
            ParseAigerError::BadAndDefinition(l) => {
                write!(f, "bad and-gate definition: {l:?}")
            }
            ParseAigerError::Truncated => {
                write!(f, "document ended before all declared sections")
            }
            ParseAigerError::ClaimTooLarge { what, claimed } => {
                write!(
                    f,
                    "header claims {claimed} {what}, more than the document can back"
                )
            }
        }
    }
}

impl Error for ParseAigerError {}

/// Parses an ASCII AIGER (`aag`) document into an [`Aig`].
///
/// The constructed AIG is strashed on the fly, so the resulting node count
/// can be lower than the declared `A` when the source contains structural
/// duplicates.
///
/// # Errors
///
/// Returns a [`ParseAigerError`] for malformed documents or sequential
/// circuits.
///
/// # Example
///
/// ```
/// use sbm_aig::aiger;
///
/// # fn main() -> Result<(), sbm_aig::aiger::ParseAigerError> {
/// let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
/// let aig = aiger::parse(src)?;
/// assert_eq!(aig.num_inputs(), 2);
/// assert_eq!(aig.num_ands(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<Aig, ParseAigerError> {
    let mut lines = src.lines();
    let header = lines
        .next()
        .ok_or_else(|| ParseAigerError::BadHeader(String::new()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(ParseAigerError::BadHeader(header.to_string()));
    }
    let parse_num = |s: &str| {
        s.parse::<u64>()
            .map_err(|_| ParseAigerError::BadHeader(header.to_string()))
    };
    let m = parse_num(fields[1])?;
    let i = parse_num(fields[2])?;
    let l = parse_num(fields[3])?;
    let o = parse_num(fields[4])?;
    let a = parse_num(fields[5])?;
    if l != 0 {
        return Err(ParseAigerError::HasLatches);
    }
    // Node handles are 31-bit (literal = id << 1 in a u32); a larger
    // declared maximum cannot be represented.
    if m >= u64::from(u32::MAX >> 1) || i.checked_add(a).is_none_or(|s| s > m) {
        return Err(ParseAigerError::BadHeader(header.to_string()));
    }
    // Every declared entry needs its own line of at least two bytes
    // (one digit plus the newline), so a count the document cannot back
    // is rejected here — before any allocation or construction work.
    let line_cap = (src.len() as u64) / 2;
    for (what, claimed) in [("inputs", i), ("outputs", o), ("ands", a)] {
        if claimed > line_cap {
            return Err(ParseAigerError::ClaimTooLarge { what, claimed });
        }
    }

    let mut aig = Aig::new();
    // AIGER variable -> our literal (positive phase). A map rather than a
    // dense `m + 1` table: entries are inserted only as definition lines
    // are actually read, so memory is bounded by the document size, never
    // by the header's claimed variable count.
    let mut var_map: std::collections::HashMap<u64, Lit> = std::collections::HashMap::new();
    var_map.insert(0, Lit::FALSE);

    let lit_of = |code: u64, var_map: &std::collections::HashMap<u64, Lit>| {
        let var = code >> 1;
        if var > m {
            return Err(ParseAigerError::LiteralOutOfRange(code));
        }
        let base = *var_map
            .get(&var)
            .ok_or(ParseAigerError::LiteralOutOfRange(code))?;
        Ok(base.complement_if(code & 1 == 1))
    };

    // Inputs.
    for _ in 0..i {
        let line = lines.next().ok_or(ParseAigerError::Truncated)?;
        let code: u64 = line
            .trim()
            .parse()
            .map_err(|_| ParseAigerError::BadLine(line.to_string()))?;
        if code & 1 == 1 || code == 0 {
            return Err(ParseAigerError::BadLine(line.to_string()));
        }
        let var = code >> 1;
        if var > m || var_map.contains_key(&var) {
            return Err(ParseAigerError::LiteralOutOfRange(code));
        }
        var_map.insert(var, aig.add_input());
    }

    // Outputs (codes recorded now, resolved after ANDs are read). Grown
    // per parsed line — never pre-sized from the header claim.
    let mut output_codes = Vec::new();
    for _ in 0..o {
        let line = lines.next().ok_or(ParseAigerError::Truncated)?;
        let code: u64 = line
            .trim()
            .parse()
            .map_err(|_| ParseAigerError::BadLine(line.to_string()))?;
        output_codes.push(code);
    }

    // AND gates. Fanin literals must already be defined (inputs or
    // earlier ANDs), so definitions are monotone and cycles impossible.
    for _ in 0..a {
        let line = lines.next().ok_or(ParseAigerError::Truncated)?;
        let nums: Vec<u64> = line
            .split_whitespace()
            .map(|t| {
                t.parse()
                    .map_err(|_| ParseAigerError::BadLine(line.to_string()))
            })
            .collect::<Result<_, _>>()?;
        if nums.len() != 3 {
            return Err(ParseAigerError::BadAndDefinition(line.to_string()));
        }
        let (lhs, rhs0, rhs1) = (nums[0], nums[1], nums[2]);
        if lhs & 1 == 1 {
            return Err(ParseAigerError::BadAndDefinition(line.to_string()));
        }
        let var = lhs >> 1;
        if var > m || var_map.contains_key(&var) {
            return Err(ParseAigerError::BadAndDefinition(line.to_string()));
        }
        let f0 = lit_of(rhs0, &var_map)?;
        let f1 = lit_of(rhs1, &var_map)?;
        var_map.insert(var, aig.and(f0, f1));
    }

    for code in output_codes {
        let lit = lit_of(code, &var_map)?;
        aig.add_output(lit);
    }
    Ok(aig)
}

/// Serializes an [`Aig`] as an ASCII AIGER (`aag`) document.
///
/// The network is compacted first (dead logic and pending replacements are
/// flushed), so the emitted file is minimal and self-contained.
pub fn write(aig: &Aig) -> String {
    let aig = aig.cleanup();
    let order = aig.topo_order();
    // AIGER variables: 0 = const, 1..=I inputs, then ANDs in topo order.
    let mut var_of = vec![0u64; aig.num_nodes()];
    let mut next_var = 1u64;
    for &input in aig.inputs() {
        var_of[input.index()] = next_var;
        next_var += 1;
    }
    for &id in &order {
        var_of[id.index()] = next_var;
        next_var += 1;
    }
    let code = |l: Lit| -> u64 { var_of[l.node().index()] << 1 | l.is_complemented() as u64 };

    let mut out = String::new();
    out.push_str(&format!(
        "aag {} {} 0 {} {}\n",
        next_var - 1,
        aig.num_inputs(),
        aig.num_outputs(),
        order.len()
    ));
    for &input in aig.inputs() {
        out.push_str(&format!("{}\n", var_of[input.index()] << 1));
    }
    for l in aig.outputs() {
        out.push_str(&format!("{}\n", code(l)));
    }
    for &id in &order {
        let (a, b) = aig.fanins(id);
        out.push_str(&format!(
            "{} {} {}\n",
            var_of[id.index()] << 1,
            code(a),
            code(b)
        ));
    }
    out
}

/// Serializes an [`Aig`] in the *binary* AIGER format (`aig` header).
///
/// Binary AIGER requires inputs to occupy variables `1..=I` and AND gates
/// `I+1..=I+A` in topological order with `lhs > rhs0 >= rhs1`; the two
/// fanin deltas are LEB128-style varint encoded. This matches the format
/// the EPFL suite distributes.
pub fn write_binary(aig: &Aig) -> Vec<u8> {
    let aig = aig.cleanup();
    let order = aig.topo_order();
    let mut var_of = vec![0u64; aig.num_nodes()];
    let mut next_var = 1u64;
    for &input in aig.inputs() {
        var_of[input.index()] = next_var;
        next_var += 1;
    }
    for &id in &order {
        var_of[id.index()] = next_var;
        next_var += 1;
    }
    let code = |l: Lit| -> u64 { var_of[l.node().index()] << 1 | l.is_complemented() as u64 };

    let mut out = Vec::new();
    out.extend_from_slice(
        format!(
            "aig {} {} 0 {} {}\n",
            next_var - 1,
            aig.num_inputs(),
            aig.num_outputs(),
            order.len()
        )
        .as_bytes(),
    );
    for l in aig.outputs() {
        out.extend_from_slice(format!("{}\n", code(l)).as_bytes());
    }
    for &id in &order {
        let (a, b) = aig.fanins(id);
        let lhs = var_of[id.index()] << 1;
        let (mut c0, mut c1) = (code(a), code(b));
        if c0 < c1 {
            std::mem::swap(&mut c0, &mut c1);
        }
        debug_assert!(lhs > c0 && c0 >= c1);
        push_varint(&mut out, lhs - c0);
        push_varint(&mut out, c0 - c1);
    }
    out
}

fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        out.push((x & 0x7F) as u8 | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

/// Input cap of [`parse_binary`]: binary AIGER encodes inputs implicitly
/// (zero bytes each), so the declared count cannot be validated against
/// the document size — without a cap, a 20-byte header could demand
/// gigabytes of network construction.
const MAX_BINARY_INPUTS: u64 = 1 << 24;

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, ParseAigerError> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or(ParseAigerError::Truncated)?;
        *pos += 1;
        x |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift > 63 {
            return Err(ParseAigerError::BadLine("varint overflow".into()));
        }
    }
}

/// Parses a *binary* AIGER document (`aig` header).
///
/// # Errors
///
/// Returns a [`ParseAigerError`] for malformed documents or sequential
/// circuits.
pub fn parse_binary(data: &[u8]) -> Result<Aig, ParseAigerError> {
    // Header line is ASCII.
    let newline = data
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| ParseAigerError::BadHeader(String::new()))?;
    let header = std::str::from_utf8(&data[..newline])
        .map_err(|_| ParseAigerError::BadHeader("<non-utf8>".into()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aig" {
        return Err(ParseAigerError::BadHeader(header.to_string()));
    }
    let parse_num = |s: &str| {
        s.parse::<u64>()
            .map_err(|_| ParseAigerError::BadHeader(header.to_string()))
    };
    let m = parse_num(fields[1])?;
    let i = parse_num(fields[2])?;
    let l = parse_num(fields[3])?;
    let o = parse_num(fields[4])?;
    let a = parse_num(fields[5])?;
    if l != 0 {
        return Err(ParseAigerError::HasLatches);
    }
    if i.checked_add(a) != Some(m) || m >= u64::from(u32::MAX >> 1) {
        return Err(ParseAigerError::BadHeader(header.to_string()));
    }
    // Claims must be backed by document bytes before anything is built:
    // every output line and every delta-encoded AND occupies at least two
    // bytes. Inputs occupy none in the binary format, so they get a hard
    // cap instead — a 20-byte header must not trigger gigabytes of input
    // construction.
    if i > MAX_BINARY_INPUTS {
        return Err(ParseAigerError::ClaimTooLarge {
            what: "inputs",
            claimed: i,
        });
    }
    let byte_cap = (data.len() as u64) / 2;
    for (what, claimed) in [("outputs", o), ("ands", a)] {
        if claimed > byte_cap {
            return Err(ParseAigerError::ClaimTooLarge { what, claimed });
        }
    }
    let mut pos = newline + 1;

    let mut aig = Aig::new();
    let mut lits: Vec<Lit> = Vec::new();
    lits.push(Lit::FALSE);
    for _ in 0..i {
        lits.push(aig.add_input());
    }

    // Output codes (ASCII lines). Grown per parsed line — never
    // pre-sized from the header claim.
    let mut output_codes = Vec::new();
    for _ in 0..o {
        let end = data[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| pos + p)
            .ok_or(ParseAigerError::Truncated)?;
        let line = std::str::from_utf8(&data[pos..end])
            .map_err(|_| ParseAigerError::BadLine("<non-utf8 output>".into()))?;
        output_codes.push(
            line.trim()
                .parse::<u64>()
                .map_err(|_| ParseAigerError::BadLine(line.to_string()))?,
        );
        pos = end + 1;
    }

    // AND gates: delta-encoded.
    for k in 0..a {
        let lhs = (i + 1 + k) << 1;
        let delta0 = read_varint(data, &mut pos)?;
        let delta1 = read_varint(data, &mut pos)?;
        let c0 = lhs
            .checked_sub(delta0)
            .ok_or(ParseAigerError::LiteralOutOfRange(lhs))?;
        let c1 = c0
            .checked_sub(delta1)
            .ok_or(ParseAigerError::LiteralOutOfRange(c0))?;
        let lit_of = |code: u64, lits: &[Lit]| -> Result<Lit, ParseAigerError> {
            let var = (code >> 1) as usize;
            let base = *lits
                .get(var)
                .ok_or(ParseAigerError::LiteralOutOfRange(code))?;
            Ok(base.complement_if(code & 1 == 1))
        };
        let f0 = lit_of(c0, &lits)?;
        let f1 = lit_of(c1, &lits)?;
        lits.push(aig.and(f0, f1));
    }

    for code in output_codes {
        let var = (code >> 1) as usize;
        let base = *lits
            .get(var)
            .ok_or(ParseAigerError::LiteralOutOfRange(code))?;
        aig.add_output(base.complement_if(code & 1 == 1));
    }
    Ok(aig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_and() {
        let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let aig = parse(src).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_outputs(), 1);
        assert_eq!(aig.num_ands(), 1);
        assert_eq!(aig.eval(&[true, true]), vec![true]);
        assert_eq!(aig.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn parse_complemented_output() {
        // NAND: output = !(i1 & i2)
        let src = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n";
        let aig = parse(src).unwrap();
        assert_eq!(aig.eval(&[true, true]), vec![false]);
        assert_eq!(aig.eval(&[false, true]), vec![true]);
    }

    #[test]
    fn parse_constant_output() {
        let src = "aag 0 0 0 2 0\n0\n1\n";
        let aig = parse(src).unwrap();
        assert_eq!(aig.eval(&[]), vec![false, true]);
    }

    #[test]
    fn rejects_latches() {
        let src = "aag 1 0 1 0 0\n2 3\n";
        assert!(matches!(parse(src), Err(ParseAigerError::HasLatches)));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse("aig 1 0 0 0 0\n"),
            Err(ParseAigerError::BadHeader(_))
        ));
        assert!(matches!(
            parse("aag 1 0 0\n"),
            Err(ParseAigerError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let src = "aag 1 1 0 1 0\n2\n9\n";
        assert!(matches!(
            parse(src),
            Err(ParseAigerError::LiteralOutOfRange(9))
        ));
    }

    #[test]
    fn round_trip_preserves_function() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.maj3(a, b, c);
        let x = aig.xor(a, c);
        aig.add_output(m);
        aig.add_output(!x);
        let text = write(&aig);
        let back = parse(&text).unwrap();
        assert_eq!(back.num_inputs(), 3);
        assert_eq!(back.num_outputs(), 2);
        for i in 0..8 {
            let assignment = [(i & 1) == 1, (i >> 1) & 1 == 1, (i >> 2) & 1 == 1];
            assert_eq!(aig.eval(&assignment), back.eval(&assignment));
        }
    }

    #[test]
    fn binary_round_trip_preserves_function() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.maj3(a, b, c);
        let x = aig.xor(a, c);
        aig.add_output(!m);
        aig.add_output(x);
        let bytes = write_binary(&aig);
        let back = parse_binary(&bytes).unwrap();
        for i in 0..8 {
            let assignment = [(i & 1) == 1, (i >> 1) & 1 == 1, (i >> 2) & 1 == 1];
            assert_eq!(aig.eval(&assignment), back.eval(&assignment));
        }
    }

    #[test]
    fn binary_and_ascii_agree() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.xor(a, b);
        aig.add_output(f);
        let ascii = parse(&write(&aig)).unwrap();
        let binary = parse_binary(&write_binary(&aig)).unwrap();
        for i in 0..4 {
            let assignment = [(i & 1) == 1, (i >> 1) & 1 == 1];
            assert_eq!(ascii.eval(&assignment), binary.eval(&assignment));
        }
    }

    #[test]
    fn binary_rejects_latches_and_bad_header() {
        assert!(matches!(
            parse_binary(b"aig 1 0 1 0 0\n"),
            Err(ParseAigerError::HasLatches)
        ));
        assert!(matches!(
            parse_binary(b"aag 1 1 0 0 0\n"),
            Err(ParseAigerError::BadHeader(_))
        ));
        assert!(matches!(
            parse_binary(b"aig 5 1 0 0 0\n"),
            Err(ParseAigerError::BadHeader(_))
        ));
    }

    #[test]
    fn truncated_documents_are_typed_errors() {
        // Declared but missing inputs / outputs / ANDs.
        for src in [
            "aag 2 2 0 0 0\n2\n",
            "aag 1 1 0 2 0\n2\n1\n",
            "aag 3 2 0 1 1\n2\n4\n6\n",
        ] {
            assert!(
                matches!(parse(src), Err(ParseAigerError::Truncated)),
                "{src:?}"
            );
        }
        // Binary: missing output line, then missing/cut varints.
        for doc in [
            b"aig 0 0 0 1 0\n".as_slice(),
            b"aig 2 1 0 0 1\n".as_slice(),
            b"aig 2 1 0 0 1\n\x82".as_slice(),
        ] {
            assert!(
                matches!(parse_binary(doc), Err(ParseAigerError::Truncated)),
                "{doc:?}"
            );
        }
    }

    #[test]
    fn oversized_claims_are_rejected_without_allocation() {
        // A few dozen bytes claiming millions of entries must fail fast
        // with the claim that could not be backed.
        assert!(matches!(
            parse("aag 3000000 3000000 0 0 0\n2\n"),
            Err(ParseAigerError::ClaimTooLarge {
                what: "inputs",
                claimed: 3_000_000
            })
        ));
        assert!(matches!(
            parse("aag 3000000 0 0 3000000 0\n0\n"),
            Err(ParseAigerError::ClaimTooLarge {
                what: "outputs",
                ..
            })
        ));
        assert!(matches!(
            parse("aag 3000000 0 0 0 3000000\n"),
            Err(ParseAigerError::ClaimTooLarge { what: "ands", .. })
        ));
        assert!(matches!(
            parse_binary(b"aig 20000000 20000000 0 0 0\n"),
            Err(ParseAigerError::ClaimTooLarge { what: "inputs", .. })
        ));
        assert!(matches!(
            parse_binary(b"aig 3000000 0 0 0 3000000\n"),
            Err(ParseAigerError::ClaimTooLarge { what: "ands", .. })
        ));
        // An unrepresentable variable count is a header error.
        assert!(matches!(
            parse("aag 4000000000 0 0 0 0\n"),
            Err(ParseAigerError::BadHeader(_))
        ));
    }

    #[test]
    fn non_monotone_and_definitions_are_rejected() {
        // AND 3 references AND 4 (not yet defined): forward references
        // would permit combinational cycles.
        let src = "aag 4 1 0 1 2\n2\n6\n6 8 2\n8 2 2\n";
        assert!(matches!(
            parse(src),
            Err(ParseAigerError::LiteralOutOfRange(8))
        ));
        // Redefining an existing variable is equally malformed.
        let dup = "aag 2 1 0 1 1\n2\n4\n2 2 2\n";
        assert!(matches!(
            parse(dup),
            Err(ParseAigerError::BadAndDefinition(_))
        ));
        // Binary deltas that underflow the LHS (non-monotone by
        // construction) are out-of-range, not a panic.
        let mut doc = b"aig 2 1 0 0 1\n".to_vec();
        doc.extend_from_slice(&[0x90, 0x01, 0x00]); // delta0 = 144 > lhs
        assert!(matches!(
            parse_binary(&doc),
            Err(ParseAigerError::LiteralOutOfRange(_))
        ));
    }

    #[test]
    fn error_display_names_the_failure() {
        assert!(ParseAigerError::Truncated.to_string().contains("ended"));
        let claim = ParseAigerError::ClaimTooLarge {
            what: "ands",
            claimed: 7,
        };
        assert!(claim.to_string().contains("7 ands"));
    }

    #[test]
    fn write_emits_topological_ands() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.xor(a, b);
        aig.add_output(f);
        let text = write(&aig);
        let header: Vec<&str> = text.lines().next().unwrap().split(' ').collect();
        assert_eq!(header[5], "3"); // xor = 3 ANDs
                                    // Every AND's fanin variables must be smaller than its own.
        for line in text.lines().skip(1 + 2 + 1) {
            let nums: Vec<u64> = line
                .split_whitespace()
                .map(|t| t.parse().unwrap())
                .collect();
            assert!(nums[1] >> 1 < nums[0] >> 1);
            assert!(nums[2] >> 1 < nums[0] >> 1);
        }
    }
}
