//! ASCII AIGER (`aag`) reading and writing.
//!
//! The EPFL benchmark suite distributes its circuits in AIGER format; this
//! module provides the interchange layer so that externally produced AIGs
//! can be optimized by the SBM engines, and results exported for independent
//! verification. Only combinational AIGs (no latches) are supported, which
//! matches the EPFL suite.

use std::error::Error;
use std::fmt;

use crate::graph::Aig;
use crate::lit::Lit;

/// Error produced when parsing an AIGER file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseAigerError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// The file contains latches (sequential logic is unsupported).
    HasLatches,
    /// A literal refers to a variable beyond the declared maximum.
    LiteralOutOfRange(u64),
    /// A line could not be parsed.
    BadLine(String),
    /// An AND gate's left-hand side is not a fresh positive literal.
    BadAndDefinition(String),
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::BadHeader(l) => write!(f, "bad aag header: {l:?}"),
            ParseAigerError::HasLatches => {
                write!(f, "sequential aiger files are not supported")
            }
            ParseAigerError::LiteralOutOfRange(l) => {
                write!(f, "literal {l} out of declared range")
            }
            ParseAigerError::BadLine(l) => write!(f, "unparseable line: {l:?}"),
            ParseAigerError::BadAndDefinition(l) => {
                write!(f, "bad and-gate definition: {l:?}")
            }
        }
    }
}

impl Error for ParseAigerError {}

/// Parses an ASCII AIGER (`aag`) document into an [`Aig`].
///
/// The constructed AIG is strashed on the fly, so the resulting node count
/// can be lower than the declared `A` when the source contains structural
/// duplicates.
///
/// # Errors
///
/// Returns a [`ParseAigerError`] for malformed documents or sequential
/// circuits.
///
/// # Example
///
/// ```
/// use sbm_aig::aiger;
///
/// # fn main() -> Result<(), sbm_aig::aiger::ParseAigerError> {
/// let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
/// let aig = aiger::parse(src)?;
/// assert_eq!(aig.num_inputs(), 2);
/// assert_eq!(aig.num_ands(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<Aig, ParseAigerError> {
    let mut lines = src.lines();
    let header = lines
        .next()
        .ok_or_else(|| ParseAigerError::BadHeader(String::new()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(ParseAigerError::BadHeader(header.to_string()));
    }
    let parse_num = |s: &str| {
        s.parse::<u64>()
            .map_err(|_| ParseAigerError::BadHeader(header.to_string()))
    };
    let m = parse_num(fields[1])?;
    let i = parse_num(fields[2])?;
    let l = parse_num(fields[3])?;
    let o = parse_num(fields[4])?;
    let a = parse_num(fields[5])?;
    if l != 0 {
        return Err(ParseAigerError::HasLatches);
    }
    // Node handles are 31-bit (literal = id << 1 in a u32); a larger
    // declared maximum cannot be represented — and would overflow the
    // `m + 1` allocation below before any line is read.
    if m >= u64::from(u32::MAX >> 1) || i.checked_add(a).is_none_or(|s| s > m) {
        return Err(ParseAigerError::BadHeader(header.to_string()));
    }

    let mut aig = Aig::new();
    // AIGER variable -> our literal (positive phase).
    let mut var_map: Vec<Option<Lit>> = vec![None; (m + 1) as usize];
    var_map[0] = Some(Lit::FALSE);

    let lit_of = |code: u64, var_map: &[Option<Lit>]| -> Result<Lit, ParseAigerError> {
        let var = (code >> 1) as usize;
        if var >= var_map.len() {
            return Err(ParseAigerError::LiteralOutOfRange(code));
        }
        let base = var_map[var].ok_or(ParseAigerError::LiteralOutOfRange(code))?;
        Ok(base.complement_if(code & 1 == 1))
    };

    // Inputs.
    for _ in 0..i {
        let line = lines
            .next()
            .ok_or_else(|| ParseAigerError::BadLine("<eof>".into()))?;
        let code: u64 = line
            .trim()
            .parse()
            .map_err(|_| ParseAigerError::BadLine(line.to_string()))?;
        if code & 1 == 1 || code == 0 {
            return Err(ParseAigerError::BadLine(line.to_string()));
        }
        let var = (code >> 1) as usize;
        if var >= var_map.len() || var_map[var].is_some() {
            return Err(ParseAigerError::LiteralOutOfRange(code));
        }
        var_map[var] = Some(aig.add_input());
    }

    // Outputs (codes recorded now, resolved after ANDs are read).
    let mut output_codes = Vec::with_capacity(o as usize);
    for _ in 0..o {
        let line = lines
            .next()
            .ok_or_else(|| ParseAigerError::BadLine("<eof>".into()))?;
        let code: u64 = line
            .trim()
            .parse()
            .map_err(|_| ParseAigerError::BadLine(line.to_string()))?;
        output_codes.push(code);
    }

    // AND gates.
    for _ in 0..a {
        let line = lines
            .next()
            .ok_or_else(|| ParseAigerError::BadLine("<eof>".into()))?;
        let nums: Vec<u64> = line
            .split_whitespace()
            .map(|t| {
                t.parse()
                    .map_err(|_| ParseAigerError::BadLine(line.to_string()))
            })
            .collect::<Result<_, _>>()?;
        if nums.len() != 3 {
            return Err(ParseAigerError::BadAndDefinition(line.to_string()));
        }
        let (lhs, rhs0, rhs1) = (nums[0], nums[1], nums[2]);
        if lhs & 1 == 1 {
            return Err(ParseAigerError::BadAndDefinition(line.to_string()));
        }
        let var = (lhs >> 1) as usize;
        if var >= var_map.len() || var_map[var].is_some() {
            return Err(ParseAigerError::BadAndDefinition(line.to_string()));
        }
        let f0 = lit_of(rhs0, &var_map)?;
        let f1 = lit_of(rhs1, &var_map)?;
        var_map[var] = Some(aig.and(f0, f1));
    }

    for code in output_codes {
        let lit = lit_of(code, &var_map)?;
        aig.add_output(lit);
    }
    Ok(aig)
}

/// Serializes an [`Aig`] as an ASCII AIGER (`aag`) document.
///
/// The network is compacted first (dead logic and pending replacements are
/// flushed), so the emitted file is minimal and self-contained.
pub fn write(aig: &Aig) -> String {
    let aig = aig.cleanup();
    let order = aig.topo_order();
    // AIGER variables: 0 = const, 1..=I inputs, then ANDs in topo order.
    let mut var_of = vec![0u64; aig.num_nodes()];
    let mut next_var = 1u64;
    for &input in aig.inputs() {
        var_of[input.index()] = next_var;
        next_var += 1;
    }
    for &id in &order {
        var_of[id.index()] = next_var;
        next_var += 1;
    }
    let code = |l: Lit| -> u64 { var_of[l.node().index()] << 1 | l.is_complemented() as u64 };

    let mut out = String::new();
    out.push_str(&format!(
        "aag {} {} 0 {} {}\n",
        next_var - 1,
        aig.num_inputs(),
        aig.num_outputs(),
        order.len()
    ));
    for &input in aig.inputs() {
        out.push_str(&format!("{}\n", var_of[input.index()] << 1));
    }
    for l in aig.outputs() {
        out.push_str(&format!("{}\n", code(l)));
    }
    for &id in &order {
        let (a, b) = aig.fanins(id);
        out.push_str(&format!(
            "{} {} {}\n",
            var_of[id.index()] << 1,
            code(a),
            code(b)
        ));
    }
    out
}

/// Serializes an [`Aig`] in the *binary* AIGER format (`aig` header).
///
/// Binary AIGER requires inputs to occupy variables `1..=I` and AND gates
/// `I+1..=I+A` in topological order with `lhs > rhs0 >= rhs1`; the two
/// fanin deltas are LEB128-style varint encoded. This matches the format
/// the EPFL suite distributes.
pub fn write_binary(aig: &Aig) -> Vec<u8> {
    let aig = aig.cleanup();
    let order = aig.topo_order();
    let mut var_of = vec![0u64; aig.num_nodes()];
    let mut next_var = 1u64;
    for &input in aig.inputs() {
        var_of[input.index()] = next_var;
        next_var += 1;
    }
    for &id in &order {
        var_of[id.index()] = next_var;
        next_var += 1;
    }
    let code = |l: Lit| -> u64 { var_of[l.node().index()] << 1 | l.is_complemented() as u64 };

    let mut out = Vec::new();
    out.extend_from_slice(
        format!(
            "aig {} {} 0 {} {}\n",
            next_var - 1,
            aig.num_inputs(),
            aig.num_outputs(),
            order.len()
        )
        .as_bytes(),
    );
    for l in aig.outputs() {
        out.extend_from_slice(format!("{}\n", code(l)).as_bytes());
    }
    for &id in &order {
        let (a, b) = aig.fanins(id);
        let lhs = var_of[id.index()] << 1;
        let (mut c0, mut c1) = (code(a), code(b));
        if c0 < c1 {
            std::mem::swap(&mut c0, &mut c1);
        }
        debug_assert!(lhs > c0 && c0 >= c1);
        push_varint(&mut out, lhs - c0);
        push_varint(&mut out, c0 - c1);
    }
    out
}

fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        out.push((x & 0x7F) as u8 | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, ParseAigerError> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data
            .get(*pos)
            .ok_or_else(|| ParseAigerError::BadLine("<eof in varint>".into()))?;
        *pos += 1;
        x |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift > 63 {
            return Err(ParseAigerError::BadLine("varint overflow".into()));
        }
    }
}

/// Parses a *binary* AIGER document (`aig` header).
///
/// # Errors
///
/// Returns a [`ParseAigerError`] for malformed documents or sequential
/// circuits.
pub fn parse_binary(data: &[u8]) -> Result<Aig, ParseAigerError> {
    // Header line is ASCII.
    let newline = data
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| ParseAigerError::BadHeader(String::new()))?;
    let header = std::str::from_utf8(&data[..newline])
        .map_err(|_| ParseAigerError::BadHeader("<non-utf8>".into()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aig" {
        return Err(ParseAigerError::BadHeader(header.to_string()));
    }
    let parse_num = |s: &str| {
        s.parse::<u64>()
            .map_err(|_| ParseAigerError::BadHeader(header.to_string()))
    };
    let m = parse_num(fields[1])?;
    let i = parse_num(fields[2])?;
    let l = parse_num(fields[3])?;
    let o = parse_num(fields[4])?;
    let a = parse_num(fields[5])?;
    if l != 0 {
        return Err(ParseAigerError::HasLatches);
    }
    if i.checked_add(a) != Some(m) || m >= u64::from(u32::MAX >> 1) {
        return Err(ParseAigerError::BadHeader(header.to_string()));
    }
    let mut pos = newline + 1;

    let mut aig = Aig::new();
    let mut lits: Vec<Lit> = Vec::with_capacity((m + 1) as usize);
    lits.push(Lit::FALSE);
    for _ in 0..i {
        lits.push(aig.add_input());
    }

    // Output codes (ASCII lines).
    let mut output_codes = Vec::with_capacity(o as usize);
    for _ in 0..o {
        let end = data[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| pos + p)
            .ok_or_else(|| ParseAigerError::BadLine("<eof in outputs>".into()))?;
        let line = std::str::from_utf8(&data[pos..end])
            .map_err(|_| ParseAigerError::BadLine("<non-utf8 output>".into()))?;
        output_codes.push(
            line.trim()
                .parse::<u64>()
                .map_err(|_| ParseAigerError::BadLine(line.to_string()))?,
        );
        pos = end + 1;
    }

    // AND gates: delta-encoded.
    for k in 0..a {
        let lhs = (i + 1 + k) << 1;
        let delta0 = read_varint(data, &mut pos)?;
        let delta1 = read_varint(data, &mut pos)?;
        let c0 = lhs
            .checked_sub(delta0)
            .ok_or(ParseAigerError::LiteralOutOfRange(lhs))?;
        let c1 = c0
            .checked_sub(delta1)
            .ok_or(ParseAigerError::LiteralOutOfRange(c0))?;
        let lit_of = |code: u64, lits: &[Lit]| -> Result<Lit, ParseAigerError> {
            let var = (code >> 1) as usize;
            let base = *lits
                .get(var)
                .ok_or(ParseAigerError::LiteralOutOfRange(code))?;
            Ok(base.complement_if(code & 1 == 1))
        };
        let f0 = lit_of(c0, &lits)?;
        let f1 = lit_of(c1, &lits)?;
        lits.push(aig.and(f0, f1));
    }

    for code in output_codes {
        let var = (code >> 1) as usize;
        let base = *lits
            .get(var)
            .ok_or(ParseAigerError::LiteralOutOfRange(code))?;
        aig.add_output(base.complement_if(code & 1 == 1));
    }
    Ok(aig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_and() {
        let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let aig = parse(src).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_outputs(), 1);
        assert_eq!(aig.num_ands(), 1);
        assert_eq!(aig.eval(&[true, true]), vec![true]);
        assert_eq!(aig.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn parse_complemented_output() {
        // NAND: output = !(i1 & i2)
        let src = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n";
        let aig = parse(src).unwrap();
        assert_eq!(aig.eval(&[true, true]), vec![false]);
        assert_eq!(aig.eval(&[false, true]), vec![true]);
    }

    #[test]
    fn parse_constant_output() {
        let src = "aag 0 0 0 2 0\n0\n1\n";
        let aig = parse(src).unwrap();
        assert_eq!(aig.eval(&[]), vec![false, true]);
    }

    #[test]
    fn rejects_latches() {
        let src = "aag 1 0 1 0 0\n2 3\n";
        assert!(matches!(parse(src), Err(ParseAigerError::HasLatches)));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse("aig 1 0 0 0 0\n"),
            Err(ParseAigerError::BadHeader(_))
        ));
        assert!(matches!(
            parse("aag 1 0 0\n"),
            Err(ParseAigerError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let src = "aag 1 1 0 1 0\n2\n9\n";
        assert!(matches!(
            parse(src),
            Err(ParseAigerError::LiteralOutOfRange(9))
        ));
    }

    #[test]
    fn round_trip_preserves_function() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.maj3(a, b, c);
        let x = aig.xor(a, c);
        aig.add_output(m);
        aig.add_output(!x);
        let text = write(&aig);
        let back = parse(&text).unwrap();
        assert_eq!(back.num_inputs(), 3);
        assert_eq!(back.num_outputs(), 2);
        for i in 0..8 {
            let assignment = [(i & 1) == 1, (i >> 1) & 1 == 1, (i >> 2) & 1 == 1];
            assert_eq!(aig.eval(&assignment), back.eval(&assignment));
        }
    }

    #[test]
    fn binary_round_trip_preserves_function() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.maj3(a, b, c);
        let x = aig.xor(a, c);
        aig.add_output(!m);
        aig.add_output(x);
        let bytes = write_binary(&aig);
        let back = parse_binary(&bytes).unwrap();
        for i in 0..8 {
            let assignment = [(i & 1) == 1, (i >> 1) & 1 == 1, (i >> 2) & 1 == 1];
            assert_eq!(aig.eval(&assignment), back.eval(&assignment));
        }
    }

    #[test]
    fn binary_and_ascii_agree() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.xor(a, b);
        aig.add_output(f);
        let ascii = parse(&write(&aig)).unwrap();
        let binary = parse_binary(&write_binary(&aig)).unwrap();
        for i in 0..4 {
            let assignment = [(i & 1) == 1, (i >> 1) & 1 == 1];
            assert_eq!(ascii.eval(&assignment), binary.eval(&assignment));
        }
    }

    #[test]
    fn binary_rejects_latches_and_bad_header() {
        assert!(matches!(
            parse_binary(b"aig 1 0 1 0 0\n"),
            Err(ParseAigerError::HasLatches)
        ));
        assert!(matches!(
            parse_binary(b"aag 1 1 0 0 0\n"),
            Err(ParseAigerError::BadHeader(_))
        ));
        assert!(matches!(
            parse_binary(b"aig 5 1 0 0 0\n"),
            Err(ParseAigerError::BadHeader(_))
        ));
    }

    #[test]
    fn write_emits_topological_ands() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.xor(a, b);
        aig.add_output(f);
        let text = write(&aig);
        let header: Vec<&str> = text.lines().next().unwrap().split(' ').collect();
        assert_eq!(header[5], "3"); // xor = 3 ANDs
                                    // Every AND's fanin variables must be smaller than its own.
        for line in text.lines().skip(1 + 2 + 1) {
            let nums: Vec<u64> = line
                .split_whitespace()
                .map(|t| t.parse().unwrap())
                .collect();
            assert!(nums[1] >> 1 < nums[0] >> 1);
            assert!(nums[2] >> 1 < nums[0] >> 1);
        }
    }
}
