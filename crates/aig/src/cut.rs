//! k-feasible cut enumeration (priority cuts).
//!
//! A *cut* of node `n` is a set of nodes (leaves) such that every path from
//! the inputs to `n` passes through a leaf; it is k-feasible if it has at
//! most `k` leaves. Cuts drive both DAG-aware rewriting (Mishchenko et al.
//! \[12\], the `rewrite` move of the gradient engine) and LUT mapping
//! (`if -K 6 -a` in the paper's EPFL experiments).

use std::collections::HashMap;

use crate::graph::Aig;
use crate::lit::NodeId;

/// A k-feasible cut: a sorted leaf set plus a 64-bit Bloom signature used to
/// cheaply reject impossible merges and subsumption candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    leaves: Vec<NodeId>,
    sign: u64,
}

impl Cut {
    /// The trivial cut `{node}`.
    pub fn trivial(node: NodeId) -> Self {
        Cut {
            sign: 1u64 << (node.index() & 63),
            leaves: vec![node],
        }
    }

    /// The cut's leaves, sorted ascending.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// Merges two cuts; `None` if the union exceeds `k` leaves.
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        // Quick reject: each leaf sets one signature bit, so the union's
        // popcount is a lower bound on the number of distinct leaves.
        if (self.sign | other.sign).count_ones() as usize > k {
            return None;
        }
        let mut merged = Vec::with_capacity(k);
        let (mut i, mut j) = (0, 0);
        while i < self.leaves.len() || j < other.leaves.len() {
            let next = match (self.leaves.get(i), other.leaves.get(j)) {
                (Some(&a), Some(&b)) => {
                    if a < b {
                        i += 1;
                        a
                    } else if b < a {
                        j += 1;
                        b
                    } else {
                        i += 1;
                        j += 1;
                        a
                    }
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => unreachable!(),
            };
            if merged.len() == k {
                return None;
            }
            merged.push(next);
        }
        Some(Cut {
            sign: self.sign | other.sign,
            leaves: merged,
        })
    }

    /// Whether `self` dominates (is a subset of) `other`; dominated cuts are
    /// redundant.
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.leaves.len() > other.leaves.len() || self.sign & !other.sign != 0 {
            return false;
        }
        self.leaves
            .iter()
            .all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// Options for cut enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CutOptions {
    /// Maximum cut size (k).
    pub k: usize,
    /// Maximum number of cuts kept per node (priority-cut truncation).
    pub max_cuts: usize,
}

impl Default for CutOptions {
    fn default() -> Self {
        CutOptions { k: 6, max_cuts: 8 }
    }
}

/// Enumerates up to `max_cuts` k-feasible cuts per live node, bottom-up.
///
/// The returned map contains an entry for every live AND node, every input
/// reachable from the outputs, and the constant node if used. Each node's
/// cut list ends with its trivial cut.
pub fn enumerate_cuts(aig: &Aig, options: CutOptions) -> HashMap<NodeId, Vec<Cut>> {
    let mut cuts: HashMap<NodeId, Vec<Cut>> = HashMap::new();
    cuts.insert(NodeId::CONST, vec![Cut::trivial(NodeId::CONST)]);
    for &input in aig.inputs() {
        cuts.insert(input, vec![Cut::trivial(input)]);
    }
    for id in aig.topo_order() {
        let (a, b) = aig.fanins(id);
        let ca = cuts.get(&a.node()).cloned().unwrap_or_default();
        let cb = cuts.get(&b.node()).cloned().unwrap_or_default();
        let mut merged: Vec<Cut> = Vec::new();
        for x in &ca {
            for y in &cb {
                if let Some(c) = x.merge(y, options.k) {
                    if !merged.iter().any(|m| m.dominates(&c)) {
                        merged.retain(|m| !c.dominates(m));
                        merged.push(c);
                    }
                }
            }
        }
        merged.sort_by_key(Cut::size);
        merged.truncate(options.max_cuts.saturating_sub(1));
        merged.push(Cut::trivial(id));
        cuts.insert(id, merged);
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{lit_truth_table, window_truth_tables};

    #[test]
    fn trivial_cut() {
        let c = Cut::trivial(NodeId::CONST);
        assert_eq!(c.size(), 1);
        assert!(c.dominates(&c.clone()));
    }

    #[test]
    fn merge_respects_k() {
        let a = Cut::trivial(NodeId(1));
        let b = Cut::trivial(NodeId(2));
        let ab = a.merge(&b, 2).unwrap();
        assert_eq!(ab.size(), 2);
        let c = Cut::trivial(NodeId(3));
        assert!(ab.merge(&c, 2).is_none());
        assert!(ab.merge(&c, 3).is_some());
    }

    #[test]
    fn merge_shares_leaves() {
        let a = Cut::trivial(NodeId(1))
            .merge(&Cut::trivial(NodeId(2)), 4)
            .unwrap();
        let b = Cut::trivial(NodeId(2))
            .merge(&Cut::trivial(NodeId(3)), 4)
            .unwrap();
        let u = a.merge(&b, 3).unwrap();
        assert_eq!(u.size(), 3);
    }

    #[test]
    fn enumeration_covers_mux() {
        let mut aig = Aig::new();
        let s = aig.add_input();
        let t = aig.add_input();
        let e = aig.add_input();
        let m = aig.mux(s, t, e);
        aig.add_output(m);
        let cuts = enumerate_cuts(&aig, CutOptions { k: 3, max_cuts: 8 });
        let root_cuts = &cuts[&m.node()];
        // The 3-input cut {s, t, e} must be found.
        let full = root_cuts
            .iter()
            .find(|c| c.leaves() == [s.node(), t.node(), e.node()]);
        assert!(full.is_some(), "full-support cut missing: {root_cuts:?}");
        // Its function must be the mux function.
        let cut = full.unwrap();
        let tables = window_truth_tables(&aig, &[m.node()], cut.leaves());
        let f = lit_truth_table(&tables, m).unwrap();
        let sel = sbm_tt::TruthTable::var(3, 0);
        let tt = sbm_tt::TruthTable::var(3, 1);
        let et = sbm_tt::TruthTable::var(3, 2);
        assert_eq!(f, sel.ite(&tt, &et));
    }

    #[test]
    fn cuts_are_k_feasible() {
        let mut aig = Aig::new();
        let inputs: Vec<_> = (0..8).map(|_| aig.add_input()).collect();
        let f = aig.xor_many(&inputs);
        aig.add_output(f);
        let k = 4;
        let cuts = enumerate_cuts(&aig, CutOptions { k, max_cuts: 6 });
        for (_, list) in cuts {
            for c in list {
                assert!(c.size() <= k);
                // Leaves sorted strictly ascending.
                assert!(c.leaves().windows(2).all(|w| w[0] < w[1]));
            }
        }
    }
}
