//! Bit-parallel simulation.
//!
//! Random simulation provides cheap functional *filters*: two nodes whose
//! random signatures differ are certainly not equivalent, so expensive
//! reasoning (BDD or SAT) is only spent on candidate pairs that survive
//! simulation — the "functional filtering" the paper credits for speeding up
//! candidate selection (Section III-B). Exhaustive window simulation
//! produces exact truth tables for windows with few leaves.

use std::collections::HashMap;

use sbm_tt::TruthTable;

use crate::graph::Aig;
use crate::lit::{Lit, NodeId};

/// Bit-parallel signatures of every node under a batch of input patterns.
///
/// Stored node-major: `words_per_node` consecutive `u64` words per node, each
/// bit one input pattern.
///
/// # Example
///
/// ```
/// use sbm_aig::{Aig, sim::Signatures};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let f = aig.and(a, b);
/// aig.add_output(f);
/// let sig = Signatures::random(&aig, 4, 0xDEADBEEF);
/// // f's signature is the AND of the input signatures.
/// for w in 0..4 {
///     assert_eq!(
///         sig.lit_word(f, w),
///         sig.lit_word(a, w) & sig.lit_word(b, w),
///     );
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Signatures {
    words_per_node: usize,
    values: Vec<u64>,
}

/// A small deterministic xorshift64* generator so the library core does not
/// depend on an RNG crate.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F491_4F6CDD1D)
}

impl Signatures {
    /// Simulates the network under `words_per_node * 64` uniformly random
    /// input patterns derived from `seed`.
    pub fn random(aig: &Aig, words_per_node: usize, seed: u64) -> Self {
        let mut state = seed | 1;
        let inputs: Vec<Vec<u64>> = (0..aig.num_inputs())
            .map(|_| {
                (0..words_per_node)
                    .map(|_| xorshift64(&mut state))
                    .collect()
            })
            .collect();
        Self::with_input_words(aig, &inputs)
    }

    /// Simulates the network with explicit per-input pattern words.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != aig.num_inputs()` or the rows have unequal
    /// lengths.
    pub fn with_input_words(aig: &Aig, inputs: &[Vec<u64>]) -> Self {
        assert_eq!(inputs.len(), aig.num_inputs());
        let words_per_node = inputs.first().map_or(1, Vec::len);
        assert!(inputs.iter().all(|v| v.len() == words_per_node));
        let mut values = vec![0u64; aig.num_nodes() * words_per_node];
        for (i, node) in aig.inputs().iter().enumerate() {
            let base = node.index() * words_per_node;
            values[base..base + words_per_node].copy_from_slice(&inputs[i]);
        }
        for id in aig.topo_order() {
            let (a, b) = aig.fanins(id);
            let base = id.index() * words_per_node;
            for w in 0..words_per_node {
                let va = values[a.node().index() * words_per_node + w]
                    ^ if a.is_complemented() { u64::MAX } else { 0 };
                let vb = values[b.node().index() * words_per_node + w]
                    ^ if b.is_complemented() { u64::MAX } else { 0 };
                values[base + w] = va & vb;
            }
        }
        Signatures {
            words_per_node,
            values,
        }
    }

    /// Number of 64-bit words per node.
    pub fn words_per_node(&self) -> usize {
        self.words_per_node
    }

    /// Signature word `w` of node `id` (positive phase).
    ///
    /// # Panics
    ///
    /// Panics if `w >= words_per_node`.
    pub fn node_word(&self, id: NodeId, w: usize) -> u64 {
        assert!(w < self.words_per_node);
        self.values[id.index() * self.words_per_node + w]
    }

    /// Signature word `w` of a literal (complement applied).
    pub fn lit_word(&self, lit: Lit, w: usize) -> u64 {
        let v = self.node_word(lit.node(), w);
        if lit.is_complemented() {
            !v
        } else {
            v
        }
    }

    /// Whether two literals have identical signatures (a *necessary*
    /// condition for functional equivalence).
    pub fn maybe_equal(&self, a: Lit, b: Lit) -> bool {
        (0..self.words_per_node).all(|w| self.lit_word(a, w) == self.lit_word(b, w))
    }

    /// A 64-bit hash of a literal's signature, canonicalized so that a
    /// literal and its complement map to related buckets. Used to bucket
    /// candidate-equivalent nodes in SAT sweeping.
    pub fn hash(&self, lit: Lit) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for w in 0..self.words_per_node {
            h = (h ^ self.lit_word(lit, w)).wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Computes the exact truth table of every node in the cone of `roots`
/// (stopping at `leaves`) as a function of the leaves, by exhaustive
/// simulation.
///
/// The leaf ordering defines the variable ordering of the tables (leaf `i`
/// is variable `i`). Constants are handled; nodes outside the cone do not
/// appear in the result.
///
/// # Panics
///
/// Panics if `leaves.len() > sbm_tt::MAX_VARS`.
pub fn window_truth_tables(
    aig: &Aig,
    roots: &[NodeId],
    leaves: &[NodeId],
) -> HashMap<NodeId, TruthTable> {
    let n = leaves.len();
    assert!(
        n <= sbm_tt::MAX_VARS,
        "window has too many leaves for truth tables"
    );
    let mut tables: HashMap<NodeId, TruthTable> = HashMap::new();
    tables.insert(NodeId::CONST, TruthTable::zero(n));
    for (i, &leaf) in leaves.iter().enumerate() {
        tables.insert(leaf, TruthTable::var(n, i));
    }
    // Topologically order the cone nodes.
    let cone = aig.cone(roots, leaves);
    let cone_set: std::collections::HashSet<NodeId> = cone.iter().copied().collect();
    let order = aig.topo_order();
    for id in order {
        if !cone_set.contains(&id) || tables.contains_key(&id) {
            continue;
        }
        let (a, b) = aig.fanins(id);
        let ta = match tables.get(&a.node()) {
            Some(t) => {
                if a.is_complemented() {
                    !t
                } else {
                    t.clone()
                }
            }
            // Fanin outside the window closure (shouldn't happen if leaves
            // form a proper cut) — skip the node.
            None => continue,
        };
        let tb = match tables.get(&b.node()) {
            Some(t) => {
                if b.is_complemented() {
                    !t
                } else {
                    t.clone()
                }
            }
            None => continue,
        };
        tables.insert(id, &ta & &tb);
    }
    tables
}

/// Truth table of a literal given the node tables from
/// [`window_truth_tables`]. Returns `None` if the node is outside the
/// window.
pub fn lit_truth_table(tables: &HashMap<NodeId, TruthTable>, lit: Lit) -> Option<TruthTable> {
    tables
        .get(&lit.node())
        .map(|t| if lit.is_complemented() { !t } else { t.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> (Aig, Lit, Lit, Lit, Lit) {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let f = aig.maj3(a, b, c);
        aig.add_output(f);
        (aig, a, b, c, f)
    }

    #[test]
    fn random_sim_matches_eval() {
        let (aig, _, _, _, f) = sample_aig();
        let sig = Signatures::random(&aig, 2, 42);
        // Check the first 64 patterns against scalar evaluation.
        for bit in 0..64 {
            let assignment: Vec<bool> = (0..3)
                .map(|i| (sig.node_word(aig.inputs()[i], 0) >> bit) & 1 == 1)
                .collect();
            let expected = aig.eval(&assignment)[0];
            let got = (sig.lit_word(f, 0) >> bit) & 1 == 1;
            assert_eq!(got, expected, "pattern {bit}");
        }
    }

    #[test]
    fn maybe_equal_filters() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.and(a, b);
        let y = aig.and(b, a); // strashed: same node
        let z = aig.or(a, b);
        aig.add_output(x);
        aig.add_output(z);
        let sig = Signatures::random(&aig, 4, 7);
        assert!(sig.maybe_equal(x, y));
        assert!(!sig.maybe_equal(x, z));
        assert!(!sig.maybe_equal(x, !x));
        assert_eq!(sig.hash(x), sig.hash(y));
    }

    #[test]
    fn window_tables_exact() {
        let (aig, a, b, c, f) = sample_aig();
        let leaves = vec![a.node(), b.node(), c.node()];
        let tables = window_truth_tables(&aig, &[f.node()], &leaves);
        let tf = lit_truth_table(&tables, f).unwrap();
        // Majority of three has 4 ON minterms.
        assert_eq!(tf.count_ones(), 4);
        for m in 0..8usize {
            let assignment = [(m & 1) == 1, (m >> 1) & 1 == 1, (m >> 2) & 1 == 1];
            assert_eq!(tf.bit(m), aig.eval(&assignment)[0]);
        }
    }

    #[test]
    fn window_tables_internal_leaves() {
        // Use an internal node as a window leaf.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let f = aig.xor(ab, c);
        aig.add_output(f);
        let leaves = vec![ab.node(), c.node()];
        let tables = window_truth_tables(&aig, &[f.node()], &leaves);
        let tf = lit_truth_table(&tables, f).unwrap();
        // As a function of (ab, c): XOR.
        assert_eq!(tf, {
            let x = sbm_tt::TruthTable::var(2, 0);
            let y = sbm_tt::TruthTable::var(2, 1);
            &x ^ &y
        });
    }
}
