// Test code: a panic IS the failure report (clippy.toml only relaxes
// unwrap/expect inside #[test] fns, not test-file helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Property tests: random AIGs must survive cleanup, AIGER round-trips,
//! partitioning and simulation with their function intact.

use proptest::prelude::*;
use sbm_aig::window::{partition, PartitionOptions};
use sbm_aig::{aiger, Aig, Lit};

/// A recipe for building a random DAG: each step combines two previous
/// signals (inputs or earlier gates) with a random op and random
/// complements.
#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, usize, usize, bool, bool)>,
    out_step: usize,
    out_neg: bool,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (2usize..=6, 1usize..=30).prop_flat_map(|(num_inputs, num_steps)| {
        let step = (
            0u8..3,
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            any::<bool>(),
        );
        (
            proptest::collection::vec(step, num_steps),
            any::<u32>(),
            any::<bool>(),
        )
            .prop_map(move |(raw, out_raw, out_neg)| {
                let steps = raw
                    .iter()
                    .enumerate()
                    .map(|(i, &(op, a, b, na, nb))| {
                        let pool = num_inputs + i;
                        (op, a as usize % pool, b as usize % pool, na, nb)
                    })
                    .collect::<Vec<_>>();
                let out_step = out_raw as usize % (num_inputs + steps.len());
                Recipe {
                    num_inputs,
                    steps,
                    out_step,
                    out_neg,
                }
            })
    })
}

fn build(recipe: &Recipe) -> Aig {
    let mut aig = Aig::new();
    let mut signals: Vec<Lit> = (0..recipe.num_inputs).map(|_| aig.add_input()).collect();
    for &(op, a, b, na, nb) in &recipe.steps {
        let x = signals[a].complement_if(na);
        let y = signals[b].complement_if(nb);
        let s = match op {
            0 => aig.and(x, y),
            1 => aig.or(x, y),
            _ => aig.xor(x, y),
        };
        signals.push(s);
    }
    let out = signals[recipe.out_step].complement_if(recipe.out_neg);
    aig.add_output(out);
    aig
}

fn all_outputs(aig: &Aig) -> Vec<Vec<bool>> {
    let n = aig.num_inputs();
    (0..1usize << n)
        .map(|m| {
            let assignment: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            aig.eval(&assignment)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cleanup_preserves_function(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let clean = aig.cleanup();
        prop_assert_eq!(all_outputs(&aig), all_outputs(&clean));
        prop_assert!(clean.num_nodes() <= aig.num_nodes());
    }

    #[test]
    fn aiger_round_trip(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let text = aiger::write(&aig);
        let back = aiger::parse(&text).expect("own output must parse");
        prop_assert_eq!(all_outputs(&aig), all_outputs(&back));
    }

    #[test]
    fn signatures_match_eval(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let sig = sbm_aig::sim::Signatures::random(&aig, 1, 99);
        let out = aig.outputs()[0];
        for bit in 0..64 {
            let assignment: Vec<bool> = (0..aig.num_inputs())
                .map(|i| (sig.node_word(aig.inputs()[i], 0) >> bit) & 1 == 1)
                .collect();
            let expected = aig.eval(&assignment)[0];
            prop_assert_eq!((sig.lit_word(out, 0) >> bit) & 1 == 1, expected);
        }
    }

    #[test]
    fn partitions_cover_all_live_nodes(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let opts = PartitionOptions { max_nodes: 8, max_inputs: 6, max_levels: 4 };
        let parts = partition(&aig, &opts);
        let mut covered = std::collections::HashSet::new();
        for p in &parts {
            prop_assert!(p.size() <= opts.max_nodes);
            for &n in &p.nodes {
                prop_assert!(covered.insert(n), "duplicate node across partitions");
            }
        }
        prop_assert_eq!(covered.len(), aig.num_ands());
    }

    #[test]
    fn ascii_parser_never_panics_on_mutated_documents(
        recipe in arb_recipe(),
        mutations in proptest::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        // Start from a valid document, then corrupt random bytes. The
        // parser must return Ok or a typed error — never panic and never
        // allocate unboundedly (the test harness would OOM).
        let mut doc = aiger::write(&build(&recipe)).into_bytes();
        for (pos, val) in mutations {
            let idx = pos as usize % doc.len();
            doc[idx] = val;
        }
        if let Ok(text) = std::str::from_utf8(&doc) {
            let _ = aiger::parse(text);
        }
    }

    #[test]
    fn binary_parser_never_panics_on_mutated_documents(
        recipe in arb_recipe(),
        mutations in proptest::collection::vec((any::<u32>(), any::<u8>()), 1..8),
        cut in any::<u32>(),
    ) {
        let mut doc = aiger::write_binary(&build(&recipe));
        for (pos, val) in mutations {
            let idx = pos as usize % doc.len();
            doc[idx] = val;
        }
        // Also exercise truncation at an arbitrary point.
        doc.truncate(cut as usize % (doc.len() + 1));
        let _ = aiger::parse_binary(&doc);
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(
        doc in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = aiger::parse_binary(&doc);
        if let Ok(text) = std::str::from_utf8(&doc) {
            let _ = aiger::parse(text);
        }
    }

    #[test]
    fn replace_with_equivalent_preserves_function(recipe in arb_recipe()) {
        let mut aig = build(&recipe);
        // Find any AND node and replace it with a freshly rebuilt equivalent
        // (resynthesized from its own fanins); function must be unchanged.
        let order = aig.topo_order();
        if let Some(&id) = order.last() {
            let before = all_outputs(&aig);
            let (a, b) = aig.fanins(id);
            let rebuilt = aig.and(a, b); // strashes to the same node
            prop_assert_eq!(rebuilt.node(), id);
            // Replace with AND(b, a): identical function.
            let eq = aig.and(b, a);
            aig.replace(id, eq).unwrap();
            prop_assert_eq!(all_outputs(&aig), before);
        }
    }
}
