//! Top-level optimization scripts.
//!
//! [`resyn2rs`] reproduces the composition of ABC's popular `resyn2rs`
//! script ("one of the most popular AIG scripts in academia", Section
//! IV-A) from this repository's own moves — it is the baseline the
//! paper's results are measured against. [`sbm_script`] is the paper's
//! Boolean resynthesis script (Section V-A): baseline AIG optimization +
//! the four SBM engines + SAT sweeping and redundancy removal, iterated
//! twice with different efforts.

use sbm_aig::Aig;
use sbm_sat::redundancy::{remove_redundancies, RedundancyOptions};
use sbm_sat::sweep::{sweep, SweepOptions};

use crate::balance::balance;
use crate::bdiff::{boolean_difference_resub, BdiffOptions};
use crate::gradient::{gradient_optimize, GradientOptions};
use crate::hetero::{hetero_eliminate_kernel, HeteroOptions};
use crate::mspf::{mspf_optimize, MspfOptions};
use crate::refactor::{refactor, RefactorOptions};
use crate::resub::{resub, ResubOptions};
use crate::rewrite::{rewrite, RewriteOptions};

/// Applies a transformation, keeping the result only when it does not
/// increase node count (every SBM move has gain ≥ 0, Section IV-A).
fn guarded(aig: Aig, f: impl FnOnce(&Aig) -> Aig) -> Aig {
    let candidate = f(&aig);
    if candidate.num_ands() <= aig.num_ands() {
        candidate
    } else {
        aig
    }
}

/// The `resyn2rs`-style baseline script: balance, resub, rewrite and
/// refactor passes with growing resubstitution windows, mirroring ABC's
/// `b; rs; rw; rs -K 6; rf; rs -K 8; b; rs -K 10; rw; rs -K 12; rf; b`.
pub fn resyn2rs(aig: &Aig) -> Aig {
    let mut cur = aig.cleanup();
    let resub_opts = |max_inputs: usize| ResubOptions {
        partition: sbm_aig::window::PartitionOptions {
            max_nodes: 200,
            max_inputs,
            max_levels: 10,
        },
        ..Default::default()
    };
    cur = guarded(cur, balance);
    cur = guarded(cur, |a| resub(a, &resub_opts(6)).0);
    cur = guarded(cur, |a| rewrite(a, &RewriteOptions::default()).0);
    cur = guarded(cur, |a| resub(a, &resub_opts(8)).0);
    cur = guarded(cur, |a| refactor(a, &RefactorOptions::default()).0);
    cur = guarded(cur, |a| resub(a, &resub_opts(10)).0);
    cur = guarded(cur, balance);
    cur = guarded(cur, |a| resub(a, &resub_opts(12)).0);
    cur = guarded(cur, |a| rewrite(a, &RewriteOptions::default()).0);
    cur = guarded(cur, |a| {
        refactor(
            a,
            &RefactorOptions {
                max_support: 14,
                ..Default::default()
            },
        )
        .0
    });
    cur = guarded(cur, balance);
    cur.cleanup()
}

/// Runs [`resyn2rs`] until no further improvement — the reference
/// methodology the paper uses for "the smallest known AIG" baselines
/// (Table II footnote: "running resyn2rs until no improvement is seen").
pub fn resyn2rs_fixpoint(aig: &Aig, max_rounds: usize) -> Aig {
    let mut cur = aig.cleanup();
    for _ in 0..max_rounds {
        let next = resyn2rs(&cur);
        if next.num_ands() >= cur.num_ands() {
            return cur;
        }
        cur = next;
    }
    cur
}

/// Options for the full SBM script.
#[derive(Debug, Clone)]
pub struct SbmOptions {
    /// Gradient-engine options for the AIG-optimization step.
    pub gradient: GradientOptions,
    /// Boolean-difference options.
    pub bdiff: BdiffOptions,
    /// Heterogeneous eliminate/kernel options.
    pub hetero: HeteroOptions,
    /// MSPF options.
    pub mspf: MspfOptions,
    /// Conflict budget of the SAT steps.
    pub sat_budget: Option<u64>,
    /// Script iterations (the paper iterates the flow twice, with
    /// different efforts).
    pub iterations: usize,
}

impl Default for SbmOptions {
    fn default() -> Self {
        SbmOptions {
            gradient: GradientOptions::default(),
            bdiff: BdiffOptions::default(),
            hetero: HeteroOptions::default(),
            mspf: MspfOptions::default(),
            sat_budget: Some(2_000),
            iterations: 2,
        }
    }
}

/// The paper's Boolean resynthesis script (Section V-A):
///
/// 1. AIG optimization (state-of-the-art script + gradient engine),
/// 2. heterogeneous elimination for kernel extraction,
/// 3. enhanced MSPF with BDDs,
/// 4. collapse & Boolean decomposition (refactoring on reconvergent
///    MFFCs),
/// 5. Boolean-difference-based optimization,
/// 6. SAT-based sweeping and redundancy removal,
///
/// iterated (twice by default) with the network re-strashed into an AIG
/// between steps.
pub fn sbm_script(aig: &Aig, options: &SbmOptions) -> Aig {
    let mut cur = aig.cleanup();
    for iteration in 0..options.iterations {
        let high_effort = iteration > 0;
        // 1. AIG optimization: baseline script, then the gradient engine.
        cur = guarded(cur, resyn2rs);
        cur = guarded(cur, |a| gradient_optimize(a, &options.gradient).0);
        // 2. Heterogeneous elimination for kerneling.
        cur = guarded(cur, |a| hetero_eliminate_kernel(a, &options.hetero).0);
        // 3. Enhanced MSPF computation.
        cur = guarded(cur, |a| mspf_optimize(a, &options.mspf).0);
        // 4. Collapse & Boolean decomposition on reconvergent MFFCs.
        cur = guarded(cur, |a| {
            refactor(
                a,
                &RefactorOptions {
                    max_support: if high_effort { 14 } else { 12 },
                    min_mffc: 2,
                    allow_zero_gain: high_effort,
                },
            )
            .0
        });
        // 5. Boolean-difference-based optimization: unveils hard-to-find
        // optimizations and escapes local minima.
        cur = guarded(cur, |a| boolean_difference_resub(a, &options.bdiff).0);
        // 6. SAT sweeping and redundancy removal.
        cur = guarded(cur, |a| {
            let mut work = a.cleanup();
            sweep(
                &mut work,
                &SweepOptions {
                    budget: options.sat_budget,
                    ..Default::default()
                },
            );
            work.cleanup()
        });
        cur = guarded(cur, |a| {
            remove_redundancies(
                a,
                &RedundancyOptions {
                    budget: options.sat_budget,
                    max_checks: if high_effort { 2_000 } else { 500 },
                },
            )
            .0
        });
    }
    cur.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_sat::equiv::{check_equivalence, EquivResult};

    fn benchmark_aig() -> Aig {
        // A small circuit with redundancy, imbalance, sharing and
        // reconvergence — every engine has something to find.
        let mut aig = Aig::new();
        let x: Vec<_> = (0..6).map(|_| aig.add_input()).collect();
        let t1 = aig.and(x[0], x[1]);
        let t2 = aig.and(x[0], !x[1]);
        let r = aig.or(t1, t2); // == x0
        let mut chain = r;
        for &xi in &x[2..] {
            chain = aig.and(chain, xi);
        }
        let dup_a = aig.and(x[2], x[3]);
        let dup_b = aig.and(x[4], x[5]);
        let dup = aig.and(dup_a, dup_b);
        let dup2 = aig.and(dup, x[0]); // == chain
        let f = aig.xor(chain, dup2); // == 0
        let g = aig.or(chain, dup2);
        aig.add_output(f);
        aig.add_output(g);
        aig
    }

    #[test]
    fn resyn2rs_improves_and_preserves() {
        let aig = benchmark_aig();
        let out = resyn2rs(&aig);
        assert!(out.num_ands() < aig.num_ands());
        assert_eq!(check_equivalence(&aig, &out, None), EquivResult::Equivalent);
    }

    #[test]
    fn sbm_script_at_least_as_good_as_baseline() {
        let aig = benchmark_aig();
        let baseline = resyn2rs_fixpoint(&aig, 8);
        let sbm = sbm_script(&aig, &SbmOptions::default());
        assert!(sbm.num_ands() <= baseline.num_ands());
        assert_eq!(check_equivalence(&aig, &sbm, None), EquivResult::Equivalent);
    }

    #[test]
    fn fixpoint_terminates() {
        let aig = benchmark_aig();
        let out = resyn2rs_fixpoint(&aig, 50);
        assert!(out.num_ands() <= aig.num_ands());
        assert_eq!(check_equivalence(&aig, &out, None), EquivResult::Equivalent);
    }
}
