//! Top-level optimization scripts.
//!
//! [`resyn2rs`] reproduces the composition of ABC's popular `resyn2rs`
//! script ("one of the most popular AIG scripts in academia", Section
//! IV-A) from this repository's own moves — it is the baseline the
//! paper's results are measured against. [`sbm_script`] is the paper's
//! Boolean resynthesis script (Section V-A): baseline AIG optimization +
//! the four SBM engines + SAT sweeping and redundancy removal, iterated
//! twice with different efforts.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

use sbm_aig::Aig;
use sbm_budget::Budget;
use sbm_check::{check_aig, sim_spot_check, CheckCode, CheckLevel, FaultPlan};
use sbm_journal::{
    read_aig_snapshot, write_aig_snapshot, Fnv64, JournalError, ResumeSummary, SCRIPT_STATE_FILE,
};
use sbm_sat::redundancy::{remove_redundancies, RedundancyOptions};
use sbm_sat::sweep::{sweep, sweep_collect, SweepOptions};
use sbm_sim::SigService;

use crate::balance::balance;
use crate::bdiff::{boolean_difference_resub_budgeted, BdiffOptions};
use crate::engine::{
    self, run_checked, CheckViolation, Engine, EngineCtx, Optimized, SPOT_CHECK_SEED,
};
use crate::gradient::{gradient_optimize_filtered, GradientOptions};
use crate::hetero::{hetero_eliminate_kernel_impl, HeteroOptions};
use crate::mspf::{mspf_optimize_budgeted, MspfOptions};
use crate::pipeline::{pass_options, Pipeline, PipelineOptions, PipelineReport};
use crate::refactor::{refactor_impl, RefactorOptions};
use crate::resub::{resub_impl, ResubOptions};
use crate::rewrite::{rewrite_impl, RewriteOptions};

/// Banks the calling thread's drained BDD/SAT/sim tallies into `report`.
/// Called after every script step: a later step's attribution boundary
/// (the pipeline's per-window entry drain) discards whatever the
/// thread-local accumulators hold, so serial-path work (gradient moves,
/// MSPF/bdiff at one thread, SAT sweeping and redundancy removal) must
/// be surfaced into the report before the next step begins.
///
/// A step boundary is also the one *true* serial point of the run — every
/// pipeline worker has joined — so this is where the simulation service
/// commits its pending counterexamples. Committing anywhere finer-grained
/// (e.g. inside a nested pass) would expose patterns to concurrently
/// running windows and make results depend on scheduling.
///
/// In canonical-steps mode the pool is **reset** instead of committed:
/// carried-over counterexamples are run state a snapshot does not
/// capture, and under finite SAT/move budgets they change which exact
/// checks run and therefore the result — a resumed run would diverge
/// from the uninterrupted one. Resetting keeps every step a pure
/// function of its input network, which is what makes park-and-resume
/// byte-identical to a straight run.
fn bank_tallies(report: &mut PipelineReport, ctx: &StepCtx) {
    report.bdd.merge(&crate::bdd_bridge::drain_bdd_tally());
    report.sat.merge(&sbm_sat::drain_sat_tally());
    if let Some(svc) = &ctx.sim {
        if ctx.canonical {
            svc.reset();
        } else {
            svc.commit_pending();
        }
    }
    report.sim.merge(&sbm_sim::drain_sim_tally());
}

/// Applies a transformation, keeping the result only when it does not
/// increase node count (every SBM move has gain ≥ 0, Section IV-A).
fn guarded(aig: Aig, f: impl FnOnce(&Aig) -> Aig) -> Aig {
    let candidate = f(&aig);
    if candidate.num_ands() <= aig.num_ands() {
        candidate
    } else {
        aig
    }
}

/// [`guarded`] with `Paranoid` invariant bracketing for the script's
/// non-windowed phases (balance, gradient, hetero, SAT sweep/redundancy,
/// which are not [`Engine`]s). Below `Paranoid` this is exactly
/// [`guarded`]; at `Paranoid` the input must pass [`check_aig`] (or the
/// phase is skipped) and the candidate must pass [`check_aig`] plus the
/// 64-pattern [`sim_spot_check`] (or it is discarded). Violations are
/// pushed into `report.check_violations` under `name`.
fn checked_guarded(
    aig: Aig,
    check: CheckLevel,
    report: &mut PipelineReport,
    name: &str,
    f: impl FnOnce(&Aig) -> Aig,
) -> Aig {
    if !check.per_engine() {
        return guarded(aig, f);
    }
    if let Err(error) = check_aig(&aig) {
        report.check_violations.push(CheckViolation {
            engine: name.to_string(),
            stage: "pre",
            window: None,
            error,
        });
        return aig;
    }
    let candidate = f(&aig);
    let error =
        check_aig(&candidate).and_then(|()| sim_spot_check(&aig, &candidate, SPOT_CHECK_SEED));
    match error {
        Ok(()) if candidate.num_ands() <= aig.num_ands() => candidate,
        Ok(()) => aig,
        Err(error) => {
            let stage = if error.code == CheckCode::SimMismatch {
                "sim"
            } else {
                "post"
            };
            report.check_violations.push(CheckViolation {
                engine: name.to_string(),
                stage,
                window: None,
                error,
            });
            aig
        }
    }
}

/// Shared execution context of one script run: the wall-clock budget and
/// the fault-injection plan every step inherits, plus the optional
/// step-grained checkpoint state.
#[derive(Debug, Clone, Default)]
struct StepCtx {
    budget: Budget,
    fault_plan: Option<FaultPlan>,
    ckpt: Option<ScriptCkpt>,
    /// Shared simulation-signature service of the run (`None` when
    /// [`SbmOptions::sim_filter`] is off). Clones of the handle share one
    /// pattern pool, so every step refines the same signatures.
    sim: Option<SigService>,
    /// [`SbmOptions::canonical_steps`]: every step's output is cleaned
    /// before the next step sees it, so the live network always equals
    /// what a snapshot of it would reload as.
    canonical: bool,
}

/// Step-grained checkpoint state of one script run. Scripts are a fixed
/// sequence of network-to-network steps, so the persistent unit is "the
/// cleaned network after step N": a snapshot with `seq = N` means the
/// first N steps completed cleanly and resume may skip them.
#[derive(Debug, Clone)]
struct ScriptCkpt {
    dir: PathBuf,
    every: usize,
    fingerprint: u64,
    /// Steps completed before the interruption (from the loaded
    /// snapshot's `seq`); a fresh run starts at 0.
    resume_from: u64,
    /// Deterministic index of the step most recently entered (skipped
    /// steps count too, so numbering matches across runs).
    seen: Cell<u64>,
    /// False once a step ended with the budget expired: its result is
    /// (possibly) degraded by timing, so neither it nor anything after
    /// it is recorded — the previous snapshot stands and resume re-runs
    /// from there.
    clean: Cell<bool>,
    /// First snapshot-write failure; checkpointing is best-effort.
    error: RefCell<Option<String>>,
}

impl ScriptCkpt {
    /// Fresh-run setup: create the directory and persist the cleaned
    /// input as the step-0 snapshot.
    fn create(
        dir: &Path,
        fingerprint: u64,
        every: usize,
        cur: &Aig,
    ) -> Result<ScriptCkpt, JournalError> {
        std::fs::create_dir_all(dir).map_err(|e| JournalError::Io {
            op: "create_dir",
            path: dir.to_path_buf(),
            detail: e.to_string(),
        })?;
        let ck = ScriptCkpt {
            dir: dir.to_path_buf(),
            every,
            fingerprint,
            resume_from: 0,
            seen: Cell::new(0),
            clean: Cell::new(true),
            error: RefCell::new(None),
        };
        write_aig_snapshot(&ck.dir.join(SCRIPT_STATE_FILE), cur, fingerprint, 0)?;
        Ok(ck)
    }

    /// Persists `net` (cleaned) as the state after `seq` completed steps.
    /// Best-effort: the first failure is remembered and surfaced as
    /// [`PipelineReport::checkpoint_error`], later writes are skipped.
    fn save(&self, net: &Aig, seq: u64) {
        let mut error = self.error.borrow_mut();
        if error.is_some() {
            return;
        }
        if let Err(e) = write_aig_snapshot(
            &self.dir.join(SCRIPT_STATE_FILE),
            net,
            self.fingerprint,
            seq,
        ) {
            *error = Some(e.to_string());
        }
    }
}

/// Runs one script step under the optional checkpoint regime: steps
/// already covered by the loaded snapshot are skipped (their effect is
/// baked into the starting network), freshly completed steps are
/// persisted on the configured cadence. Without checkpointing this is
/// exactly `f(cur)`.
fn checkpointed(cur: Aig, ctx: &StepCtx, f: impl FnOnce(Aig) -> Aig) -> Aig {
    let Some(ck) = &ctx.ckpt else {
        let next = f(cur);
        return if ctx.canonical { next.cleanup() } else { next };
    };
    let step_no = ck.seen.get() + 1;
    ck.seen.set(step_no);
    if step_no <= ck.resume_from {
        return cur;
    }
    let next = f(cur);
    // Canonical mode: continue from exactly the network a snapshot would
    // reload as, so a park-and-resume replays this run bit for bit.
    let next = if ctx.canonical { next.cleanup() } else { next };
    if ck.clean.get() {
        if ctx.budget.check().is_err() {
            // The budget expired somewhere inside this step; its output
            // may be a timing-degraded network. Keep it for this run's
            // result but never record it — resume re-runs from the last
            // clean snapshot.
            ck.clean.set(false);
        } else if (step_no as usize).is_multiple_of(ck.every.max(1)) {
            if ctx.canonical {
                ck.save(&next, step_no);
            } else {
                ck.save(&next.cleanup(), step_no);
            }
        }
    }
    next
}

/// The `resyn2rs`-style baseline script: balance, resub, rewrite and
/// refactor passes with growing resubstitution windows, mirroring ABC's
/// `b; rs; rw; rs -K 6; rf; rs -K 8; b; rs -K 10; rw; rs -K 12; rf; b`.
pub fn resyn2rs(aig: &Aig) -> Aig {
    resyn2rs_threaded(
        aig,
        1,
        CheckLevel::Off,
        &StepCtx::default(),
        &mut PipelineReport::default(),
    )
}

fn resub_opts(max_inputs: usize) -> ResubOptions {
    ResubOptions {
        partition: sbm_aig::window::PartitionOptions {
            max_nodes: 200,
            max_inputs,
            max_levels: 10,
        },
        ..Default::default()
    }
}

/// One engine step of a threaded script: serial call at one thread, fanned
/// out through the parallel partition executor otherwise. The pipeline's
/// report (including any check violations) is accumulated into `report`.
/// At serial `Paranoid` the engine runs through [`run_checked`] instead of
/// the bare serial closure — the two compute the same transformation, the
/// wrapper just brackets it with invariant checks.
///
/// A configured fault plan or an active simulation service forces the
/// pipeline path even at one thread: injection hooks live in the
/// per-window executor, and the pipeline is what hands the service to
/// engines (candidate filtering) and the SAT gate (witness harvesting).
fn step(
    aig: Aig,
    threads: usize,
    check: CheckLevel,
    ctx: &StepCtx,
    report: &mut PipelineReport,
    engine: impl Engine + 'static,
    serial: impl FnOnce(&Aig) -> Aig,
) -> Aig {
    if threads > 1 || ctx.fault_plan.is_some() || ctx.sim.is_some() {
        let options = PipelineOptions {
            num_threads: threads,
            check_level: check,
            budget: ctx.budget.clone(),
            fault_plan: ctx.fault_plan,
            sim: ctx.sim.clone(),
            ..pass_options()
        };
        let run = Pipeline::new(options).with_engine(engine).run(&aig);
        report.merge(&run.stats);
        guarded(aig, |_| run.aig)
    } else if check.per_engine() {
        let ectx = EngineCtx::new(&ctx.budget).with_check_level(check);
        let (result, violations) = run_checked(&engine, &aig, &ectx, None);
        report.check_violations.extend(violations);
        guarded(aig, |_| result.aig)
    } else {
        guarded(aig, serial)
    }
}

/// [`resyn2rs`] with its window-based passes fanned out over
/// `num_threads` workers; pipeline statistics accumulate into `report`.
fn resyn2rs_threaded(
    aig: &Aig,
    num_threads: usize,
    check: CheckLevel,
    ctx: &StepCtx,
    report: &mut PipelineReport,
) -> Aig {
    let mut cur = aig.cleanup();
    let rs = |k: usize| engine::Resub {
        options: resub_opts(k),
    };
    cur = checked_guarded(cur, check, report, "balance", balance);
    cur = step(cur, num_threads, check, ctx, report, rs(6), |a| {
        resub_impl(a, &resub_opts(6)).0
    });
    cur = step(
        cur,
        num_threads,
        check,
        ctx,
        report,
        engine::Rewrite::default(),
        |a| rewrite_impl(a, &RewriteOptions::default()).0,
    );
    cur = step(cur, num_threads, check, ctx, report, rs(8), |a| {
        resub_impl(a, &resub_opts(8)).0
    });
    cur = step(
        cur,
        num_threads,
        check,
        ctx,
        report,
        engine::Refactor::default(),
        |a| refactor_impl(a, &RefactorOptions::default()).0,
    );
    cur = step(cur, num_threads, check, ctx, report, rs(10), |a| {
        resub_impl(a, &resub_opts(10)).0
    });
    cur = checked_guarded(cur, check, report, "balance", balance);
    cur = step(cur, num_threads, check, ctx, report, rs(12), |a| {
        resub_impl(a, &resub_opts(12)).0
    });
    cur = step(
        cur,
        num_threads,
        check,
        ctx,
        report,
        engine::Rewrite::default(),
        |a| rewrite_impl(a, &RewriteOptions::default()).0,
    );
    let deep_refactor = RefactorOptions {
        max_support: 14,
        ..Default::default()
    };
    cur = step(
        cur,
        num_threads,
        check,
        ctx,
        report,
        engine::Refactor {
            options: deep_refactor,
        },
        |a| refactor_impl(a, &deep_refactor).0,
    );
    cur = checked_guarded(cur, check, report, "balance", balance);
    cur.cleanup()
}

/// Runs [`resyn2rs`] until no further improvement — the reference
/// methodology the paper uses for "the smallest known AIG" baselines
/// (Table II footnote: "running resyn2rs until no improvement is seen").
pub fn resyn2rs_fixpoint(aig: &Aig, max_rounds: usize) -> Aig {
    let mut cur = aig.cleanup();
    for _ in 0..max_rounds {
        let next = resyn2rs(&cur);
        if next.num_ands() >= cur.num_ands() {
            return cur;
        }
        cur = next;
    }
    cur
}

/// Options for the full SBM script. Construct via [`SbmOptions::builder`]
/// for validation, or fill the fields directly.
#[derive(Debug, Clone)]
pub struct SbmOptions {
    /// Gradient-engine options for the AIG-optimization step.
    pub gradient: GradientOptions,
    /// Boolean-difference options.
    pub bdiff: BdiffOptions,
    /// Heterogeneous eliminate/kernel options.
    pub hetero: HeteroOptions,
    /// MSPF options.
    pub mspf: MspfOptions,
    /// Conflict budget of the SAT steps.
    pub sat_budget: Option<u64>,
    /// Run-wide simulation-signature service (`true`, the default): every
    /// engine filters candidates against shared bit-parallel signatures
    /// before touching a BDD manager or SAT solver, failed equivalence
    /// checks feed their counterexample witnesses back in, and the SAT
    /// sweep's refutation witnesses are harvested too. The filter is a
    /// sound necessary condition: it never rejects a candidate exact
    /// reasoning would accept, so no quality is lost to screening.
    /// Enabling the service also pins the script to the windowed
    /// pipeline schedule at every thread count (that is what makes the
    /// filter counters independent of `num_threads`), so a run differs
    /// from the `false` setting by schedule as well as by work spent —
    /// both are always SAT-verified equivalent to the input.
    pub sim_filter: bool,
    /// Script iterations (the paper iterates the flow twice, with
    /// different efforts).
    pub iterations: usize,
    /// Worker threads for the window-based steps (1 = strictly serial;
    /// the serial code path is preserved exactly at 1).
    pub num_threads: usize,
    /// Invariant-checking level: `Off` (default) adds no work,
    /// `Boundaries` validates the script's input and output networks
    /// plus a 64-pattern simulation spot-check, `Paranoid` additionally
    /// brackets every engine invocation and non-windowed phase.
    /// Violations land in the returned report's `check_violations`.
    pub check_level: CheckLevel,
    /// Wall-clock deadline of the whole run (`None` = unbounded). The
    /// script never aborts at the deadline: engines stop cooperatively,
    /// in-flight windows degrade to their original sub-network, and the
    /// best network found so far is returned.
    pub deadline: Option<Duration>,
    /// Deterministic fault-injection plan for robustness testing
    /// (`None` = no injection, the production default). When set, every
    /// engine step routes through the fault-isolating pipeline executor
    /// even at `num_threads = 1`.
    pub fault_plan: Option<FaultPlan>,
    /// Directory for step-grained crash-safe checkpoints (`None` = off).
    /// When set, the script persists the network after completed steps
    /// and [`sbm_script_resumable`] can pick an interrupted run up from
    /// the last recorded step.
    pub checkpoint_dir: Option<PathBuf>,
    /// Snapshot cadence in script steps: `1` (the default) persists after
    /// every step, larger values amortize the write at the cost of
    /// re-running at most that many steps after a crash.
    pub checkpoint_every: usize,
    /// Canonical step outputs (`false`, the default): when `true`, every
    /// script step's result is cleaned before the next step sees it —
    /// exactly the form snapshots persist — and the simulation service's
    /// counterexample pool is reset at step boundaries (carried patterns
    /// are state no snapshot captures, and under finite budgets they
    /// change results). Each step is then a pure function of its input
    /// network, so a park-and-resume traverses identical intermediate
    /// networks and produces byte-identical results. `sbm-server` turns
    /// this on for every job; one-shot runs keep the historical
    /// (uncleaned, cross-step-refined) behaviour. Changes results, so it
    /// is part of the checkpoint fingerprint.
    pub canonical_steps: bool,
}

impl Default for SbmOptions {
    fn default() -> Self {
        SbmOptions {
            gradient: GradientOptions::default(),
            bdiff: BdiffOptions::default(),
            hetero: HeteroOptions::default(),
            mspf: MspfOptions::default(),
            sat_budget: Some(2_000),
            sim_filter: true,
            iterations: 2,
            num_threads: 1,
            check_level: CheckLevel::Off,
            deadline: None,
            fault_plan: None,
            checkpoint_dir: None,
            checkpoint_every: 1,
            canonical_steps: false,
        }
    }
}

impl SbmOptions {
    /// A validated builder seeded with the defaults.
    pub fn builder() -> SbmOptionsBuilder {
        SbmOptionsBuilder::default()
    }
}

/// Why [`SbmOptionsBuilder::build`] rejected a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptionsError {
    /// `num_threads` must be at least 1.
    ZeroThreads,
    /// `iterations` must be at least 1.
    ZeroIterations,
    /// The gradient engine needs a positive move-cost budget.
    ZeroGradientBudget,
    /// A SAT budget of zero conflicts can prove nothing; use `None` for
    /// unbudgeted solving instead.
    ZeroSatBudget,
    /// The hetero engine needs at least one eliminate threshold.
    EmptyThresholds,
    /// BDD-based engines need a positive node limit and difference size.
    ZeroBddLimit,
    /// A zero deadline cannot make progress; use `None` for unbounded.
    ZeroDeadline,
    /// A checkpoint cadence of zero steps never persists anything; use
    /// `checkpoint_dir: None` to disable checkpointing instead.
    ZeroCheckpointEvery,
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            OptionsError::ZeroThreads => "num_threads must be at least 1",
            OptionsError::ZeroIterations => "iterations must be at least 1",
            OptionsError::ZeroGradientBudget => {
                "the gradient engine needs a positive move-cost budget"
            }
            OptionsError::ZeroSatBudget => {
                "a SAT budget of 0 conflicts can prove nothing (use None for unbudgeted)"
            }
            OptionsError::EmptyThresholds => {
                "the hetero engine needs at least one eliminate threshold"
            }
            OptionsError::ZeroBddLimit => {
                "BDD engines need a positive node limit and difference size"
            }
            OptionsError::ZeroDeadline => {
                "a zero deadline cannot make progress (use None for unbounded)"
            }
            OptionsError::ZeroCheckpointEvery => {
                "a checkpoint cadence of 0 steps never persists anything \
                 (use checkpoint_dir: None to disable checkpointing)"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for OptionsError {}

/// Builder for [`SbmOptions`] that rejects nonsensical configurations.
///
/// ```
/// use sbm_core::script::SbmOptions;
///
/// let options = SbmOptions::builder()
///     .num_threads(4)
///     .bdd_size_limit(10)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(options.num_threads, 4);
/// assert!(SbmOptions::builder().num_threads(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SbmOptionsBuilder {
    options: SbmOptions,
}

impl SbmOptionsBuilder {
    /// Worker threads for the window-based steps.
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.options.num_threads = num_threads;
        self
    }

    /// Script iterations.
    #[must_use]
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.options.iterations = iterations;
        self
    }

    /// Conflict budget of the SAT steps (`None` = unbudgeted).
    #[must_use]
    pub fn sat_budget(mut self, budget: Option<u64>) -> Self {
        self.options.sat_budget = budget;
        self
    }

    /// Enables or disables the run-wide simulation-signature service
    /// (candidate filtering + counterexample harvesting; on by default).
    #[must_use]
    pub fn sim_filter(mut self, sim_filter: bool) -> Self {
        self.options.sim_filter = sim_filter;
        self
    }

    /// Gradient-engine move-cost budget.
    #[must_use]
    pub fn gradient_budget(mut self, budget: u32) -> Self {
        self.options.gradient.budget = budget;
        self
    }

    /// Maximum BDD size of a Boolean difference (the paper's tradeoff
    /// value is 10).
    #[must_use]
    pub fn bdd_size_limit(mut self, size: usize) -> Self {
        self.options.bdiff.max_diff_size = size;
        self
    }

    /// Node limit of the per-window BDD managers (bdiff and MSPF).
    #[must_use]
    pub fn bdd_node_limit(mut self, limit: usize) -> Self {
        self.options.bdiff.bdd_node_limit = limit;
        self.options.mspf.bdd_node_limit = limit;
        self
    }

    /// Eliminate thresholds swept by the hetero engine.
    #[must_use]
    pub fn hetero_thresholds(mut self, thresholds: Vec<i64>) -> Self {
        self.options.hetero.thresholds = thresholds;
        self
    }

    /// Replaces the full gradient-engine options.
    #[must_use]
    pub fn gradient(mut self, gradient: GradientOptions) -> Self {
        self.options.gradient = gradient;
        self
    }

    /// Invariant-checking level of the run (`Off` / `Boundaries` /
    /// `Paranoid`).
    #[must_use]
    pub fn check_level(mut self, check_level: CheckLevel) -> Self {
        self.options.check_level = check_level;
        self
    }

    /// Wall-clock deadline of the run (`None` = unbounded). Must be
    /// positive; the run degrades gracefully when it expires.
    #[must_use]
    pub fn deadline(mut self, deadline: Option<Duration>) -> Self {
        self.options.deadline = deadline;
        self
    }

    /// Deterministic fault-injection plan (`None` = no injection).
    #[must_use]
    pub fn fault_plan(mut self, fault_plan: Option<FaultPlan>) -> Self {
        self.options.fault_plan = fault_plan;
        self
    }

    /// Directory for step-grained crash-safe checkpoints (`None` = off).
    #[must_use]
    pub fn checkpoint_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.options.checkpoint_dir = dir;
        self
    }

    /// Snapshot cadence in script steps (must be at least 1).
    #[must_use]
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.options.checkpoint_every = every;
        self
    }

    /// Canonical step outputs: clean every step's result before the next
    /// step sees it, making park-and-resume byte-identical to a straight
    /// run (see [`SbmOptions::canonical_steps`]).
    #[must_use]
    pub fn canonical_steps(mut self, canonical: bool) -> Self {
        self.options.canonical_steps = canonical;
        self
    }

    /// Validates and produces the options.
    pub fn build(self) -> Result<SbmOptions, OptionsError> {
        let o = self.options;
        if o.num_threads == 0 {
            return Err(OptionsError::ZeroThreads);
        }
        if o.iterations == 0 {
            return Err(OptionsError::ZeroIterations);
        }
        if o.gradient.budget == 0 {
            return Err(OptionsError::ZeroGradientBudget);
        }
        if o.sat_budget == Some(0) {
            return Err(OptionsError::ZeroSatBudget);
        }
        if o.hetero.thresholds.is_empty() {
            return Err(OptionsError::EmptyThresholds);
        }
        if o.bdiff.bdd_node_limit == 0 || o.mspf.bdd_node_limit == 0 || o.bdiff.max_diff_size == 0 {
            return Err(OptionsError::ZeroBddLimit);
        }
        if o.deadline == Some(Duration::ZERO) {
            return Err(OptionsError::ZeroDeadline);
        }
        if o.checkpoint_every == 0 {
            return Err(OptionsError::ZeroCheckpointEvery);
        }
        Ok(o)
    }
}

/// The paper's Boolean resynthesis script (Section V-A):
///
/// 1. AIG optimization (state-of-the-art script + gradient engine),
/// 2. heterogeneous elimination for kernel extraction,
/// 3. enhanced MSPF with BDDs,
/// 4. collapse & Boolean decomposition (refactoring on reconvergent
///    MFFCs),
/// 5. Boolean-difference-based optimization,
/// 6. SAT-based sweeping and redundancy removal,
///
/// iterated (twice by default) with the network re-strashed into an AIG
/// between steps.
///
/// At `num_threads > 1` the window-based steps run on the parallel
/// partition executor ([`crate::pipeline`]); the serial code path is
/// preserved exactly at `num_threads = 1`.
pub fn sbm_script(aig: &Aig, options: &SbmOptions) -> Aig {
    sbm_script_report(aig, options).aig
}

/// [`sbm_script`], also returning the merged [`PipelineReport`] of every
/// engine pass. (With `num_threads = 1` and [`SbmOptions::sim_filter`]
/// off, the window counters are all zero: nothing enters the pipeline.)
/// With [`SbmOptions::checkpoint_dir`] set, the run
/// additionally persists step-grained progress; checkpoint I/O failures
/// are best-effort (reported, never fatal).
pub fn sbm_script_report(aig: &Aig, options: &SbmOptions) -> Optimized<PipelineReport> {
    script_body(aig, options, None, None, PipelineReport::default())
}

/// [`sbm_script_report`] under an externally owned [`Budget`] instead of
/// one derived from [`SbmOptions::deadline`] (which is ignored here).
/// This is the job-server entry point: the caller keeps a handle on the
/// budget, so it can preempt the run cooperatively ([`Budget::cancel`])
/// or bound it with a slice sub-budget ([`Budget::child`]) while the
/// script persists checkpoints as usual — a preempted run is parked, not
/// lost.
pub fn sbm_script_budgeted(
    aig: &Aig,
    options: &SbmOptions,
    budget: &Budget,
) -> Optimized<PipelineReport> {
    script_body(
        aig,
        options,
        Some(budget.clone()),
        None,
        PipelineReport::default(),
    )
}

/// Resumes an interrupted checkpointed script run from
/// [`SbmOptions::checkpoint_dir`]: the last recorded snapshot is
/// validated (CRC + `sbm-check`), the steps it covers are skipped, and
/// the remaining steps run to completion. The options must match the
/// interrupted run's ([`JournalError::ConfigMismatch`] otherwise).
///
/// Falls back cleanly: callers that cannot resume (corrupt or missing
/// checkpoint) typically retry with [`sbm_script_report`], which starts
/// fresh and overwrites the checkpoint.
pub fn sbm_script_resumable(
    aig: &Aig,
    options: &SbmOptions,
) -> Result<Optimized<PipelineReport>, JournalError> {
    sbm_script_resumable_inner(aig, options, None)
}

/// [`sbm_script_resumable`] under an externally owned [`Budget`] (see
/// [`sbm_script_budgeted`]); [`SbmOptions::deadline`] is ignored.
pub fn sbm_script_resumable_budgeted(
    aig: &Aig,
    options: &SbmOptions,
    budget: &Budget,
) -> Result<Optimized<PipelineReport>, JournalError> {
    sbm_script_resumable_inner(aig, options, Some(budget.clone()))
}

fn sbm_script_resumable_inner(
    aig: &Aig,
    options: &SbmOptions,
    budget: Option<Budget>,
) -> Result<Optimized<PipelineReport>, JournalError> {
    let dir = options
        .checkpoint_dir
        .as_ref()
        .ok_or(JournalError::NotConfigured)?;
    let fingerprint = script_fingerprint(options);
    let (net, meta) = read_aig_snapshot(&dir.join(SCRIPT_STATE_FILE))?;
    if meta.fingerprint != fingerprint {
        return Err(JournalError::ConfigMismatch {
            expected: fingerprint,
            found: meta.fingerprint,
        });
    }
    let ckpt = ScriptCkpt {
        dir: dir.clone(),
        every: options.checkpoint_every.max(1),
        fingerprint,
        resume_from: meta.seq,
        seen: Cell::new(0),
        clean: Cell::new(true),
        error: RefCell::new(None),
    };
    let report = PipelineReport {
        resume: Some(ResumeSummary {
            steps_skipped: meta.seq as usize,
            ..ResumeSummary::default()
        }),
        ..PipelineReport::default()
    };
    Ok(script_body(aig, options, budget, Some((ckpt, net)), report))
}

/// The script fingerprint stamped into step snapshots: every builder-
/// level knob that changes *results* — iterations, engine limits, SAT
/// budgets, checking, fault plan. Thread count, deadline and the
/// checkpoint configuration itself are excluded (timing/durability only,
/// a resume may change them). Public so embedders (the job server) can
/// reason about checkpoint compatibility without re-deriving the rule.
#[must_use]
pub fn script_fingerprint(options: &SbmOptions) -> u64 {
    let mut h = Fnv64::new();
    // v4: canonical-steps mode resets the sim-service pattern pool at
    // step boundaries (older canonical snapshots replay differently).
    h.write_str("sbm-script-v4");
    h.write_u64(options.iterations as u64);
    h.write_u64(u64::from(options.sim_filter));
    h.write_u64(u64::from(options.canonical_steps));
    match options.sat_budget {
        None => h.write_u64(0),
        Some(b) => {
            h.write_u64(1);
            h.write_u64(b);
        }
    }
    h.write_u64(u64::from(options.gradient.budget));
    h.write_u64(options.bdiff.max_diff_size as u64);
    h.write_u64(options.bdiff.bdd_node_limit as u64);
    h.write_u64(options.mspf.bdd_node_limit as u64);
    h.write_u64(options.hetero.thresholds.len() as u64);
    for &t in &options.hetero.thresholds {
        h.write_u64(t as u64);
    }
    h.write_u64(options.check_level as u64);
    match &options.fault_plan {
        None => h.write_u64(0),
        Some(plan) => {
            h.write_u64(1);
            h.write_u64(plan.seed);
            h.write_u64(plan.panic_rate.to_bits());
            h.write_u64(plan.delay_rate.to_bits());
            h.write_u64(plan.bailout_rate.to_bits());
        }
    }
    h.finish()
}

/// The shared body of [`sbm_script_report`] (fresh, `resume = None`) and
/// [`sbm_script_resumable`] (resuming from a loaded snapshot). An
/// external `budget` (the `*_budgeted` entry points) replaces the one
/// derived from [`SbmOptions::deadline`].
fn script_body(
    aig: &Aig,
    options: &SbmOptions,
    budget: Option<Budget>,
    resume: Option<(ScriptCkpt, Aig)>,
    mut report: PipelineReport,
) -> Optimized<PipelineReport> {
    let threads = options.num_threads.max(1);
    let check = options.check_level;

    // Boundary pre-check on the RAW input (cleanup would loop on a
    // corrupted redirection map); a corrupt input passes through as-is.
    if check.at_boundaries() {
        if let Err(error) = check_aig(aig) {
            report.check_violations.push(CheckViolation {
                engine: "script".to_string(),
                stage: "pre",
                window: None,
                error,
            });
            return Optimized {
                aig: aig.clone(),
                stats: report,
            };
        }
    }
    // Attribution boundary: discard whatever BDD/SAT residue the calling
    // thread accumulated before this run (e.g. a benchmark harness's own
    // equivalence checks) so the report measures only this script.
    let _ = crate::bdd_bridge::drain_bdd_tally();
    let _ = sbm_sat::drain_sat_tally();
    // Fresh checkpointed runs persist the cleaned input as step 0;
    // resumed runs start from the loaded snapshot instead (its network
    // already includes the effect of every skipped step).
    let (ckpt, mut cur) = match resume {
        Some((ckpt, net)) => (Some(ckpt), net),
        None => {
            let cur = aig.cleanup();
            let ckpt = options.checkpoint_dir.as_ref().and_then(|dir| {
                let fingerprint = script_fingerprint(options);
                match ScriptCkpt::create(dir, fingerprint, options.checkpoint_every.max(1), &cur) {
                    Ok(ckpt) => Some(ckpt),
                    Err(e) => {
                        report.checkpoint_error = Some(e.to_string());
                        None
                    }
                }
            });
            (ckpt, cur)
        }
    };
    let input = check.at_boundaries().then(|| cur.clone());
    // One budget governs the whole run: every engine step, inner pass and
    // SAT gate below shares it, so the deadline bounds the run end to end.
    let ctx = StepCtx {
        budget: budget.unwrap_or_else(|| Budget::from_deadline(options.deadline)),
        fault_plan: options.fault_plan,
        ckpt,
        sim: options.sim_filter.then(SigService::default),
        canonical: options.canonical_steps,
    };
    // Attribution boundary for the sim tallies too (mirrors BDD/SAT).
    let _ = sbm_sim::drain_sim_tally();
    for iteration in 0..options.iterations {
        if ctx.budget.check().is_err() {
            break;
        }
        let high_effort = iteration > 0;
        // 1. AIG optimization: baseline script, then the gradient engine.
        cur = checkpointed(cur, &ctx, |cur| {
            guarded(cur, |a| {
                resyn2rs_threaded(a, threads, check, &ctx, &mut report)
            })
        });
        bank_tallies(&mut report, &ctx);
        let gradient = GradientOptions {
            num_threads: threads,
            ..options.gradient.clone()
        };
        cur = checkpointed(cur, &ctx, |cur| {
            checked_guarded(cur, check, &mut report, "gradient", |a| {
                gradient_optimize_filtered(a, &gradient, &ctx.budget, ctx.sim.as_ref()).0
            })
        });
        bank_tallies(&mut report, &ctx);
        // 2. Heterogeneous elimination for kerneling (internal
        // threshold-sweep threads).
        let hetero = HeteroOptions {
            parallel: threads > 1,
            ..options.hetero.clone()
        };
        cur = checkpointed(cur, &ctx, |cur| {
            checked_guarded(cur, check, &mut report, "hetero", |a| {
                hetero_eliminate_kernel_impl(a, &hetero).0
            })
        });
        bank_tallies(&mut report, &ctx);
        // 3. Enhanced MSPF computation.
        cur = checkpointed(cur, &ctx, |cur| {
            step(
                cur,
                threads,
                check,
                &ctx,
                &mut report,
                engine::Mspf {
                    options: options.mspf,
                },
                |a| mspf_optimize_budgeted(a, &options.mspf, &ctx.budget).0,
            )
        });
        bank_tallies(&mut report, &ctx);
        // 4. Collapse & Boolean decomposition on reconvergent MFFCs.
        let refactor_options = RefactorOptions {
            max_support: if high_effort { 14 } else { 12 },
            min_mffc: 2,
            allow_zero_gain: high_effort,
        };
        cur = checkpointed(cur, &ctx, |cur| {
            step(
                cur,
                threads,
                check,
                &ctx,
                &mut report,
                engine::Refactor {
                    options: refactor_options,
                },
                |a| refactor_impl(a, &refactor_options).0,
            )
        });
        bank_tallies(&mut report, &ctx);
        // 5. Boolean-difference-based optimization: unveils hard-to-find
        // optimizations and escapes local minima.
        cur = checkpointed(cur, &ctx, |cur| {
            step(
                cur,
                threads,
                check,
                &ctx,
                &mut report,
                engine::Bdiff {
                    options: options.bdiff,
                },
                |a| boolean_difference_resub_budgeted(a, &options.bdiff, &ctx.budget).0,
            )
        });
        bank_tallies(&mut report, &ctx);
        // 6. SAT sweeping and redundancy removal.
        cur = checkpointed(cur, &ctx, |cur| {
            checked_guarded(cur, check, &mut report, "sweep", |a| {
                let mut work = a.cleanup();
                let sweep_options = SweepOptions {
                    budget: options.sat_budget,
                    ..Default::default()
                };
                match &ctx.sim {
                    // With the service active, harvest every refutation
                    // witness the sweep's SAT calls produce: each one is a
                    // pattern random simulation missed.
                    Some(svc) => {
                        let outcome = sweep_collect(&mut work, &sweep_options);
                        for witness in &outcome.witnesses {
                            svc.record_cex(witness);
                        }
                    }
                    None => {
                        sweep(&mut work, &sweep_options);
                    }
                }
                work.cleanup()
            })
        });
        bank_tallies(&mut report, &ctx);
        cur = checkpointed(cur, &ctx, |cur| {
            checked_guarded(cur, check, &mut report, "redundancy", |a| {
                remove_redundancies(
                    a,
                    &RedundancyOptions {
                        budget: options.sat_budget,
                        max_checks: if high_effort { 2_000 } else { 500 },
                    },
                )
                .aig
            })
        });
        bank_tallies(&mut report, &ctx);
    }
    // Whether this run executed at least one step beyond the loaded
    // snapshot (a resumed run that trips before its first live step —
    // or skips everything — does no new work).
    let ran_new_steps = ctx
        .ckpt
        .as_ref()
        .is_none_or(|ck| ck.seen.get() > ck.resume_from);
    // Final cleanup. NOT applied in canonical mode: there every step's
    // output is already in cleaned (snapshot) form, and `cleanup` is not
    // idempotent — renumbering can flip stored fanin-pair order, so
    // re-cleaning a reloaded snapshot would diverge from the run that
    // wrote it. A run that did no new work likewise returns the network
    // it loaded (or the cleaned input) untouched.
    let mut result = if ctx.canonical || !ran_new_steps {
        cur
    } else {
        cur.cleanup()
    };

    // Boundary post-check: the final network must satisfy every AIG
    // invariant and agree with the input on 64 random patterns; a
    // violating result is discarded in favor of the cleaned input.
    if let Some(input) = input {
        let error =
            check_aig(&result).and_then(|()| sim_spot_check(&input, &result, SPOT_CHECK_SEED));
        if let Err(error) = error {
            let stage = if error.code == CheckCode::SimMismatch {
                "sim"
            } else {
                "post"
            };
            report.check_violations.push(CheckViolation {
                engine: "script".to_string(),
                stage,
                window: None,
                error,
            });
            result = input;
        }
    }
    if let Some(ck) = &ctx.ckpt {
        // Final checkpoint: when every executed step completed cleanly
        // (no mid-step budget expiry), persist the finished network so a
        // subsequent resume is a pure replay. Otherwise the last cadence
        // snapshot stands and resume re-runs from there. A run that did
        // no new work must not save: its `seen` is at or below the
        // loaded snapshot's seq, and overwriting at a lower seq would
        // regress the checkpoint and make the next resume replay steps
        // onto an already-optimized network.
        if ck.clean.get() && ran_new_steps {
            ck.save(&result, ck.seen.get());
        }
        if report.checkpoint_error.is_none() {
            report.checkpoint_error = ck.error.borrow_mut().take();
        }
    }
    Optimized {
        aig: result,
        stats: report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_sat::{EquivalenceOracle, MiterOracle, Verdict};

    fn proven_equivalent(a: &Aig, b: &Aig) -> bool {
        MiterOracle::new().check(a, b) == Verdict::Equivalent
    }

    fn benchmark_aig() -> Aig {
        // A small circuit with redundancy, imbalance, sharing and
        // reconvergence — every engine has something to find.
        let mut aig = Aig::new();
        let x: Vec<_> = (0..6).map(|_| aig.add_input()).collect();
        let t1 = aig.and(x[0], x[1]);
        let t2 = aig.and(x[0], !x[1]);
        let r = aig.or(t1, t2); // == x0
        let mut chain = r;
        for &xi in &x[2..] {
            chain = aig.and(chain, xi);
        }
        let dup_a = aig.and(x[2], x[3]);
        let dup_b = aig.and(x[4], x[5]);
        let dup = aig.and(dup_a, dup_b);
        let dup2 = aig.and(dup, x[0]); // == chain
        let f = aig.xor(chain, dup2); // == 0
        let g = aig.or(chain, dup2);
        aig.add_output(f);
        aig.add_output(g);
        aig
    }

    #[test]
    fn resyn2rs_improves_and_preserves() {
        let aig = benchmark_aig();
        let out = resyn2rs(&aig);
        assert!(out.num_ands() < aig.num_ands());
        assert!(proven_equivalent(&aig, &out));
    }

    #[test]
    fn sbm_script_at_least_as_good_as_baseline() {
        let aig = benchmark_aig();
        let baseline = resyn2rs_fixpoint(&aig, 8);
        let sbm = sbm_script(&aig, &SbmOptions::default());
        assert!(sbm.num_ands() <= baseline.num_ands());
        assert!(proven_equivalent(&aig, &sbm));
    }

    #[test]
    fn builder_validates_options() {
        assert!(SbmOptions::builder().build().is_ok());
        assert!(matches!(
            SbmOptions::builder().num_threads(0).build(),
            Err(OptionsError::ZeroThreads)
        ));
        assert!(matches!(
            SbmOptions::builder().iterations(0).build(),
            Err(OptionsError::ZeroIterations)
        ));
        assert!(matches!(
            SbmOptions::builder().gradient_budget(0).build(),
            Err(OptionsError::ZeroGradientBudget)
        ));
        assert!(matches!(
            SbmOptions::builder().sat_budget(Some(0)).build(),
            Err(OptionsError::ZeroSatBudget)
        ));
        assert!(SbmOptions::builder().sat_budget(None).build().is_ok());
        assert!(matches!(
            SbmOptions::builder().hetero_thresholds(Vec::new()).build(),
            Err(OptionsError::EmptyThresholds)
        ));
        assert!(matches!(
            SbmOptions::builder().bdd_node_limit(0).build(),
            Err(OptionsError::ZeroBddLimit)
        ));
        assert!(matches!(
            SbmOptions::builder().bdd_size_limit(0).build(),
            Err(OptionsError::ZeroBddLimit)
        ));
        let options = SbmOptions::builder()
            .num_threads(4)
            .bdd_size_limit(10)
            .iterations(1)
            .build()
            .expect("valid configuration");
        assert_eq!(options.num_threads, 4);
        assert_eq!(options.bdiff.max_diff_size, 10);
        assert_eq!(options.iterations, 1);
    }

    #[test]
    fn threaded_script_preserves_function() {
        let aig = benchmark_aig();
        let options = SbmOptions::builder()
            .num_threads(4)
            .iterations(1)
            .build()
            .expect("valid configuration");
        let run = sbm_script_report(&aig, &options);
        assert!(run.aig.num_ands() <= aig.num_ands());
        assert!(proven_equivalent(&aig, &run.aig));
        assert!(run.stats.is_consistent(), "{:?}", run.stats);
    }

    #[test]
    fn paranoid_script_is_clean_and_matches_off() {
        let aig = benchmark_aig();
        let base = SbmOptions::builder()
            .iterations(1)
            .build()
            .expect("valid configuration");
        let checked_options = SbmOptions::builder()
            .iterations(1)
            .check_level(CheckLevel::Paranoid)
            .build()
            .expect("valid configuration");
        let plain = sbm_script_report(&aig, &base);
        let checked = sbm_script_report(&aig, &checked_options);
        assert!(
            checked.stats.check_violations.is_empty(),
            "{:?}",
            checked.stats.check_violations
        );
        assert_eq!(plain.aig.num_ands(), checked.aig.num_ands());
        assert!(proven_equivalent(&aig, &checked.aig));
    }

    #[test]
    fn boundaries_script_rejects_corrupt_input() {
        let mut aig = benchmark_aig();
        let victim = aig.outputs()[0].node();
        aig.corrupt_force_replace(victim, sbm_aig::Lit::new(victim, true));
        let options = SbmOptions::builder()
            .iterations(1)
            .check_level(CheckLevel::Boundaries)
            .build()
            .expect("valid configuration");
        let run = sbm_script_report(&aig, &options);
        assert_eq!(run.stats.check_violations.len(), 1);
        let v = &run.stats.check_violations[0];
        assert_eq!(v.engine, "script");
        assert_eq!(v.stage, "pre");
        assert_eq!(v.error.code, CheckCode::AigCyclicRedirect);
        assert_eq!(run.aig.num_nodes(), aig.num_nodes());
    }

    #[test]
    fn checkpointed_script_resumes_as_pure_replay() {
        let dir = std::env::temp_dir().join(format!("sbm-script-ck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let aig = benchmark_aig();
        let options = SbmOptions::builder()
            .iterations(1)
            .checkpoint_dir(Some(dir.clone()))
            .build()
            .expect("valid configuration");
        let plain_options = SbmOptions::builder()
            .iterations(1)
            .build()
            .expect("valid configuration");
        let plain = sbm_script_report(&aig, &plain_options);
        let full = sbm_script_report(&aig, &options);
        assert_eq!(full.stats.checkpoint_error, None);
        assert_eq!(full.aig.num_ands(), plain.aig.num_ands());
        // Resuming a finished run replays the final snapshot: every step
        // is skipped and the loaded network is returned as-is.
        let resumed = sbm_script_resumable(&aig, &options).expect("resume");
        let summary = resumed.stats.resume.expect("summary");
        assert_eq!(summary.steps_skipped, 8, "one iteration = 8 script steps");
        assert_eq!(resumed.aig.num_ands(), full.aig.num_ands());
        assert!(proven_equivalent(&full.aig, &resumed.aig));
        // A partially recorded run (snapshot rolled back to an earlier
        // step) re-runs the remaining steps and converges on the same
        // result.
        let (net, meta) =
            sbm_journal::read_aig_snapshot(&dir.join(SCRIPT_STATE_FILE)).expect("final snapshot");
        assert_eq!(meta.seq, 8);
        sbm_journal::write_aig_snapshot(
            &dir.join(SCRIPT_STATE_FILE),
            &aig.cleanup(),
            meta.fingerprint,
            0,
        )
        .expect("roll back to step 0");
        let restarted = sbm_script_resumable(&aig, &options).expect("resume from 0");
        assert_eq!(restarted.stats.resume.expect("summary").steps_skipped, 0);
        assert_eq!(restarted.aig.num_ands(), full.aig.num_ands());
        assert!(proven_equivalent(&net, &restarted.aig));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgeted_canonical_run_parks_and_resumes_byte_identically() {
        // The job-server execution model: a run under a cancellable slice
        // budget is preempted at an arbitrary point, parked as its last
        // clean checkpoint, and later resumed under a fresh budget. With
        // canonical_steps on, the resumed run must converge on a result
        // byte-identical to an uninterrupted run of the same options.
        let dir = std::env::temp_dir().join(format!("sbm-script-park-{}", std::process::id()));
        let ref_dir =
            std::env::temp_dir().join(format!("sbm-script-parkref-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ref_dir);
        let aig = benchmark_aig();
        let mk = |d: &Path| {
            SbmOptions::builder()
                .iterations(1)
                .checkpoint_dir(Some(d.to_path_buf()))
                .canonical_steps(true)
                .build()
                .expect("valid configuration")
        };
        let reference = sbm_script_report(&aig, &mk(&ref_dir));
        let ref_text = sbm_aig::aiger::write(&reference.aig);

        // Slice 1: preempt mid-run from another thread. Whatever step the
        // cancel lands in, that step is never persisted (clean=false), so
        // the checkpoint holds only fully completed, cleaned steps.
        let options = mk(&dir);
        let slice = Budget::cancellable();
        let canceller = slice.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            canceller.cancel();
        });
        let parked = sbm_script_budgeted(&aig, &options, &slice);
        handle.join().expect("canceller");
        // The preempted result may be degraded; the server discards it.
        drop(parked);

        // Slice 2: resume with an open-ended budget and run to the end.
        let resumed = sbm_script_resumable_budgeted(&aig, &options, &Budget::unlimited())
            .expect("resume from parked checkpoint");
        assert_eq!(sbm_aig::aiger::write(&resumed.aig), ref_text);

        // A third resume replays the finished snapshot, still identical.
        let replayed = sbm_script_resumable_budgeted(&aig, &options, &Budget::unlimited())
            .expect("pure replay");
        assert_eq!(sbm_aig::aiger::write(&replayed.aig), ref_text);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ref_dir);
    }

    #[test]
    fn canonical_fingerprint_differs_from_default() {
        // canonical_steps changes results, so a snapshot recorded with it
        // must not resume under the default options (and vice versa).
        let base = SbmOptions::builder()
            .iterations(1)
            .build()
            .expect("valid configuration");
        let canonical = SbmOptions::builder()
            .iterations(1)
            .canonical_steps(true)
            .build()
            .expect("valid configuration");
        assert_ne!(script_fingerprint(&base), script_fingerprint(&canonical));
    }

    #[test]
    fn script_resume_rejects_drift_and_missing_configuration() {
        let dir = std::env::temp_dir().join(format!("sbm-script-drift-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let aig = benchmark_aig();
        let options = SbmOptions::builder()
            .iterations(1)
            .checkpoint_dir(Some(dir.clone()))
            .build()
            .expect("valid configuration");
        sbm_script_report(&aig, &options);
        let drifted = SbmOptions::builder()
            .iterations(2)
            .checkpoint_dir(Some(dir.clone()))
            .build()
            .expect("valid configuration");
        assert!(matches!(
            sbm_script_resumable(&aig, &drifted),
            Err(JournalError::ConfigMismatch { .. })
        ));
        let unconfigured = SbmOptions::builder()
            .iterations(1)
            .build()
            .expect("valid configuration");
        assert!(matches!(
            sbm_script_resumable(&aig, &unconfigured),
            Err(JournalError::NotConfigured)
        ));
        assert!(matches!(
            SbmOptions::builder().checkpoint_every(0).build(),
            Err(OptionsError::ZeroCheckpointEvery)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fixpoint_terminates() {
        let aig = benchmark_aig();
        let out = resyn2rs_fixpoint(&aig, 50);
        assert!(out.num_ands() <= aig.num_ands());
        assert!(proven_equivalent(&aig, &out));
    }
}
