//! The parallel partition executor.
//!
//! The paper's engines are all *windowed*: they evaluate Boolean
//! transformations "locally on limited size circuit partitions"
//! (Section III-B), which makes the partitions natural units of parallel
//! work. This module implements that idea end to end:
//!
//! 1. **Extract** — the network is split into disjoint windows by
//!    [`sbm_aig::window::partition`] and each viable window is copied out
//!    as a standalone AIG ([`Partition::extract`]);
//! 2. **Optimize** — windows are fanned out to a scoped worker pool
//!    ([`std::thread::scope`]); each worker claims windows from a shared
//!    atomic cursor and runs the configured [`Engine`] sequence on its
//!    window, with BDD managers recycled through the worker's thread-local
//!    pool ([`crate::bdd_bridge::pooled_manager`]);
//! 3. **Stitch** — accepted rewrites are spliced back serially, guarded by
//!    a functional-equivalence gate (simulation signatures plus a budgeted
//!    SAT miter, [`crate::verify::equivalent_within`]) and a
//!    created-versus-saved node count.
//!
//! The result is deterministic: workers only transform private window
//! copies, outcomes are collected by window index, and stitching happens
//! in partition order — so `num_threads = 4` produces the same network as
//! `num_threads = 1`, only faster.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use sbm_aig::window::{partition, Partition, PartitionOptions};
use sbm_aig::{Aig, Lit, NodeId};
use sbm_bdd::BddTally;
use sbm_budget::Budget;
use sbm_check::{check_aig, inject_panic, sim_spot_check, CheckLevel, FaultKind, FaultPlan};
use sbm_journal::{
    decode_aig, encode_aig, read_aig_snapshot, read_journal, write_aig_snapshot, FaultRecord,
    Fnv64, InjectedFaultRecord, JournalError, JournalWriter, ReadMode, RecordOutcome,
    ResumeSummary, WindowRecord, JOURNAL_FILE, SNAPSHOT_FILE,
};
use sbm_metrics::{
    BddCounters, EngineFaultCounters, EngineReport, FaultReport, Histogram, PhaseMicros,
    ResumeReport, RunReport, SatCounters, SimFilterCounters, Timer, WindowReport,
};
use sbm_sat::{drain_sat_tally, note_sat_tally, SatTally};
use sbm_sim::{drain_sim_tally, note_sim_tally, SigService, SimTally};

use crate::bdd_bridge::{drain_bdd_tally, note_bdd_tally};
use crate::engine::{
    run_checked, CheckViolation, Engine, EngineCtx, EngineStats, Optimized, SPOT_CHECK_SEED,
};
use crate::verify::equivalent_within_budgeted_sim;

/// Knobs of the parallel partition executor.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Worker threads (1 = run the whole pipeline serially).
    pub num_threads: usize,
    /// Window extraction limits.
    pub partition: PartitionOptions,
    /// Windows with fewer internal nodes are skipped outright.
    pub min_window: usize,
    /// Gate every accepted window rewrite with a functional-equivalence
    /// check before stitching.
    pub verify_windows: bool,
    /// SAT conflict budget of the per-window equivalence gate; rewrites
    /// the solver cannot prove within the budget are rejected.
    pub conflict_budget: u64,
    /// Invariant-checking level: `Off` (default) adds no work,
    /// `Boundaries` validates the run's input and output networks,
    /// `Paranoid` additionally brackets every engine invocation inside
    /// every window with [`run_checked`]. Violations are collected in
    /// [`PipelineReport::check_violations`]; a violating rewrite is
    /// discarded, never stitched.
    pub check_level: CheckLevel,
    /// Wall-clock deadline of the whole run (`None` = unbounded). An
    /// expired deadline never aborts the run: engines stop cooperatively,
    /// in-flight windows degrade to their original sub-network, and the
    /// pipeline stitches whatever completed in time.
    pub deadline: Option<Duration>,
    /// Externally shared [`Budget`]. When set (not
    /// [`Budget::is_unlimited`]) it takes precedence over [`deadline`],
    /// so a caller can cancel or deadline several passes as one unit.
    ///
    /// [`deadline`]: PipelineOptions::deadline
    pub budget: Budget,
    /// Deterministic fault-injection plan for robustness testing
    /// (`None` = no injection, the production default). See
    /// [`sbm_check::FaultPlan`].
    pub fault_plan: Option<FaultPlan>,
    /// Crash-safe checkpointing (`None` = off). When set, [`Pipeline::run`]
    /// snapshots the cleaned input and journals every completed window to
    /// the checkpoint directory, and [`Pipeline::resume`] can restart an
    /// interrupted run from there.
    pub checkpoint: Option<CheckpointOptions>,
    /// Shared simulation-signature service (`None` = no filtering).
    /// When set, engines that support it filter resubstitution
    /// candidates by signature before any BDD/SAT work, the window
    /// equivalence gate screens through the service's pattern set, and
    /// refuted gate checks feed their SAT witnesses back into the
    /// service's pending pool. The pipeline itself never commits pending
    /// counterexamples — that is the service owner's job at a true
    /// serial boundary (script steps do it between steps), because a
    /// nested pass (e.g. a gradient move) finishing is *not* a serial
    /// point of the enclosing run.
    pub sim: Option<SigService>,
}

/// Where and how often a pipeline run persists its progress.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Directory holding the snapshot and write-ahead journal. Created on
    /// demand; a fresh [`Pipeline::run`] overwrites any previous
    /// checkpoint in it.
    pub dir: PathBuf,
    /// fsync cadence in window records: `1` (the default) makes every
    /// record durable before the next append, larger values amortize the
    /// sync cost and risk losing at most that many trailing records.
    pub every: usize,
}

impl CheckpointOptions {
    /// Checkpointing into `dir` with the always-durable cadence of 1.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointOptions {
            dir: dir.into(),
            every: 1,
        }
    }
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            num_threads: 1,
            partition: PartitionOptions::default(),
            min_window: 4,
            verify_windows: true,
            conflict_budget: 10_000,
            check_level: CheckLevel::Off,
            deadline: None,
            budget: Budget::unlimited(),
            fault_plan: None,
            checkpoint: None,
            sim: None,
        }
    }
}

/// Per-engine fault counters of one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Engine invocations that panicked (injected or genuine); every one
    /// was caught and isolated to its window.
    pub panics: usize,
    /// Engine invocations that observed an expired deadline or a
    /// cancellation and stopped early.
    pub deadline_hits: usize,
    /// BDD node-limit bailouts, mirrored from [`EngineStats::bailouts`].
    pub bailouts: usize,
    /// Forced bailouts injected by the [`FaultPlan`].
    pub injected_bailouts: usize,
    /// Delays injected by the [`FaultPlan`].
    pub delays: usize,
    /// Failed first attempts that were retried at reduced effort.
    pub retries: usize,
    /// Retries whose second attempt completed.
    pub retry_successes: usize,
}

impl FaultCounts {
    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == FaultCounts::default()
    }

    /// Adds `other` into `self`, field by field.
    pub fn merge(&mut self, other: &FaultCounts) {
        self.panics += other.panics;
        self.deadline_hits += other.deadline_hits;
        self.bailouts += other.bailouts;
        self.injected_bailouts += other.injected_bailouts;
        self.delays += other.delays;
        self.retries += other.retries;
        self.retry_successes += other.retry_successes;
    }
}

/// One fault injected by the configured [`FaultPlan`] — the run's ledger,
/// against which tests verify that [`FaultSummary`] bookkeeping is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Engine the fault was injected into.
    pub engine: String,
    /// Partition index of the window being optimized.
    pub window: usize,
    /// 0 for the first attempt, 1 for the retry.
    pub attempt: u8,
    /// What was injected.
    pub kind: FaultKind,
}

/// Fault-tolerance record of one pipeline run: what failed, what was
/// retried, and what degraded — the run never aborts on any of it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSummary {
    /// Per-engine counters, in first-occurrence order. The reserved name
    /// `"pipeline"` attributes faults caught outside any single engine.
    pub per_engine: Vec<(String, FaultCounts)>,
    /// Windows degraded to their original sub-network after both attempts
    /// of some engine failed (or the deadline expired mid-window).
    pub degraded_windows: usize,
    /// Every fault the [`FaultPlan`] actually injected, in the order the
    /// windows were claimed. Empty without a plan.
    pub injected: Vec<InjectedFault>,
}

impl FaultSummary {
    /// The counters of `engine`, created zeroed on first use.
    pub fn counts_mut(&mut self, engine: &str) -> &mut FaultCounts {
        let idx = match self.per_engine.iter().position(|(n, _)| n == engine) {
            Some(idx) => idx,
            None => {
                self.per_engine
                    .push((engine.to_string(), FaultCounts::default()));
                self.per_engine.len() - 1
            }
        };
        &mut self.per_engine[idx].1
    }

    /// The counters of `engine`, zeroed when the engine never faulted.
    pub fn counts(&self, engine: &str) -> FaultCounts {
        self.per_engine
            .iter()
            .find(|(n, _)| n == engine)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }

    /// Sums a field across all engines.
    pub fn total(&self, field: impl Fn(&FaultCounts) -> usize) -> usize {
        self.per_engine.iter().map(|(_, c)| field(c)).sum()
    }

    /// True when nothing faulted, nothing degraded and nothing was
    /// injected — the expected state of every production run.
    pub fn is_zero(&self) -> bool {
        self.degraded_windows == 0
            && self.injected.is_empty()
            && self.per_engine.iter().all(|(_, c)| c.is_zero())
    }

    /// Accumulates `other` into `self`: counters merge by engine name,
    /// degraded windows sum, ledgers concatenate.
    pub fn merge(&mut self, other: &FaultSummary) {
        for (name, counts) in &other.per_engine {
            self.counts_mut(name).merge(counts);
        }
        self.degraded_windows += other.degraded_windows;
        self.injected.extend(other.injected.iter().cloned());
    }
}

/// Why a window did not make it into the stitched result. Each processed
/// window lands in exactly one category (see
/// [`PipelineReport::is_consistent`]).
#[derive(Debug, Clone, Copy, Default)]
struct WindowCounters {
    skipped: usize,
    unchanged: usize,
    gate_rejected: usize,
    stitch_rejected: usize,
    improved: usize,
}

/// Observability record of one [`Pipeline::run`].
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Windows produced by partitioning.
    pub windows_total: usize,
    /// Windows below `min_window`, without roots, or not extractable.
    pub windows_skipped: usize,
    /// Windows where the engine sequence found no improvement.
    pub windows_unchanged: usize,
    /// Windows whose rewrite failed the functional-equivalence gate.
    pub windows_gate_rejected: usize,
    /// Windows whose splice was abandoned (created ≥ saved nodes, or a
    /// replacement would have formed a cycle).
    pub windows_stitch_rejected: usize,
    /// Windows stitched into the result.
    pub windows_improved: usize,
    /// AND nodes saved by stitched windows (pre-cleanup estimate).
    pub nodes_saved: usize,
    /// Per-engine statistics, in chain order, merged across all windows.
    /// [`EngineStats::busy`] sums per-invocation busy time over all
    /// workers, so it can exceed `optimize_wall` when `num_threads > 1`;
    /// the `*_wall` phase fields below are true elapsed wall-clock.
    pub engines: Vec<(String, EngineStats)>,
    /// Per-engine invocation-latency histograms, in chain order
    /// (power-of-two microsecond buckets; one sample per completed
    /// engine invocation).
    pub engine_latency: Vec<(String, Histogram)>,
    /// BDD-layer counters harvested from every manager recycled during
    /// the run — [`BddManager::reset`](sbm_bdd::BddManager::reset) zeroes
    /// a manager's stats, so the per-window drains here are the only
    /// place this work stays visible.
    pub bdd: BddTally,
    /// SAT-solver counters accumulated across the run, including the
    /// per-window equivalence gates.
    pub sat: SatTally,
    /// Simulation-filter counters accumulated across the run: candidates
    /// rejected/passed by signature screening, counterexamples harvested
    /// from refuted gate checks, and network resimulations. All-zero
    /// when [`PipelineOptions::sim`] is unset.
    pub sim: SimTally,
    /// Wall-clock of the window-extraction phase.
    pub extract_wall: Duration,
    /// Wall-clock of the parallel optimization phase.
    pub optimize_wall: Duration,
    /// Wall-clock of the serial stitching phase (incl. final cleanup).
    pub stitch_wall: Duration,
    /// End-to-end wall-clock of the run.
    pub total_wall: Duration,
    /// Invariant violations caught by the configured
    /// [`PipelineOptions::check_level`], in detection order: each names
    /// the engine (or `"pipeline"` for run boundaries), the stage and,
    /// for `Paranoid`, the window that first violated an invariant.
    pub check_violations: Vec<CheckViolation>,
    /// Fault-tolerance record: panics caught, deadline hits, bailouts,
    /// retries and degraded windows, per engine. All-zero
    /// ([`FaultSummary::is_zero`]) on a healthy run.
    pub fault: FaultSummary,
    /// Resume bookkeeping: set only by [`Pipeline::resume`], accounting
    /// every window of the resumed run exactly once (replayed from the
    /// journal or re-run).
    pub resume: Option<ResumeSummary>,
    /// First checkpoint I/O failure of the run, if any. Checkpointing is
    /// best-effort during a run: a full disk degrades durability, never
    /// the optimization result.
    pub checkpoint_error: Option<String>,
}

impl PipelineReport {
    /// Accumulates `other` into `self`: window counters and phase times
    /// sum; per-engine stats merge by name (appended when new).
    pub fn merge(&mut self, other: &PipelineReport) {
        self.windows_total += other.windows_total;
        self.windows_skipped += other.windows_skipped;
        self.windows_unchanged += other.windows_unchanged;
        self.windows_gate_rejected += other.windows_gate_rejected;
        self.windows_stitch_rejected += other.windows_stitch_rejected;
        self.windows_improved += other.windows_improved;
        self.nodes_saved += other.nodes_saved;
        for (name, stats) in &other.engines {
            match self.engines.iter_mut().find(|(n, _)| n == name) {
                Some((_, total)) => total.merge(stats),
                None => self.engines.push((name.clone(), *stats)),
            }
        }
        for (name, hist) in &other.engine_latency {
            match self.engine_latency.iter_mut().find(|(n, _)| n == name) {
                Some((_, total)) => total.merge(hist),
                None => self.engine_latency.push((name.clone(), hist.clone())),
            }
        }
        self.bdd.merge(&other.bdd);
        self.sat.merge(&other.sat);
        self.sim.merge(&other.sim);
        self.extract_wall += other.extract_wall;
        self.optimize_wall += other.optimize_wall;
        self.stitch_wall += other.stitch_wall;
        self.total_wall += other.total_wall;
        self.check_violations
            .extend(other.check_violations.iter().cloned());
        self.fault.merge(&other.fault);
        if let Some(other_resume) = &other.resume {
            self.resume
                .get_or_insert_with(ResumeSummary::default)
                .merge(other_resume);
        }
        if self.checkpoint_error.is_none() {
            self.checkpoint_error.clone_from(&other.checkpoint_error);
        }
    }

    /// Every window lands in exactly one outcome bucket.
    pub fn is_consistent(&self) -> bool {
        self.windows_skipped
            + self.windows_unchanged
            + self.windows_gate_rejected
            + self.windows_stitch_rejected
            + self.windows_improved
            == self.windows_total
    }

    /// Projects this report onto the serializable [`RunReport`] schema.
    ///
    /// The run-identity fields (`tool`, `scale`, `threads`, `benchmarks`)
    /// are left at their defaults — only the caller knows them; fill them
    /// in before [`RunReport::to_json`].
    pub fn run_report(&self) -> RunReport {
        let micros = |d: Duration| u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let latency = |name: &str| {
            self.engine_latency
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.clone())
                .unwrap_or_default()
        };
        RunReport {
            windows: WindowReport {
                total: self.windows_total as u64,
                skipped: self.windows_skipped as u64,
                unchanged: self.windows_unchanged as u64,
                gate_rejected: self.windows_gate_rejected as u64,
                stitch_rejected: self.windows_stitch_rejected as u64,
                improved: self.windows_improved as u64,
                nodes_saved: self.nodes_saved as u64,
                check_violations: self.check_violations.len() as u64,
            },
            phases_us: PhaseMicros {
                extract: micros(self.extract_wall),
                optimize: micros(self.optimize_wall),
                stitch: micros(self.stitch_wall),
                total: micros(self.total_wall),
            },
            engines: self
                .engines
                .iter()
                .map(|(name, s)| EngineReport {
                    name: name.clone(),
                    windows: s.windows as u64,
                    tried: s.tried as u64,
                    accepted: s.accepted as u64,
                    gain: s.gain,
                    bailouts: s.bailouts as u64,
                    busy_us: micros(s.busy),
                    latency_us: latency(name),
                })
                .collect(),
            bdd: BddCounters {
                managers_recycled: self.bdd.managers_recycled,
                nodes_allocated: self.bdd.nodes_allocated,
                peak_nodes: self.bdd.peak_nodes,
                unique_hits: self.bdd.unique_hits,
                cache_hits: self.bdd.cache_hits,
                ite_calls: self.bdd.ite_calls,
            },
            sat: SatCounters {
                solves: self.sat.solves,
                sat: self.sat.sat,
                unsat: self.sat.unsat,
                unknown: self.sat.unknown,
                interrupted: self.sat.interrupted,
                conflicts: self.sat.conflicts,
                decisions: self.sat.decisions,
                propagations: self.sat.propagations,
            },
            sim_filter: SimFilterCounters {
                hits: self.sim.filter_hits,
                misses: self.sim.filter_misses,
                cex_recorded: self.sim.cex_recorded,
                cex_committed: self.sim.cex_committed,
                resims: self.sim.resims,
            },
            faults: FaultReport {
                degraded_windows: self.fault.degraded_windows as u64,
                injected: self.fault.injected.len() as u64,
                per_engine: self
                    .fault
                    .per_engine
                    .iter()
                    .map(|(name, c)| EngineFaultCounters {
                        name: name.clone(),
                        panics: c.panics as u64,
                        deadline_hits: c.deadline_hits as u64,
                        bailouts: c.bailouts as u64,
                        injected_bailouts: c.injected_bailouts as u64,
                        delays: c.delays as u64,
                        retries: c.retries as u64,
                        retry_successes: c.retry_successes as u64,
                    })
                    .collect(),
            },
            resume: self.resume.as_ref().map(|r| ResumeReport {
                records_replayed: r.records_replayed as u64,
                torn_dropped: r.torn_dropped as u64,
                stale_dropped: r.stale_dropped as u64,
                windows_replayed: r.windows_replayed as u64,
                windows_rerun: r.windows_rerun as u64,
                steps_skipped: r.steps_skipped as u64,
            }),
            checkpoint_error: self.checkpoint_error.clone(),
            ..RunReport::default()
        }
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline: {} windows ({} improved, {} unchanged, {} skipped, \
             {} gate-rejected, {} stitch-rejected), {} nodes saved",
            self.windows_total,
            self.windows_improved,
            self.windows_unchanged,
            self.windows_skipped,
            self.windows_gate_rejected,
            self.windows_stitch_rejected,
            self.nodes_saved,
        )?;
        for (name, s) in &self.engines {
            writeln!(
                f,
                "  {:<10} windows {:>5}  tried {:>6}  accepted {:>6}  \
                 gain {:>6}  bailouts {:>4}  busy {:.3}s",
                name,
                s.windows,
                s.tried,
                s.accepted,
                s.gain,
                s.bailouts,
                s.busy.as_secs_f64(),
            )?;
        }
        if !self.bdd.is_zero() {
            writeln!(
                f,
                "  bdd: {} managers recycled, {} nodes (peak {}), {} ite calls, \
                 {} unique hits, {} cache hits",
                self.bdd.managers_recycled,
                self.bdd.nodes_allocated,
                self.bdd.peak_nodes,
                self.bdd.ite_calls,
                self.bdd.unique_hits,
                self.bdd.cache_hits,
            )?;
        }
        if !self.sat.is_zero() {
            writeln!(
                f,
                "  sat: {} solves ({} sat, {} unsat, {} unknown, {} interrupted), \
                 {} conflicts, {} decisions, {} propagations",
                self.sat.solves,
                self.sat.sat,
                self.sat.unsat,
                self.sat.unknown,
                self.sat.interrupted,
                self.sat.conflicts,
                self.sat.decisions,
                self.sat.propagations,
            )?;
        }
        if !self.sim.is_zero() {
            writeln!(
                f,
                "  sim: {} filter hits, {} misses, {} cex recorded ({} committed), \
                 {} resims",
                self.sim.filter_hits,
                self.sim.filter_misses,
                self.sim.cex_recorded,
                self.sim.cex_committed,
                self.sim.resims,
            )?;
        }
        write!(
            f,
            "  phases: extract {:.3}s, optimize {:.3}s, stitch {:.3}s, total {:.3}s",
            self.extract_wall.as_secs_f64(),
            self.optimize_wall.as_secs_f64(),
            self.stitch_wall.as_secs_f64(),
            self.total_wall.as_secs_f64(),
        )?;
        if !self.fault.is_zero() {
            write!(
                f,
                "\n  faults: {} degraded windows, {} injected",
                self.fault.degraded_windows,
                self.fault.injected.len(),
            )?;
            for (name, c) in &self.fault.per_engine {
                if c.is_zero() {
                    continue;
                }
                write!(
                    f,
                    "\n    {:<10} panics {:>3}  deadline {:>3}  bailouts {:>3} \
                     (+{} injected)  delays {:>3}  retries {:>3} ({} ok)",
                    name,
                    c.panics,
                    c.deadline_hits,
                    c.bailouts,
                    c.injected_bailouts,
                    c.delays,
                    c.retries,
                    c.retry_successes,
                )?;
            }
        }
        if let Some(resume) = &self.resume {
            write!(f, "\n  {resume}")?;
        }
        if let Some(err) = &self.checkpoint_error {
            write!(f, "\n  CHECKPOINT ERROR: {err}")?;
        }
        for v in &self.check_violations {
            write!(f, "\n  CHECK VIOLATION: {v}")?;
        }
        Ok(())
    }
}

/// What one worker produced for one window.
struct WindowOutcome {
    /// The accepted rewrite (smaller and, if gating is on, proved
    /// equivalent); `None` when the window stays as-is.
    rewrite: Option<Aig>,
    gate_rejected: bool,
    per_engine: Vec<EngineStats>,
    /// Per-engine invocation latency, aligned with `per_engine`.
    latency: Vec<Histogram>,
    /// BDD counters drained from the worker's thread-local pool when the
    /// window finished — per-window drains make the totals identical for
    /// every thread count.
    bdd: BddTally,
    /// SAT counters drained from the worker's thread-local tally.
    sat: SatTally,
    /// Simulation-filter counters drained from the worker's thread-local
    /// tally.
    sim: SimTally,
    /// Invariant violations from `Paranoid` per-engine bracketing
    /// (empty below that level).
    violations: Vec<CheckViolation>,
    /// This window's contribution to [`PipelineReport::fault`].
    fault: FaultSummary,
}

/// A configurable engine sequence scheduled over disjoint windows.
pub struct Pipeline {
    engines: Vec<Box<dyn Engine>>,
    options: PipelineOptions,
}

impl Pipeline {
    /// An empty pipeline (no engines) with the given options.
    pub fn new(options: PipelineOptions) -> Self {
        Pipeline {
            engines: Vec::new(),
            options,
        }
    }

    /// Appends an engine to the per-window sequence (builder style).
    #[must_use]
    pub fn with_engine(mut self, engine: impl Engine + 'static) -> Self {
        self.engines.push(Box::new(engine));
        self
    }

    /// The configured engine names, in chain order.
    pub fn engine_names(&self) -> Vec<&str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// Runs the extract → optimize → stitch pipeline. The result is never
    /// larger than the input and identical for every `num_threads`.
    ///
    /// With [`PipelineOptions::checkpoint`] set, the run snapshots its
    /// cleaned input and journals every completed window so an
    /// interrupted process can pick up with [`Pipeline::resume`].
    /// Checkpoint I/O failures never abort the run; the first one is
    /// reported in [`PipelineReport::checkpoint_error`].
    pub fn run(&self, aig: &Aig) -> Optimized<PipelineReport> {
        let total_timer = Timer::start();
        let mut report = PipelineReport::default();

        // Boundary pre-check runs on the RAW input, before cleanup:
        // cleanup itself resolves replacement chains and would loop on a
        // corrupted redirection map. A corrupt input is returned as-is —
        // there is nothing safe the pipeline can do with it.
        if self.options.check_level.at_boundaries() {
            if let Err(error) = check_aig(aig) {
                report.check_violations.push(CheckViolation {
                    engine: "pipeline".to_string(),
                    stage: "pre",
                    window: None,
                    error,
                });
                report.total_wall = total_timer.stop();
                return Optimized {
                    aig: aig.clone(),
                    stats: report,
                };
            }
        }
        let work = aig.cleanup();

        let journal = match &self.options.checkpoint {
            Some(ck) => match self.init_checkpoint(&work, ck) {
                Ok(state) => Some(state),
                Err(e) => {
                    report.checkpoint_error = Some(e.to_string());
                    None
                }
            },
            None => None,
        };
        self.execute(aig, work, report, journal, HashMap::new(), total_timer)
    }

    /// Resumes an interrupted checkpointed run.
    ///
    /// Reads the snapshot from the configured checkpoint directory,
    /// validates it with `sbm-check` (structural + simulation, inside
    /// [`read_aig_snapshot`]), reads the journal leniently — dropping and
    /// truncating any torn tail record — and re-enters the pipeline:
    /// windows with a valid record are replayed without running engines,
    /// the rest run as usual and are appended to the same journal. Under
    /// the same seed and [`FaultPlan`] the result is functionally
    /// identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`JournalError::NotConfigured`] without
    /// [`PipelineOptions::checkpoint`]; [`JournalError::BadCrc`] /
    /// [`JournalError::VersionMismatch`] / [`JournalError::TornTail`] /
    /// [`JournalError::BadMagic`] on a corrupted snapshot or journal;
    /// [`JournalError::ConfigMismatch`] when the checkpoint was written
    /// under a different engine/option configuration. A structurally
    /// invalid network is never returned.
    pub fn resume(&self) -> Result<Optimized<PipelineReport>, JournalError> {
        let ck = self
            .options
            .checkpoint
            .as_ref()
            .ok_or(JournalError::NotConfigured)?;
        let total_timer = Timer::start();
        let fingerprint = self.config_fingerprint();
        let (work, meta) = read_aig_snapshot(&ck.dir.join(SNAPSHOT_FILE))?;
        if meta.fingerprint != fingerprint {
            return Err(JournalError::ConfigMismatch {
                expected: fingerprint,
                found: meta.fingerprint,
            });
        }
        let journal_path = ck.dir.join(JOURNAL_FILE);
        let readout = read_journal(&journal_path, ReadMode::Lenient)?;
        if readout.fingerprint != fingerprint {
            return Err(JournalError::ConfigMismatch {
                expected: fingerprint,
                found: readout.fingerprint,
            });
        }
        let writer = JournalWriter::open_append(
            &journal_path,
            fingerprint,
            ck.every,
            readout.valid_len,
            readout.records.len() as u64,
        )?;
        let mut replay: HashMap<usize, WindowRecord> = HashMap::new();
        for record in readout.records {
            // Later records win: a window re-run after an earlier resume
            // appends a fresh record behind its stale one.
            replay.insert(record.window as usize, record);
        }
        let report = PipelineReport {
            resume: Some(ResumeSummary {
                records_replayed: replay.len(),
                torn_dropped: readout.torn_dropped,
                ..ResumeSummary::default()
            }),
            ..PipelineReport::default()
        };
        // The snapshot is already cleaned and validated; `execute`
        // re-partitions it deterministically, so records keyed by window
        // index line up with the original run's windows.
        let baseline = work.clone();
        Ok(self.execute(
            &baseline,
            work,
            report,
            Some(JournalState::new(writer)),
            replay,
            total_timer,
        ))
    }

    /// The configuration fingerprint stamped into snapshots and journal
    /// headers: a hash of everything that must match for a checkpoint to
    /// be resumable — engine chain, partitioning, gating and fault plan.
    /// Thread count, deadline and budget are deliberately excluded: they
    /// change timing, not results, so a resume may use different ones.
    pub fn config_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str("sbm-pipeline-v2");
        for engine in &self.engines {
            h.write_str(engine.name());
        }
        let o = &self.options;
        h.write_u64(o.partition.max_nodes as u64);
        h.write_u64(o.partition.max_inputs as u64);
        h.write_u64(o.partition.max_levels as u64);
        h.write_u64(o.min_window as u64);
        h.write_u64(u64::from(o.verify_windows));
        h.write_u64(o.conflict_budget);
        h.write_u64(o.check_level as u64);
        h.write_u64(u64::from(o.sim.is_some()));
        match &o.fault_plan {
            None => h.write_u64(0),
            Some(plan) => {
                h.write_u64(1);
                h.write_u64(plan.seed);
                h.write_u64(plan.panic_rate.to_bits());
                h.write_u64(plan.delay_rate.to_bits());
                h.write_u64(plan.bailout_rate.to_bits());
            }
        }
        h.finish()
    }

    /// Fresh-run checkpoint setup: create the directory, snapshot the
    /// cleaned input atomically, start a new journal.
    fn init_checkpoint(
        &self,
        work: &Aig,
        ck: &CheckpointOptions,
    ) -> Result<JournalState, JournalError> {
        std::fs::create_dir_all(&ck.dir).map_err(|e| JournalError::Io {
            op: "create_dir",
            path: ck.dir.clone(),
            detail: e.to_string(),
        })?;
        let fingerprint = self.config_fingerprint();
        write_aig_snapshot(&ck.dir.join(SNAPSHOT_FILE), work, fingerprint, 0)?;
        let writer = JournalWriter::create(&ck.dir.join(JOURNAL_FILE), fingerprint, ck.every)?;
        Ok(JournalState::new(writer))
    }

    /// The shared body of [`Pipeline::run`] and [`Pipeline::resume`]:
    /// `work` must already be cleaned (and, for resume, id-identical to
    /// the snapshotted network so partitioning reproduces the original
    /// windows).
    fn execute(
        &self,
        baseline: &Aig,
        work: Aig,
        mut report: PipelineReport,
        journal: Option<JournalState>,
        mut replay: HashMap<usize, WindowRecord>,
        total_timer: Timer,
    ) -> Optimized<PipelineReport> {
        let mut counters = WindowCounters::default();
        let aig = baseline;

        // Phase 1: extract windows.
        let extract_timer = Timer::start();
        let parts = partition(&work, &self.options.partition);
        report.windows_total = parts.len();
        let mut jobs: Vec<(usize, Aig)> = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            if part.size() < self.options.min_window
                || part.leaves.is_empty()
                || part.roots.is_empty()
            {
                counters.skipped += 1;
                continue;
            }
            match part.extract(&work) {
                Some(sub) => jobs.push((i, sub)),
                None => counters.skipped += 1,
            }
        }
        report.extract_wall = extract_timer.stop();

        // Replay journal records onto their windows before any engine
        // runs: a record whose pre-hash matches the freshly extracted
        // sub-network (and whose rewrite, if any, passes hash, decode and
        // simulation re-validation) stands in for the whole engine chain.
        // Everything else — stale records, hash mismatches, windows past
        // the interruption point — is re-run.
        let mut prefilled: Vec<Option<WindowOutcome>> = Vec::with_capacity(jobs.len());
        let mut replayed = 0usize;
        let mut stale = 0usize;
        for (part_idx, sub) in &jobs {
            match replay.remove(part_idx) {
                Some(record) => match self.replay_record(sub, &record) {
                    Some(outcome) => {
                        prefilled.push(Some(outcome));
                        replayed += 1;
                    }
                    None => {
                        prefilled.push(None);
                        stale += 1;
                    }
                },
                None => prefilled.push(None),
            }
        }
        // Records that matched no window at all (e.g. the window fell
        // under `min_window` after an options change that escaped the
        // fingerprint) are stale too.
        stale += replay.len();
        if let Some(resume) = report.resume.as_mut() {
            resume.windows_replayed = replayed;
            resume.stale_dropped = stale;
            resume.windows_rerun = jobs.len() - replayed;
        }

        // Phase 2: optimize windows on the worker pool, under the shared
        // wall-clock budget. An explicit budget wins; otherwise one is
        // derived from the deadline option (starting now, so extraction
        // time counts against it only through the caller's clock).
        let budget = if self.options.budget.is_unlimited() {
            Budget::from_deadline(self.options.deadline)
        } else {
            self.options.budget.clone()
        };
        let optimize_timer = Timer::start();
        let outcomes = self.optimize_windows(&jobs, &budget, prefilled, journal.as_ref());
        // The final checkpoint: make everything journaled so far durable
        // before stitching — on budget expiry this is the state a
        // subsequent `resume` picks up from.
        if let Some(journal) = &journal {
            journal.flush();
        }
        report.optimize_wall = optimize_timer.stop();

        // Phase 3: stitch accepted rewrites back, serially and in window
        // order (deterministic regardless of worker scheduling).
        let stitch_timer = Timer::start();
        let input = self
            .options
            .check_level
            .at_boundaries()
            .then(|| work.clone());
        let mut work = work;
        let mut per_engine = vec![EngineStats::default(); self.engines.len()];
        let mut latency = vec![Histogram::default(); self.engines.len()];
        for ((part_idx, sub), outcome) in jobs.iter().zip(outcomes) {
            for (total, s) in per_engine.iter_mut().zip(&outcome.per_engine) {
                total.merge(s);
            }
            for (total, h) in latency.iter_mut().zip(&outcome.latency) {
                total.merge(h);
            }
            report.bdd.merge(&outcome.bdd);
            report.sat.merge(&outcome.sat);
            report.sim.merge(&outcome.sim);
            report.check_violations.extend(outcome.violations);
            report.fault.merge(&outcome.fault);
            if outcome.gate_rejected {
                counters.gate_rejected += 1;
                continue;
            }
            let Some(rewrite) = outcome.rewrite else {
                counters.unchanged += 1;
                continue;
            };
            let part = &parts[*part_idx];
            match stitch_window(&mut work, part, &rewrite, sub.num_ands()) {
                Some(saved) => {
                    counters.improved += 1;
                    report.nodes_saved += saved;
                }
                None => counters.stitch_rejected += 1,
            }
        }
        let mut result = work.cleanup();

        // Boundary post-check: the stitched network must itself satisfy
        // every AIG invariant and agree with the input on 64 random
        // patterns. A violating result is discarded in favor of the
        // (already validated) cleaned input.
        if let Some(input) = input {
            let error =
                check_aig(&result).and_then(|()| sim_spot_check(&input, &result, SPOT_CHECK_SEED));
            if let Err(error) = error {
                let stage = if error.code == sbm_check::CheckCode::SimMismatch {
                    "sim"
                } else {
                    "post"
                };
                report.check_violations.push(CheckViolation {
                    engine: "pipeline".to_string(),
                    stage,
                    window: None,
                    error,
                });
                result = input;
            }
        }
        report.stitch_wall = stitch_timer.stop();

        report.windows_skipped = counters.skipped;
        report.windows_unchanged = counters.unchanged;
        report.windows_gate_rejected = counters.gate_rejected;
        report.windows_stitch_rejected = counters.stitch_rejected;
        report.windows_improved = counters.improved;
        report.engines = self
            .engines
            .iter()
            .zip(per_engine)
            .map(|(e, s)| (e.name().to_string(), s))
            .collect();
        report.engine_latency = self
            .engines
            .iter()
            .zip(latency)
            .map(|(e, h)| (e.name().to_string(), h))
            .collect();
        // Mirror each engine's genuine node-limit bailouts into the fault
        // summary, so one record covers both injected and organic faults.
        for (name, stats) in &report.engines {
            if stats.bailouts > 0 {
                report.fault.counts_mut(name).bailouts += stats.bailouts;
            }
        }
        if let Some(journal) = journal {
            if report.checkpoint_error.is_none() {
                report.checkpoint_error = journal.take_error();
            }
        }
        report.total_wall = total_timer.stop();

        // Never-worse guard at the network level.
        if result.num_ands() <= aig.num_ands() {
            Optimized {
                aig: result,
                stats: report,
            }
        } else {
            Optimized {
                aig: aig.cleanup(),
                stats: report,
            }
        }
    }

    /// Runs every job through the engine chain; outcome `i` belongs to
    /// job `i` whichever thread processed it. Slots prefilled with a
    /// replayed outcome are left untouched; freshly computed outcomes are
    /// appended to the journal as soon as they exist, so a crash after
    /// this point loses nothing that completed.
    fn optimize_windows(
        &self,
        jobs: &[(usize, Aig)],
        budget: &Budget,
        prefilled: Vec<Option<WindowOutcome>>,
        journal: Option<&JournalState>,
    ) -> Vec<WindowOutcome> {
        let threads = self.options.num_threads.max(1).min(jobs.len().max(1));
        if threads <= 1 {
            return jobs
                .iter()
                .zip(prefilled)
                .map(|((part_idx, sub), pre)| match pre {
                    Some(outcome) => outcome,
                    None => {
                        let outcome = self.optimize_window_isolated(sub, *part_idx, budget);
                        if let Some(journal) = journal {
                            self.journal_outcome(journal, *part_idx, sub, &outcome);
                        }
                        outcome
                    }
                })
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<WindowOutcome>>> =
            prefilled.into_iter().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some((part_idx, sub)) = jobs.get(i) else {
                        break;
                    };
                    if slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .is_some()
                    {
                        continue;
                    }
                    let outcome = self.optimize_window_isolated(sub, *part_idx, budget);
                    if let Some(journal) = journal {
                        self.journal_outcome(journal, *part_idx, sub, &outcome);
                    }
                    // Workers never unwind (optimize_window_isolated
                    // catches and degrades), so the lock cannot be
                    // poisoned by a sibling; into_inner keeps the write
                    // sound even if that invariant ever breaks.
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                match slot
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                {
                    Some(outcome) => outcome,
                    // The cursor hands out each index exactly once and
                    // every worker runs its claimed window to an outcome
                    // (faults degrade, they don't unwind).
                    None => unreachable!("worker left a window unprocessed"),
                }
            })
            .collect()
    }

    /// [`Pipeline::optimize_window`] behind a last-resort panic barrier:
    /// if anything below unwinds past the per-engine isolation (stitch
    /// preparation, bookkeeping, a non-engine bug), the window degrades to
    /// its original sub-network and the fault is attributed to
    /// `"pipeline"` — one window can never take down the run.
    fn optimize_window_isolated(
        &self,
        sub: &Aig,
        part_idx: usize,
        budget: &Budget,
    ) -> WindowOutcome {
        // Attribution boundary: set the thread's accumulators aside so
        // the window's exit drains measure exactly one window, then hand
        // the residue back afterwards. Simply discarding it would be
        // wrong at `num_threads = 1`, where windows run inline on the
        // caller's thread and the residue is the *caller's* pending
        // tally (e.g. the gradient scheduler between moves) — losing it
        // would make the run's counters depend on the thread count.
        let outer_bdd = drain_bdd_tally();
        let outer_sat = drain_sat_tally();
        let outer_sim = drain_sim_tally();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.optimize_window(sub, part_idx, budget)
        }))
        .unwrap_or_else(|_| {
            let mut fault = FaultSummary::default();
            fault.counts_mut("pipeline").panics += 1;
            fault.degraded_windows += 1;
            WindowOutcome {
                rewrite: None,
                gate_rejected: false,
                per_engine: vec![EngineStats::default(); self.engines.len()],
                latency: vec![Histogram::default(); self.engines.len()],
                // The interrupted window's partial tallies are discarded
                // below, so degraded work is never attributed.
                bdd: BddTally::default(),
                sat: SatTally::default(),
                sim: SimTally::default(),
                violations: Vec::new(),
                fault,
            }
        });
        // Normal exits leave the accumulators zeroed (the outcome drains
        // them); an unwound window leaves partial junk — drop it either
        // way before restoring the caller's residue.
        let _ = drain_bdd_tally();
        let _ = drain_sat_tally();
        let _ = drain_sim_tally();
        note_bdd_tally(&outer_bdd);
        note_sat_tally(&outer_sat);
        note_sim_tally(&outer_sim);
        outcome
    }

    /// Runs the engine chain on one window copy. Engines inside a worker
    /// are strictly serial — parallelism comes from window fan-out. At
    /// [`CheckLevel::Paranoid`] every engine invocation is bracketed by
    /// [`run_checked`], attributing any violation to this window.
    ///
    /// Every engine invocation is isolated: a panic is caught, a failed
    /// attempt is retried once at reduced effort ([`Engine::reduced_effort`]),
    /// and a second failure degrades the whole window to its original
    /// sub-network. An expired deadline stops the chain the same way.
    fn optimize_window(&self, sub: &Aig, part_idx: usize, budget: &Budget) -> WindowOutcome {
        // The caller ([`Pipeline::optimize_window_isolated`]) has already
        // zeroed the thread's BDD/SAT/sim accumulators, so the exit
        // drains below measure exactly one window.
        // Engines inside a worker run serially; window fan-out is the
        // parallelism, so the per-engine context always says 1 thread.
        let ctx = EngineCtx::new(budget)
            .with_check_level(self.options.check_level)
            .with_fault_plan(self.options.fault_plan.as_ref())
            .with_sim(self.options.sim.as_ref());
        let mut per_engine = vec![EngineStats::default(); self.engines.len()];
        let mut latency = vec![Histogram::default(); self.engines.len()];
        let mut violations = Vec::new();
        let mut fault = FaultSummary::default();
        let paranoid = self.options.check_level.per_engine();
        let mut cur = sub.clone();
        let mut degraded = false;
        for ((stats, hist), engine) in per_engine.iter_mut().zip(&mut latency).zip(&self.engines) {
            let name = engine.name();
            if budget.check().is_err() {
                fault.counts_mut(name).deadline_hits += 1;
                degraded = true;
                break;
            }
            // Attempt 0 runs the engine as configured; a failure is
            // retried once (attempt 1) on the engine's reduced-effort
            // ladder rung, or on the engine itself if it has none.
            let mut completed = None;
            for attempt in 0..2u8 {
                let reduced;
                let invoked: &dyn Engine = if attempt == 0 {
                    engine.as_ref()
                } else {
                    fault.counts_mut(name).retries += 1;
                    match engine.reduced_effort() {
                        Some(r) => {
                            reduced = r;
                            reduced.as_ref()
                        }
                        None => engine.as_ref(),
                    }
                };
                match self.run_isolated(
                    invoked,
                    name,
                    &cur,
                    &ctx,
                    part_idx,
                    attempt,
                    budget,
                    stats,
                    hist,
                    &mut violations,
                    &mut fault,
                    paranoid,
                ) {
                    Invocation::Completed(result) => {
                        completed = Some(result);
                        if attempt == 1 {
                            fault.counts_mut(name).retry_successes += 1;
                        }
                        break;
                    }
                    Invocation::Failed => {}
                    Invocation::DeadlineHit => {
                        degraded = true;
                        break;
                    }
                }
            }
            if degraded {
                break;
            }
            match completed {
                // Guarded acceptance: an engine that grows the window is
                // undone.
                Some(result) => {
                    if result.num_ands() <= cur.num_ands() {
                        cur = result;
                    }
                }
                // Both attempts failed: degrade the window.
                None => {
                    degraded = true;
                    break;
                }
            }
        }
        if degraded {
            fault.degraded_windows += 1;
        }
        if degraded || cur.num_ands() >= sub.num_ands() {
            return WindowOutcome {
                rewrite: None,
                gate_rejected: false,
                per_engine,
                latency,
                bdd: drain_bdd_tally(),
                sat: drain_sat_tally(),
                sim: drain_sim_tally(),
                violations,
                fault,
            };
        }
        if self.options.verify_windows
            && !equivalent_within_budgeted_sim(
                sub,
                &cur,
                self.options.conflict_budget,
                budget,
                self.options.sim.as_ref(),
            )
        {
            return WindowOutcome {
                rewrite: None,
                gate_rejected: true,
                per_engine,
                latency,
                bdd: drain_bdd_tally(),
                sat: drain_sat_tally(),
                sim: drain_sim_tally(),
                violations,
                fault,
            };
        }
        WindowOutcome {
            rewrite: Some(cur),
            gate_rejected: false,
            per_engine,
            latency,
            bdd: drain_bdd_tally(),
            sat: drain_sat_tally(),
            sim: drain_sim_tally(),
            violations,
            fault,
        }
    }

    /// One engine invocation inside a panic barrier, with deterministic
    /// fault injection when a [`FaultPlan`] is configured. Never unwinds.
    #[allow(clippy::too_many_arguments)]
    fn run_isolated(
        &self,
        engine: &dyn Engine,
        name: &str,
        cur: &Aig,
        ctx: &EngineCtx<'_>,
        part_idx: usize,
        attempt: u8,
        budget: &Budget,
        stats: &mut EngineStats,
        latency: &mut Histogram,
        violations: &mut Vec<CheckViolation>,
        fault: &mut FaultSummary,
        paranoid: bool,
    ) -> Invocation {
        // Roll the fault plan first: the roll is a pure function of
        // (seed, window, engine, attempt), so the ledger is identical for
        // every thread count.
        let mut inject = None;
        if let Some(plan) = &self.options.fault_plan {
            if let Some(kind) = plan.roll(part_idx, name, attempt) {
                fault.injected.push(InjectedFault {
                    engine: name.to_string(),
                    window: part_idx,
                    attempt,
                    kind,
                });
                match kind {
                    FaultKind::Bailout => {
                        fault.counts_mut(name).injected_bailouts += 1;
                        return Invocation::Failed;
                    }
                    FaultKind::Delay => {
                        fault.counts_mut(name).delays += 1;
                        std::thread::sleep(plan.delay);
                    }
                    FaultKind::Panic => inject = Some(kind),
                }
            }
        }
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if inject.is_some() {
                // Injected *inside* the barrier so the test exercises the
                // exact unwind path a genuine engine bug would take.
                inject_panic();
            }
            if paranoid {
                run_checked(engine, cur, ctx, Some(part_idx))
            } else {
                (engine.optimize(cur, ctx), Vec::new())
            }
        }));
        match caught {
            Ok((result, mut found)) => {
                violations.append(&mut found);
                latency.record(result.stats.busy);
                stats.merge(&result.stats);
                // A tripped budget means the result is partial: count the
                // hit and degrade rather than stitch half-optimized work.
                if budget.check().is_err() {
                    fault.counts_mut(name).deadline_hits += 1;
                    return Invocation::DeadlineHit;
                }
                Invocation::Completed(result.aig)
            }
            Err(_payload) => {
                // Injected and genuine panics are counted alike; the
                // ledger distinguishes them (injected ones are recorded).
                fault.counts_mut(name).panics += 1;
                Invocation::Failed
            }
        }
    }

    /// Reconstructs a [`WindowOutcome`] from a journal record, or `None`
    /// when the record is stale: the window's pre-hash changed, the
    /// rewrite payload fails its hash, its id-exact decode, or the
    /// 64-pattern simulation check against the freshly extracted
    /// sub-network. A stale record simply re-runs — replay never stitches
    /// anything it cannot re-validate.
    fn replay_record(&self, sub: &Aig, record: &WindowRecord) -> Option<WindowOutcome> {
        let pre_hash = fnv_hash(&encode_aig(sub).ok()?);
        if record.pre_hash != pre_hash {
            return None;
        }
        let fault = fault_from_record(&record.fault)?;
        let (rewrite, gate_rejected) = match &record.outcome {
            RecordOutcome::Unchanged | RecordOutcome::Degraded => (None, false),
            RecordOutcome::GateRejected => (None, true),
            RecordOutcome::Improved(bytes) => {
                if fnv_hash(bytes) != record.post_hash {
                    return None;
                }
                let rewrite = decode_aig(bytes).ok()?;
                if rewrite.num_ands() >= sub.num_ands()
                    || sim_spot_check(sub, &rewrite, SPOT_CHECK_SEED).is_err()
                {
                    return None;
                }
                (Some(rewrite), false)
            }
        };
        Some(WindowOutcome {
            rewrite,
            gate_rejected,
            per_engine: vec![EngineStats::default(); self.engines.len()],
            latency: vec![Histogram::default(); self.engines.len()],
            // A replayed window runs no engines, so it contributes no
            // BDD/SAT work: resumed runs legitimately report lower
            // tallies than the uninterrupted original.
            bdd: BddTally::default(),
            sat: SatTally::default(),
            sim: SimTally::default(),
            violations: Vec::new(),
            fault,
        })
    }

    /// Appends the durable record of a freshly computed window outcome.
    /// Deadline-hit windows are deliberately *not* recorded: their
    /// degradation is a timing artifact, and resume must re-run them to
    /// match what an uninterrupted run would have produced.
    fn journal_outcome(
        &self,
        journal: &JournalState,
        part_idx: usize,
        sub: &Aig,
        outcome: &WindowOutcome,
    ) {
        if outcome.fault.total(|c| c.deadline_hits) > 0 {
            return;
        }
        let Ok(pre_bytes) = encode_aig(sub) else {
            return;
        };
        let pre_hash = fnv_hash(&pre_bytes);
        let (rec_outcome, post_hash, gain) = if outcome.gate_rejected {
            (RecordOutcome::GateRejected, pre_hash, 0)
        } else if let Some(rewrite) = &outcome.rewrite {
            // Engines return graphs with private replacement state; the
            // journal stores the cleaned, canonical form. Emission walks
            // the same live cone either way, so stitching the cleaned
            // rewrite reproduces the identical spliced network.
            let cleaned = rewrite.cleanup();
            let Ok(bytes) = encode_aig(&cleaned) else {
                return;
            };
            let gain = sub.num_ands() as i64 - cleaned.num_ands() as i64;
            let post_hash = fnv_hash(&bytes);
            (RecordOutcome::Improved(bytes), post_hash, gain)
        } else if outcome.fault.degraded_windows > 0 {
            (RecordOutcome::Degraded, pre_hash, 0)
        } else {
            (RecordOutcome::Unchanged, pre_hash, 0)
        };
        journal.append(&WindowRecord {
            window: part_idx as u64,
            outcome: rec_outcome,
            pre_hash,
            post_hash,
            gain,
            fault: fault_to_record(&outcome.fault),
        });
    }
}

/// Shared journal appender: workers append concurrently behind a mutex;
/// the first I/O failure disables further appends and is surfaced as
/// [`PipelineReport::checkpoint_error`] instead of aborting the run.
struct JournalState {
    writer: Mutex<JournalWriter>,
    error: Mutex<Option<String>>,
}

impl JournalState {
    fn new(writer: JournalWriter) -> Self {
        JournalState {
            writer: Mutex::new(writer),
            error: Mutex::new(None),
        }
    }

    fn append(&self, record: &WindowRecord) {
        let mut error = self
            .error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if error.is_some() {
            return;
        }
        let result = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .append(record);
        if let Err(e) = result {
            *error = Some(e.to_string());
        }
    }

    fn flush(&self) {
        let mut error = self
            .error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if error.is_some() {
            return;
        }
        let result = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .flush();
        if let Err(e) = result {
            *error = Some(e.to_string());
        }
    }

    fn take_error(&self) -> Option<String> {
        self.error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

fn fnv_hash(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

fn fault_kind_tag(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::Panic => 0,
        FaultKind::Delay => 1,
        FaultKind::Bailout => 2,
    }
}

fn fault_kind_from_tag(tag: u8) -> Option<FaultKind> {
    match tag {
        0 => Some(FaultKind::Panic),
        1 => Some(FaultKind::Delay),
        2 => Some(FaultKind::Bailout),
        _ => None,
    }
}

/// Serializes a window's [`FaultSummary`] slice into the journal's
/// crate-independent mirror type.
fn fault_to_record(fault: &FaultSummary) -> FaultRecord {
    FaultRecord {
        per_engine: fault
            .per_engine
            .iter()
            .map(|(name, c)| {
                (
                    name.clone(),
                    [
                        c.panics as u64,
                        c.deadline_hits as u64,
                        c.bailouts as u64,
                        c.injected_bailouts as u64,
                        c.delays as u64,
                        c.retries as u64,
                        c.retry_successes as u64,
                    ],
                )
            })
            .collect(),
        degraded: fault.degraded_windows as u64,
        injected: fault
            .injected
            .iter()
            .map(|f| InjectedFaultRecord {
                engine: f.engine.clone(),
                window: f.window as u64,
                attempt: f.attempt,
                kind: fault_kind_tag(f.kind),
            })
            .collect(),
    }
}

/// Rehydrates a [`FaultSummary`] from its journal mirror; `None` on an
/// unknown fault-kind tag (a corrupt or future-format record — the
/// window re-runs instead).
fn fault_from_record(record: &FaultRecord) -> Option<FaultSummary> {
    let mut fault = FaultSummary {
        per_engine: Vec::new(),
        degraded_windows: usize::try_from(record.degraded).ok()?,
        injected: Vec::new(),
    };
    for (name, c) in &record.per_engine {
        *fault.counts_mut(name) = FaultCounts {
            panics: usize::try_from(c[0]).ok()?,
            deadline_hits: usize::try_from(c[1]).ok()?,
            bailouts: usize::try_from(c[2]).ok()?,
            injected_bailouts: usize::try_from(c[3]).ok()?,
            delays: usize::try_from(c[4]).ok()?,
            retries: usize::try_from(c[5]).ok()?,
            retry_successes: usize::try_from(c[6]).ok()?,
        };
    }
    for f in &record.injected {
        fault.injected.push(InjectedFault {
            engine: f.engine.clone(),
            window: usize::try_from(f.window).ok()?,
            attempt: f.attempt,
            kind: fault_kind_from_tag(f.kind)?,
        });
    }
    Some(fault)
}

/// Outcome of one isolated engine invocation.
enum Invocation {
    /// The engine ran to completion (its result may still be rejected by
    /// the never-worse or equivalence gates).
    Completed(Aig),
    /// The invocation panicked or was forced to bail out — retryable.
    Failed,
    /// The shared budget expired or was cancelled — the window degrades
    /// and the engine chain stops.
    DeadlineHit,
}

/// Runs a single engine over the whole network through the parallel
/// executor, discarding the report. The window limits are sized for
/// full-strength engine passes (each window is re-partitioned by the
/// engine's own options); callers needing the [`PipelineReport`] should
/// build a [`Pipeline`] directly.
pub fn parallel_pass(aig: &Aig, num_threads: usize, engine: impl Engine + 'static) -> Aig {
    let run = parallel_pass_report(aig, num_threads, engine);
    // The discarded report carried the run's drained BDD/SAT/sim
    // tallies: note them back into this thread's accumulators so they
    // surface in whatever measurement scope encloses this pass.
    note_bdd_tally(&run.stats.bdd);
    note_sat_tally(&run.stats.sat);
    note_sim_tally(&run.stats.sim);
    run.aig
}

/// [`parallel_pass`], keeping the report.
pub fn parallel_pass_report(
    aig: &Aig,
    num_threads: usize,
    engine: impl Engine + 'static,
) -> Optimized<PipelineReport> {
    parallel_pass_checked(aig, num_threads, CheckLevel::Off, engine)
}

/// [`parallel_pass_report`] with an explicit invariant-checking level —
/// the entry point used by the checked script mode
/// ([`crate::script::SbmOptions::check_level`]).
pub fn parallel_pass_checked(
    aig: &Aig,
    num_threads: usize,
    check_level: CheckLevel,
    engine: impl Engine + 'static,
) -> Optimized<PipelineReport> {
    let options = PipelineOptions {
        num_threads,
        check_level,
        ..pass_options()
    };
    Pipeline::new(options).with_engine(engine).run(aig)
}

/// [`parallel_pass_report`] under a shared wall-clock [`Budget`] — the
/// entry point the gradient engine uses for its threaded moves, so a
/// deadline set on the outer run reaches every inner pass.
pub fn parallel_pass_budgeted(
    aig: &Aig,
    num_threads: usize,
    budget: &Budget,
    engine: impl Engine + 'static,
) -> Optimized<PipelineReport> {
    parallel_pass_filtered(aig, num_threads, budget, None, engine)
}

/// [`parallel_pass_budgeted`] with the caller's shared [`SigService`]
/// threaded through to every inner engine invocation and the window
/// gate — the entry point the gradient engine uses so one service spans
/// an entire script run, nested moves included.
pub fn parallel_pass_filtered(
    aig: &Aig,
    num_threads: usize,
    budget: &Budget,
    sim: Option<&SigService>,
    engine: impl Engine + 'static,
) -> Optimized<PipelineReport> {
    let options = PipelineOptions {
        num_threads,
        budget: budget.clone(),
        sim: sim.cloned(),
        ..pass_options()
    };
    Pipeline::new(options).with_engine(engine).run(aig)
}

/// Window limits shared by the `parallel_pass*` helpers, sized for
/// full-strength engine passes (each window is re-partitioned by the
/// engine's own options).
pub(crate) fn pass_options() -> PipelineOptions {
    PipelineOptions {
        partition: PartitionOptions {
            max_nodes: 300,
            max_inputs: 12,
            max_levels: 16,
        },
        min_window: 2,
        ..PipelineOptions::default()
    }
}

/// Splices an optimized window copy back into `work`: the rewrite is
/// emitted over the window's (resolved) leaf literals and each root is
/// redirected to its new implementation. Returns the nodes saved, or
/// `None` when the splice is abandoned — emission created at least as many
/// nodes as the window held, or a root replacement would form a cycle
/// (abandoned garbage dies at the final cleanup).
fn stitch_window(work: &mut Aig, part: &Partition, rewrite: &Aig, saving: usize) -> Option<usize> {
    let leaf_lits: Vec<Lit> = part
        .leaves
        .iter()
        .map(|&n| work.resolve(Lit::new(n, false)))
        .collect();
    let nodes_before = work.num_nodes();
    let new_roots = emit_window(work, rewrite, &leaf_lits);
    let created = work.num_nodes() - nodes_before;
    if created >= saving {
        return None;
    }
    for (&root, &new_lit) in part.roots.iter().zip(&new_roots) {
        if work.resolve(Lit::new(root, false)) == work.resolve(new_lit) {
            continue;
        }
        work.replace(root, new_lit).ok()?;
    }
    Some(saving - created)
}

/// Emits `rewrite` into `work`, mapping rewrite input `i` to
/// `leaf_lits[i]`; returns the literals implementing the rewrite's
/// outputs. Structural hashing reuses existing nodes where possible.
fn emit_window(work: &mut Aig, rewrite: &Aig, leaf_lits: &[Lit]) -> Vec<Lit> {
    let mut map: HashMap<NodeId, Lit> = HashMap::new();
    map.insert(NodeId::CONST, Lit::FALSE);
    for (i, &input) in rewrite.inputs().iter().enumerate() {
        map.insert(input, leaf_lits[i]);
    }
    for id in rewrite.topo_order() {
        let (a, b) = rewrite.fanins(id);
        let fa = map[&a.node()].complement_if(a.is_complemented());
        let fb = map[&b.node()].complement_if(b.is_complemented());
        let lit = work.and(fa, fb);
        map.insert(id, lit);
    }
    rewrite
        .outputs()
        .iter()
        .map(|l| map[&l.node()].complement_if(l.is_complemented()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Refactor, Resub, Rewrite};
    use crate::verify::equivalent;

    fn test_aig(seed: u64) -> Aig {
        // A deterministic pseudo-random mass of redundant logic.
        let mut aig = Aig::new();
        let inputs: Vec<Lit> = (0..8).map(|_| aig.add_input()).collect();
        let mut state = seed | 1;
        let mut lits = inputs.clone();
        for _ in 0..120 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = lits[(state >> 33) as usize % lits.len()];
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = lits[(state >> 33) as usize % lits.len()];
            let f = match state % 3 {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                _ => aig.xor(a, b),
            };
            lits.push(f);
        }
        for l in lits.iter().rev().take(4) {
            aig.add_output(*l);
        }
        aig
    }

    fn small_window_pipeline(num_threads: usize) -> Pipeline {
        let options = PipelineOptions {
            num_threads,
            partition: PartitionOptions {
                max_nodes: 30,
                max_inputs: 10,
                max_levels: 12,
            },
            ..PipelineOptions::default()
        };
        Pipeline::new(options)
            .with_engine(Rewrite::default())
            .with_engine(Refactor::default())
            .with_engine(Resub::default())
    }

    #[test]
    fn serial_run_preserves_function_and_never_grows() {
        let aig = test_aig(42);
        let run = small_window_pipeline(1).run(&aig);
        assert!(run.aig.num_ands() <= aig.num_ands());
        assert!(equivalent(&aig, &run.aig), "pipeline broke equivalence");
        assert!(run.stats.is_consistent(), "{:?}", run.stats);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let aig = test_aig(7);
        let serial = small_window_pipeline(1).run(&aig);
        for threads in [2, 4] {
            let parallel = small_window_pipeline(threads).run(&aig);
            assert_eq!(
                serial.aig.num_ands(),
                parallel.aig.num_ands(),
                "thread count changed the result ({threads} threads)"
            );
            assert!(equivalent(&serial.aig, &parallel.aig));
            assert_eq!(
                serial.stats.windows_improved,
                parallel.stats.windows_improved
            );
            assert!(parallel.stats.is_consistent(), "{:?}", parallel.stats);
        }
    }

    #[test]
    fn report_counters_sum_across_workers() {
        let aig = test_aig(99);
        let run = small_window_pipeline(4).run(&aig);
        let report = &run.stats;
        assert!(report.is_consistent(), "{report:?}");
        assert_eq!(report.engines.len(), 3);
        // Every non-skipped window went through every engine exactly once:
        // merged tried counts must match what a serial rerun accumulates.
        let rerun = small_window_pipeline(1).run(&aig);
        for ((name_p, s_p), (name_s, s_s)) in report.engines.iter().zip(&rerun.stats.engines) {
            assert_eq!(name_p, name_s);
            assert_eq!(s_p.tried, s_s.tried, "{name_p} tried diverged");
            assert_eq!(s_p.accepted, s_s.accepted, "{name_p} accepted diverged");
            assert_eq!(s_p.gain, s_s.gain, "{name_p} gain diverged");
        }
    }

    #[test]
    fn tallies_and_counters_are_deterministic_across_thread_counts() {
        use crate::engine::{Bdiff, Mspf};
        let aig = test_aig(17);
        let make = |threads| {
            let options = PipelineOptions {
                num_threads: threads,
                partition: PartitionOptions {
                    max_nodes: 30,
                    max_inputs: 10,
                    max_levels: 12,
                },
                // A fresh service per run: the committed pattern set (and
                // so every filter decision) depends only on this run.
                sim: Some(SigService::default()),
                ..PipelineOptions::default()
            };
            Pipeline::new(options)
                .with_engine(Rewrite::default())
                .with_engine(Mspf::default())
                .with_engine(Bdiff::default())
                .run(&aig)
        };
        let serial = make(1);
        assert!(
            !serial.stats.bdd.is_zero(),
            "BDD engines must harvest recycled managers: {:?}",
            serial.stats.bdd
        );
        assert!(
            !serial.stats.sat.is_zero(),
            "the window equivalence gate must run solves: {:?}",
            serial.stats.sat
        );
        assert!(
            serial.stats.sim.filter_hits + serial.stats.sim.filter_misses > 0,
            "the configured service must screen candidates: {:?}",
            serial.stats.sim
        );
        for threads in [2, 4] {
            let parallel = make(threads);
            // Everything deterministic must match exactly; only the
            // timing fields (walls, busy, latency histograms) may differ.
            assert_eq!(serial.stats.bdd, parallel.stats.bdd, "{threads} threads");
            assert_eq!(serial.stats.sat, parallel.stats.sat, "{threads} threads");
            assert_eq!(serial.stats.sim, parallel.stats.sim, "{threads} threads");
            assert_eq!(serial.stats.windows_total, parallel.stats.windows_total);
            assert_eq!(
                serial.stats.windows_improved,
                parallel.stats.windows_improved
            );
            assert_eq!(serial.stats.nodes_saved, parallel.stats.nodes_saved);
            for ((name_s, s), (name_p, p)) in
                serial.stats.engines.iter().zip(&parallel.stats.engines)
            {
                assert_eq!(name_s, name_p);
                assert_eq!(s.tried, p.tried, "{name_s} tried");
                assert_eq!(s.accepted, p.accepted, "{name_s} accepted");
                assert_eq!(s.gain, p.gain, "{name_s} gain");
                assert_eq!(s.bailouts, p.bailouts, "{name_s} bailouts");
            }
        }
    }

    #[test]
    fn latency_histograms_record_every_completed_invocation() {
        let aig = test_aig(31);
        let run = small_window_pipeline(2).run(&aig);
        let report = &run.stats;
        assert_eq!(report.engine_latency.len(), report.engines.len());
        for ((name, _), (hist_name, hist)) in report.engines.iter().zip(&report.engine_latency) {
            assert_eq!(name, hist_name);
            // One sample per completed invocation: every non-skipped
            // window ran every engine exactly once on a healthy run.
            let processed = (report.windows_total - report.windows_skipped) as u64;
            assert_eq!(hist.count(), processed, "{name} histogram");
        }
    }

    #[test]
    fn run_report_round_trips_through_json() {
        let aig = test_aig(9);
        let run = small_window_pipeline(2).run(&aig);
        let mut report = run.stats.run_report();
        report.tool = "pipeline-test".to_string();
        report.scale = "unit".to_string();
        report.threads = 2;
        report.benchmarks.push("test_aig_9".to_string());
        let json = report.to_json();
        let back = RunReport::from_json(&json).expect("round trip");
        assert_eq!(report, back);
        // The projection carries the deterministic counters verbatim.
        assert_eq!(back.windows.total, run.stats.windows_total as u64);
        assert_eq!(back.engines.len(), run.stats.engines.len());
    }

    #[test]
    fn empty_pipeline_is_identity_modulo_cleanup() {
        let aig = test_aig(5);
        let run = Pipeline::new(PipelineOptions::default()).run(&aig);
        assert_eq!(run.aig.num_ands(), aig.cleanup().num_ands());
        assert_eq!(run.stats.windows_improved, 0);
        assert!(run.stats.is_consistent());
    }

    #[test]
    fn paranoid_check_matches_off_and_reports_clean() {
        let aig = test_aig(23);
        let plain = small_window_pipeline(2).run(&aig);
        let mut options = PipelineOptions {
            num_threads: 2,
            partition: PartitionOptions {
                max_nodes: 30,
                max_inputs: 10,
                max_levels: 12,
            },
            ..PipelineOptions::default()
        };
        options.check_level = CheckLevel::Paranoid;
        let checked = Pipeline::new(options)
            .with_engine(Rewrite::default())
            .with_engine(Refactor::default())
            .with_engine(Resub::default())
            .run(&aig);
        assert!(
            checked.stats.check_violations.is_empty(),
            "{:?}",
            checked.stats.check_violations
        );
        assert_eq!(plain.aig.num_ands(), checked.aig.num_ands());
        assert!(equivalent(&plain.aig, &checked.aig));
    }

    #[test]
    fn boundaries_check_rejects_corrupt_input() {
        let mut aig = test_aig(3);
        // A self-referential redirection: resolve()/cleanup() would loop.
        let victim = aig.outputs()[0].node();
        aig.corrupt_force_replace(victim, Lit::new(victim, true));
        let options = PipelineOptions {
            check_level: CheckLevel::Boundaries,
            ..PipelineOptions::default()
        };
        let run = Pipeline::new(options)
            .with_engine(Rewrite::default())
            .run(&aig);
        assert_eq!(run.stats.check_violations.len(), 1);
        let v = &run.stats.check_violations[0];
        assert_eq!(v.engine, "pipeline");
        assert_eq!(v.stage, "pre");
        assert_eq!(v.error.code, sbm_check::CheckCode::AigCyclicRedirect);
        // The corrupt input is passed through untouched.
        assert_eq!(run.aig.num_nodes(), aig.num_nodes());
    }

    #[test]
    fn report_displays_every_phase() {
        let aig = test_aig(11);
        let run = small_window_pipeline(2).run(&aig);
        let text = format!("{}", run.stats);
        for needle in ["pipeline:", "rewrite", "refactor", "resub", "phases:"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn zero_fault_run_reports_zero_faults() {
        let aig = test_aig(42);
        for threads in [1, 4] {
            let run = small_window_pipeline(threads).run(&aig);
            assert!(run.stats.fault.is_zero(), "{:?}", run.stats.fault);
        }
    }

    /// An engine whose first invocation per window unwinds (silently, via
    /// `resume_unwind`) and whose retry succeeds as the identity — the
    /// deterministic worst case for the retry ladder.
    struct FirstAttemptPanics {
        calls: AtomicUsize,
    }

    impl Engine for FirstAttemptPanics {
        fn name(&self) -> &str {
            "flaky"
        }

        fn optimize(&self, aig: &Aig, _ctx: &EngineCtx<'_>) -> crate::engine::EngineResult {
            if self.calls.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                std::panic::resume_unwind(Box::new("injected test panic"));
            }
            crate::engine::EngineResult {
                aig: aig.clone(),
                stats: EngineStats::default(),
            }
        }
    }

    /// An engine that always unwinds, on every attempt.
    struct AlwaysPanics;

    impl Engine for AlwaysPanics {
        fn name(&self) -> &str {
            "doomed"
        }

        fn optimize(&self, _aig: &Aig, _ctx: &EngineCtx<'_>) -> crate::engine::EngineResult {
            std::panic::resume_unwind(Box::new("injected test panic"));
        }
    }

    #[test]
    fn genuine_panics_are_isolated_and_retried() {
        let aig = test_aig(7);
        let options = PipelineOptions {
            partition: PartitionOptions {
                max_nodes: 30,
                max_inputs: 10,
                max_levels: 12,
            },
            ..PipelineOptions::default()
        };
        let run = Pipeline::new(options)
            .with_engine(FirstAttemptPanics {
                calls: AtomicUsize::new(0),
            })
            .run(&aig);
        let counts = run.stats.fault.counts("flaky");
        let processed = run.stats.windows_total - run.stats.windows_skipped;
        assert!(processed > 0, "test network produced no windows");
        // Every window: attempt 0 panics, the retry succeeds.
        assert_eq!(counts.panics, processed, "{:?}", run.stats.fault);
        assert_eq!(counts.retries, processed);
        assert_eq!(counts.retry_successes, processed);
        assert_eq!(run.stats.fault.degraded_windows, 0);
        assert!(run.stats.is_consistent(), "{:?}", run.stats);
        assert!(equivalent(&aig, &run.aig), "fault isolation broke function");
    }

    #[test]
    fn hopeless_engine_degrades_every_window_without_aborting() {
        let aig = test_aig(13);
        for threads in [1, 3] {
            let options = PipelineOptions {
                num_threads: threads,
                partition: PartitionOptions {
                    max_nodes: 30,
                    max_inputs: 10,
                    max_levels: 12,
                },
                ..PipelineOptions::default()
            };
            let run = Pipeline::new(options).with_engine(AlwaysPanics).run(&aig);
            let counts = run.stats.fault.counts("doomed");
            let processed = run.stats.windows_total - run.stats.windows_skipped;
            assert!(processed > 0);
            // Both attempts panic in every window; all degrade, none stitch.
            assert_eq!(counts.panics, 2 * processed);
            assert_eq!(counts.retries, processed);
            assert_eq!(counts.retry_successes, 0);
            assert_eq!(run.stats.fault.degraded_windows, processed);
            assert_eq!(run.stats.windows_improved, 0);
            assert!(run.stats.is_consistent(), "{:?}", run.stats);
            assert_eq!(run.aig.num_ands(), aig.cleanup().num_ands());
            assert!(equivalent(&aig, &run.aig));
        }
    }

    #[test]
    fn expired_deadline_degrades_gracefully() {
        let aig = test_aig(21);
        let options = PipelineOptions {
            num_threads: 2,
            partition: PartitionOptions {
                max_nodes: 30,
                max_inputs: 10,
                max_levels: 12,
            },
            deadline: Some(Duration::ZERO),
            ..PipelineOptions::default()
        };
        let run = Pipeline::new(options)
            .with_engine(Rewrite::default())
            .run(&aig);
        let processed = run.stats.windows_total - run.stats.windows_skipped;
        assert!(processed > 0);
        assert_eq!(run.stats.fault.total(|c| c.deadline_hits), processed);
        assert_eq!(run.stats.fault.degraded_windows, processed);
        assert_eq!(run.stats.windows_improved, 0);
        assert!(run.stats.is_consistent(), "{:?}", run.stats);
        assert!(equivalent(&aig, &run.aig));
    }

    #[test]
    fn external_cancellation_stops_the_run() {
        let aig = test_aig(33);
        let budget = Budget::cancellable();
        budget.cancel();
        let options = PipelineOptions {
            partition: PartitionOptions {
                max_nodes: 30,
                max_inputs: 10,
                max_levels: 12,
            },
            budget,
            ..PipelineOptions::default()
        };
        let run = Pipeline::new(options)
            .with_engine(Rewrite::default())
            .run(&aig);
        assert_eq!(run.stats.windows_improved, 0);
        assert!(run.stats.fault.total(|c| c.deadline_hits) > 0);
        assert!(equivalent(&aig, &run.aig));
    }

    #[test]
    fn injected_faults_are_ledgered_exactly() {
        let aig = test_aig(55);
        let plan = FaultPlan::uniform(0xFA_17, 0.25);
        for threads in [1, 4] {
            let options = PipelineOptions {
                num_threads: threads,
                partition: PartitionOptions {
                    max_nodes: 30,
                    max_inputs: 10,
                    max_levels: 12,
                },
                fault_plan: Some(plan),
                ..PipelineOptions::default()
            };
            let run = Pipeline::new(options)
                .with_engine(Rewrite::default())
                .with_engine(Resub::default())
                .run(&aig);
            assert!(
                !run.stats.fault.injected.is_empty(),
                "a 0.25 rate must fire on this network"
            );
            assert_fault_summary_matches_ledger(&run.stats);
            assert!(run.stats.is_consistent(), "{:?}", run.stats);
            assert!(equivalent(&aig, &run.aig), "injection broke function");
        }
    }

    /// Replays the injected-fault ledger against the per-engine counters
    /// — the acceptance criterion's "counts match the ledger exactly".
    /// Valid when no *genuine* faults occurred alongside the injection.
    pub(crate) fn assert_fault_summary_matches_ledger(report: &PipelineReport) {
        let fault = &report.fault;
        let count = |engine: &str, attempt: Option<u8>, kinds: &[FaultKind]| {
            fault
                .injected
                .iter()
                .filter(|f| {
                    f.engine == engine
                        && attempt.is_none_or(|a| f.attempt == a)
                        && kinds.contains(&f.kind)
                })
                .count()
        };
        let failures = [FaultKind::Panic, FaultKind::Bailout];
        for (name, c) in &fault.per_engine {
            assert_eq!(
                c.panics,
                count(name, None, &[FaultKind::Panic]),
                "{name} panics"
            );
            assert_eq!(
                c.delays,
                count(name, None, &[FaultKind::Delay]),
                "{name} delays"
            );
            assert_eq!(
                c.injected_bailouts,
                count(name, None, &[FaultKind::Bailout]),
                "{name} injected bailouts"
            );
            // A retry happens exactly when attempt 0 failed...
            assert_eq!(c.retries, count(name, Some(0), &failures), "{name} retries");
            // ...and succeeds unless attempt 1 was also shot down.
            assert_eq!(
                c.retry_successes,
                c.retries - count(name, Some(1), &failures),
                "{name} retry successes"
            );
        }
        // A window degrades exactly when some engine's retry failed (the
        // chain stops there, so at most one such entry exists per window).
        let mut degraded: Vec<usize> = fault
            .injected
            .iter()
            .filter(|f| f.attempt == 1 && failures.contains(&f.kind))
            .map(|f| f.window)
            .collect();
        degraded.sort_unstable();
        degraded.dedup();
        assert_eq!(fault.degraded_windows, degraded.len(), "degraded windows");
    }

    fn checkpoint_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sbm-pipeline-ck-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn checkpointed_pipeline(num_threads: usize, dir: &std::path::Path) -> Pipeline {
        let options = PipelineOptions {
            num_threads,
            partition: PartitionOptions {
                max_nodes: 30,
                max_inputs: 10,
                max_levels: 12,
            },
            checkpoint: Some(CheckpointOptions::new(dir)),
            ..PipelineOptions::default()
        };
        Pipeline::new(options)
            .with_engine(Rewrite::default())
            .with_engine(Refactor::default())
            .with_engine(Resub::default())
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_leaves_valid_files() {
        let aig = test_aig(42);
        let dir = checkpoint_dir("plain");
        let plain = small_window_pipeline(1).run(&aig);
        let run = checkpointed_pipeline(1, &dir).run(&aig);
        assert_eq!(run.stats.checkpoint_error, None);
        assert_eq!(run.aig.num_ands(), plain.aig.num_ands());
        assert!(equivalent(&plain.aig, &run.aig));
        // The snapshot holds the cleaned input, not the result.
        let (snap, meta) = read_aig_snapshot(&dir.join(SNAPSHOT_FILE)).expect("snapshot");
        assert_eq!(snap.num_ands(), aig.cleanup().num_ands());
        assert_eq!(
            meta.fingerprint,
            checkpointed_pipeline(1, &dir).config_fingerprint()
        );
        // Every processed (non-deadline) window has exactly one record.
        let readout = read_journal(&dir.join(JOURNAL_FILE), ReadMode::Strict).expect("journal");
        assert_eq!(
            readout.records.len(),
            run.stats.windows_total - run.stats.windows_skipped
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_of_completed_run_replays_everything_and_matches() {
        let aig = test_aig(7);
        let dir = checkpoint_dir("complete");
        let full = checkpointed_pipeline(1, &dir).run(&aig);
        let resumed = checkpointed_pipeline(1, &dir).resume().expect("resume");
        let summary = resumed.stats.resume.expect("summary");
        assert_eq!(summary.windows_rerun, 0, "{summary}");
        assert_eq!(summary.stale_dropped, 0, "{summary}");
        assert_eq!(
            summary.windows_replayed,
            full.stats.windows_total - full.stats.windows_skipped
        );
        assert_eq!(resumed.aig.num_ands(), full.aig.num_ands());
        assert!(equivalent(&full.aig, &resumed.aig));
        assert!(resumed.stats.is_consistent(), "{:?}", resumed.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_reruns_windows_missing_from_a_truncated_journal() {
        let aig = test_aig(13);
        let dir = checkpoint_dir("truncated");
        let full = checkpointed_pipeline(1, &dir).run(&aig);
        // Drop the trailing half of the journal's records, then garble the
        // new tail — lenient resume must truncate and re-run the missing
        // windows, converging on the uninterrupted result.
        let path = dir.join(JOURNAL_FILE);
        let readout = read_journal(&path, ReadMode::Strict).expect("journal");
        assert!(readout.records.len() >= 2, "need multiple windows");
        let mut frames = Vec::new();
        let bytes = std::fs::read(&path).expect("read journal");
        let mut off = 20; // header
        while off < bytes.len() {
            let len =
                u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
                    as usize;
            let end = off + 8 + len;
            frames.push(off..end);
            off = end;
        }
        let keep = frames.len() / 2;
        let mut cut = bytes[..frames[keep].start].to_vec();
        cut.extend_from_slice(&[0xAB; 5]); // torn tail
        std::fs::write(&path, &cut).expect("truncate journal");
        let resumed = checkpointed_pipeline(1, &dir).resume().expect("resume");
        let summary = resumed.stats.resume.expect("summary");
        assert_eq!(summary.records_replayed, keep);
        assert_eq!(summary.torn_dropped, 1);
        assert!(summary.windows_rerun > 0, "{summary}");
        assert_eq!(resumed.aig.num_ands(), full.aig.num_ands());
        assert!(equivalent(&full.aig, &resumed.aig));
        // The resumed run appended fresh records for the re-run windows:
        // a second resume replays everything again.
        let again = checkpointed_pipeline(1, &dir)
            .resume()
            .expect("resume again");
        assert_eq!(again.stats.resume.expect("summary").windows_rerun, 0);
        assert_eq!(again.aig.num_ands(), full.aig.num_ands());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_across_thread_counts_matches_serial() {
        let aig = test_aig(77);
        let dir = checkpoint_dir("threads");
        let full = checkpointed_pipeline(1, &dir).run(&aig);
        for threads in [2, 4] {
            let resumed = checkpointed_pipeline(threads, &dir)
                .resume()
                .expect("resume");
            assert_eq!(resumed.aig.num_ands(), full.aig.num_ands());
            assert!(equivalent(&full.aig, &resumed.aig));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_configuration_drift_with_typed_error() {
        let aig = test_aig(3);
        let dir = checkpoint_dir("drift");
        checkpointed_pipeline(1, &dir).run(&aig);
        // Same checkpoint, different engine chain.
        let options = PipelineOptions {
            checkpoint: Some(CheckpointOptions::new(&dir)),
            ..PipelineOptions::default()
        };
        let err = Pipeline::new(options)
            .with_engine(Rewrite::default())
            .resume()
            .expect_err("config drift");
        assert!(
            matches!(err, JournalError::ConfigMismatch { .. }),
            "{err:?}"
        );
        // No checkpoint configured at all.
        let err = small_window_pipeline(1).resume().expect_err("unconfigured");
        assert!(matches!(err, JournalError::NotConfigured), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_surfaces_file_corruption_as_typed_errors() {
        let aig = test_aig(11);
        let dir = checkpoint_dir("corrupt");
        checkpointed_pipeline(1, &dir).run(&aig);
        let snap_path = dir.join(SNAPSHOT_FILE);
        let pristine = std::fs::read(&snap_path).expect("read snapshot");

        // Flipped payload byte: CRC failure, never a bogus network.
        let mut bytes = pristine.clone();
        bytes[40] ^= 0xFF;
        std::fs::write(&snap_path, &bytes).expect("write");
        let err = checkpointed_pipeline(1, &dir).resume().expect_err("crc");
        assert!(
            matches!(
                err,
                JournalError::BadCrc {
                    context: "snapshot"
                }
            ),
            "{err:?}"
        );

        // Flipped version byte: reported as a version problem.
        let mut bytes = pristine.clone();
        bytes[8] ^= 0xFF;
        std::fs::write(&snap_path, &bytes).expect("write");
        let err = checkpointed_pipeline(1, &dir)
            .resume()
            .expect_err("version");
        assert!(
            matches!(err, JournalError::VersionMismatch { .. }),
            "{err:?}"
        );

        // Truncated snapshot: torn tail.
        std::fs::write(&snap_path, &pristine[..pristine.len() / 2]).expect("write");
        let err = checkpointed_pipeline(1, &dir).resume().expect_err("torn");
        assert!(matches!(err, JournalError::TornTail), "{err:?}");

        // Restore the snapshot, then corrupt a NON-final journal frame:
        // that is damage, not a torn append, so even the lenient resume
        // read refuses it.
        std::fs::write(&snap_path, &pristine).expect("write");
        let wal_path = dir.join(JOURNAL_FILE);
        let mut wal = std::fs::read(&wal_path).expect("read journal");
        assert!(wal.len() > 40, "journal too small to corrupt mid-file");
        wal[29] ^= 0xFF; // inside the first frame's payload
        std::fs::write(&wal_path, &wal).expect("write");
        let err = checkpointed_pipeline(1, &dir)
            .resume()
            .expect_err("wal crc");
        assert!(
            matches!(
                err,
                JournalError::BadCrc {
                    context: "journal record"
                }
            ),
            "{err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_fault_injected_run_resumes_equivalent() {
        let aig = test_aig(21);
        let dir = checkpoint_dir("faults");
        let plan = FaultPlan {
            seed: 0xFEED,
            panic_rate: 0.3,
            delay_rate: 0.2,
            bailout_rate: 0.3,
            delay: Duration::from_millis(1),
        };
        let make = |dir: &std::path::Path| {
            let options = PipelineOptions {
                partition: PartitionOptions {
                    max_nodes: 30,
                    max_inputs: 10,
                    max_levels: 12,
                },
                fault_plan: Some(plan),
                checkpoint: Some(CheckpointOptions::new(dir)),
                ..PipelineOptions::default()
            };
            Pipeline::new(options)
                .with_engine(Rewrite::default())
                .with_engine(Refactor::default())
                .with_engine(Resub::default())
        };
        let full = make(&dir).run(&aig);
        assert_eq!(full.stats.checkpoint_error, None);
        let resumed = make(&dir).resume().expect("resume");
        assert_eq!(resumed.aig.num_ands(), full.aig.num_ands());
        assert!(equivalent(&full.aig, &resumed.aig));
        // Replayed fault slices reconstruct the same ledger and the same
        // degraded-window count as the original run.
        assert_eq!(resumed.stats.fault.injected, full.stats.fault.injected);
        assert_eq!(
            resumed.stats.fault.degraded_windows,
            full.stats.fault.degraded_windows
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
