//! The parallel partition executor.
//!
//! The paper's engines are all *windowed*: they evaluate Boolean
//! transformations "locally on limited size circuit partitions"
//! (Section III-B), which makes the partitions natural units of parallel
//! work. This module implements that idea end to end:
//!
//! 1. **Extract** — the network is split into disjoint windows by
//!    [`sbm_aig::window::partition`] and each viable window is copied out
//!    as a standalone AIG ([`Partition::extract`]);
//! 2. **Optimize** — windows are fanned out to a scoped worker pool
//!    ([`std::thread::scope`]); each worker claims windows from a shared
//!    atomic cursor and runs the configured [`Engine`] sequence on its
//!    window, with BDD managers recycled through the worker's thread-local
//!    pool ([`crate::bdd_bridge::pooled_manager`]);
//! 3. **Stitch** — accepted rewrites are spliced back serially, guarded by
//!    a functional-equivalence gate (simulation signatures plus a budgeted
//!    SAT miter, [`crate::verify::equivalent_within`]) and a
//!    created-versus-saved node count.
//!
//! The result is deterministic: workers only transform private window
//! copies, outcomes are collected by window index, and stitching happens
//! in partition order — so `num_threads = 4` produces the same network as
//! `num_threads = 1`, only faster.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sbm_aig::window::{partition, Partition, PartitionOptions};
use sbm_aig::{Aig, Lit, NodeId};
use sbm_check::{check_aig, sim_spot_check, CheckLevel};

use crate::engine::{
    run_checked, CheckViolation, Engine, EngineStats, OptContext, Optimized, SPOT_CHECK_SEED,
};
use crate::verify::equivalent_within;

/// Knobs of the parallel partition executor.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Worker threads (1 = run the whole pipeline serially).
    pub num_threads: usize,
    /// Window extraction limits.
    pub partition: PartitionOptions,
    /// Windows with fewer internal nodes are skipped outright.
    pub min_window: usize,
    /// Gate every accepted window rewrite with a functional-equivalence
    /// check before stitching.
    pub verify_windows: bool,
    /// SAT conflict budget of the per-window equivalence gate; rewrites
    /// the solver cannot prove within the budget are rejected.
    pub conflict_budget: u64,
    /// Invariant-checking level: `Off` (default) adds no work,
    /// `Boundaries` validates the run's input and output networks,
    /// `Paranoid` additionally brackets every engine invocation inside
    /// every window with [`run_checked`]. Violations are collected in
    /// [`PipelineReport::check_violations`]; a violating rewrite is
    /// discarded, never stitched.
    pub check_level: CheckLevel,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            num_threads: 1,
            partition: PartitionOptions::default(),
            min_window: 4,
            verify_windows: true,
            conflict_budget: 10_000,
            check_level: CheckLevel::Off,
        }
    }
}

/// Why a window did not make it into the stitched result. Each processed
/// window lands in exactly one category (see
/// [`PipelineReport::is_consistent`]).
#[derive(Debug, Clone, Copy, Default)]
struct WindowCounters {
    skipped: usize,
    unchanged: usize,
    gate_rejected: usize,
    stitch_rejected: usize,
    improved: usize,
}

/// Observability record of one [`Pipeline::run`].
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Windows produced by partitioning.
    pub windows_total: usize,
    /// Windows below `min_window`, without roots, or not extractable.
    pub windows_skipped: usize,
    /// Windows where the engine sequence found no improvement.
    pub windows_unchanged: usize,
    /// Windows whose rewrite failed the functional-equivalence gate.
    pub windows_gate_rejected: usize,
    /// Windows whose splice was abandoned (created ≥ saved nodes, or a
    /// replacement would have formed a cycle).
    pub windows_stitch_rejected: usize,
    /// Windows stitched into the result.
    pub windows_improved: usize,
    /// AND nodes saved by stitched windows (pre-cleanup estimate).
    pub nodes_saved: usize,
    /// Per-engine statistics, in chain order, merged across all windows.
    /// `wall` sums busy time over workers, so it can exceed `optimize_wall`
    /// when `num_threads > 1`.
    pub engines: Vec<(String, EngineStats)>,
    /// Wall-clock of the window-extraction phase.
    pub extract_wall: Duration,
    /// Wall-clock of the parallel optimization phase.
    pub optimize_wall: Duration,
    /// Wall-clock of the serial stitching phase (incl. final cleanup).
    pub stitch_wall: Duration,
    /// End-to-end wall-clock of the run.
    pub total_wall: Duration,
    /// Invariant violations caught by the configured
    /// [`PipelineOptions::check_level`], in detection order: each names
    /// the engine (or `"pipeline"` for run boundaries), the stage and,
    /// for `Paranoid`, the window that first violated an invariant.
    pub check_violations: Vec<CheckViolation>,
}

impl PipelineReport {
    /// Accumulates `other` into `self`: window counters and phase times
    /// sum; per-engine stats merge by name (appended when new).
    pub fn merge(&mut self, other: &PipelineReport) {
        self.windows_total += other.windows_total;
        self.windows_skipped += other.windows_skipped;
        self.windows_unchanged += other.windows_unchanged;
        self.windows_gate_rejected += other.windows_gate_rejected;
        self.windows_stitch_rejected += other.windows_stitch_rejected;
        self.windows_improved += other.windows_improved;
        self.nodes_saved += other.nodes_saved;
        for (name, stats) in &other.engines {
            match self.engines.iter_mut().find(|(n, _)| n == name) {
                Some((_, total)) => total.merge(stats),
                None => self.engines.push((name.clone(), *stats)),
            }
        }
        self.extract_wall += other.extract_wall;
        self.optimize_wall += other.optimize_wall;
        self.stitch_wall += other.stitch_wall;
        self.total_wall += other.total_wall;
        self.check_violations
            .extend(other.check_violations.iter().cloned());
    }

    /// Every window lands in exactly one outcome bucket.
    pub fn is_consistent(&self) -> bool {
        self.windows_skipped
            + self.windows_unchanged
            + self.windows_gate_rejected
            + self.windows_stitch_rejected
            + self.windows_improved
            == self.windows_total
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline: {} windows ({} improved, {} unchanged, {} skipped, \
             {} gate-rejected, {} stitch-rejected), {} nodes saved",
            self.windows_total,
            self.windows_improved,
            self.windows_unchanged,
            self.windows_skipped,
            self.windows_gate_rejected,
            self.windows_stitch_rejected,
            self.nodes_saved,
        )?;
        for (name, s) in &self.engines {
            writeln!(
                f,
                "  {:<10} windows {:>5}  tried {:>6}  accepted {:>6}  \
                 gain {:>6}  bailouts {:>4}  busy {:.3}s",
                name,
                s.windows,
                s.tried,
                s.accepted,
                s.gain,
                s.bailouts,
                s.wall.as_secs_f64(),
            )?;
        }
        write!(
            f,
            "  phases: extract {:.3}s, optimize {:.3}s, stitch {:.3}s, total {:.3}s",
            self.extract_wall.as_secs_f64(),
            self.optimize_wall.as_secs_f64(),
            self.stitch_wall.as_secs_f64(),
            self.total_wall.as_secs_f64(),
        )?;
        for v in &self.check_violations {
            write!(f, "\n  CHECK VIOLATION: {v}")?;
        }
        Ok(())
    }
}

/// What one worker produced for one window.
struct WindowOutcome {
    /// The accepted rewrite (smaller and, if gating is on, proved
    /// equivalent); `None` when the window stays as-is.
    rewrite: Option<Aig>,
    gate_rejected: bool,
    per_engine: Vec<EngineStats>,
    /// Invariant violations from `Paranoid` per-engine bracketing
    /// (empty below that level).
    violations: Vec<CheckViolation>,
}

/// A configurable engine sequence scheduled over disjoint windows.
pub struct Pipeline {
    engines: Vec<Box<dyn Engine>>,
    options: PipelineOptions,
}

impl Pipeline {
    /// An empty pipeline (no engines) with the given options.
    pub fn new(options: PipelineOptions) -> Self {
        Pipeline {
            engines: Vec::new(),
            options,
        }
    }

    /// Appends an engine to the per-window sequence (builder style).
    #[must_use]
    pub fn with_engine(mut self, engine: impl Engine + 'static) -> Self {
        self.engines.push(Box::new(engine));
        self
    }

    /// The configured engine names, in chain order.
    pub fn engine_names(&self) -> Vec<&str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// Runs the extract → optimize → stitch pipeline. The result is never
    /// larger than the input and identical for every `num_threads`.
    pub fn run(&self, aig: &Aig) -> Optimized<PipelineReport> {
        let total_start = Instant::now();
        let mut report = PipelineReport::default();
        let mut counters = WindowCounters::default();

        // Boundary pre-check runs on the RAW input, before cleanup:
        // cleanup itself resolves replacement chains and would loop on a
        // corrupted redirection map. A corrupt input is returned as-is —
        // there is nothing safe the pipeline can do with it.
        if self.options.check_level.at_boundaries() {
            if let Err(error) = check_aig(aig) {
                report.check_violations.push(CheckViolation {
                    engine: "pipeline".to_string(),
                    stage: "pre",
                    window: None,
                    error,
                });
                report.total_wall = total_start.elapsed();
                return Optimized {
                    aig: aig.clone(),
                    stats: report,
                };
            }
        }
        let work = aig.cleanup();

        // Phase 1: extract windows.
        let extract_start = Instant::now();
        let parts = partition(&work, &self.options.partition);
        report.windows_total = parts.len();
        let mut jobs: Vec<(usize, Aig)> = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            if part.size() < self.options.min_window
                || part.leaves.is_empty()
                || part.roots.is_empty()
            {
                counters.skipped += 1;
                continue;
            }
            match part.extract(&work) {
                Some(sub) => jobs.push((i, sub)),
                None => counters.skipped += 1,
            }
        }
        report.extract_wall = extract_start.elapsed();

        // Phase 2: optimize windows on the worker pool.
        let optimize_start = Instant::now();
        let outcomes = self.optimize_windows(&jobs);
        report.optimize_wall = optimize_start.elapsed();

        // Phase 3: stitch accepted rewrites back, serially and in window
        // order (deterministic regardless of worker scheduling).
        let stitch_start = Instant::now();
        let input = self
            .options
            .check_level
            .at_boundaries()
            .then(|| work.clone());
        let mut work = work;
        let mut per_engine = vec![EngineStats::default(); self.engines.len()];
        for ((part_idx, sub), outcome) in jobs.iter().zip(outcomes) {
            for (total, s) in per_engine.iter_mut().zip(&outcome.per_engine) {
                total.merge(s);
            }
            report.check_violations.extend(outcome.violations);
            if outcome.gate_rejected {
                counters.gate_rejected += 1;
                continue;
            }
            let Some(rewrite) = outcome.rewrite else {
                counters.unchanged += 1;
                continue;
            };
            let part = &parts[*part_idx];
            match stitch_window(&mut work, part, &rewrite, sub.num_ands()) {
                Some(saved) => {
                    counters.improved += 1;
                    report.nodes_saved += saved;
                }
                None => counters.stitch_rejected += 1,
            }
        }
        let mut result = work.cleanup();

        // Boundary post-check: the stitched network must itself satisfy
        // every AIG invariant and agree with the input on 64 random
        // patterns. A violating result is discarded in favor of the
        // (already validated) cleaned input.
        if let Some(input) = input {
            let error =
                check_aig(&result).and_then(|()| sim_spot_check(&input, &result, SPOT_CHECK_SEED));
            if let Err(error) = error {
                let stage = if error.code == sbm_check::CheckCode::SimMismatch {
                    "sim"
                } else {
                    "post"
                };
                report.check_violations.push(CheckViolation {
                    engine: "pipeline".to_string(),
                    stage,
                    window: None,
                    error,
                });
                result = input;
            }
        }
        report.stitch_wall = stitch_start.elapsed();

        report.windows_skipped = counters.skipped;
        report.windows_unchanged = counters.unchanged;
        report.windows_gate_rejected = counters.gate_rejected;
        report.windows_stitch_rejected = counters.stitch_rejected;
        report.windows_improved = counters.improved;
        report.engines = self
            .engines
            .iter()
            .zip(per_engine)
            .map(|(e, s)| (e.name().to_string(), s))
            .collect();
        report.total_wall = total_start.elapsed();

        // Never-worse guard at the network level.
        if result.num_ands() <= aig.num_ands() {
            Optimized {
                aig: result,
                stats: report,
            }
        } else {
            Optimized {
                aig: aig.cleanup(),
                stats: report,
            }
        }
    }

    /// Runs every job through the engine chain; outcome `i` belongs to
    /// job `i` whichever thread processed it.
    fn optimize_windows(&self, jobs: &[(usize, Aig)]) -> Vec<WindowOutcome> {
        let threads = self.options.num_threads.max(1).min(jobs.len().max(1));
        if threads <= 1 {
            return jobs
                .iter()
                .map(|(part_idx, sub)| self.optimize_window(sub, *part_idx))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<WindowOutcome>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some((part_idx, sub)) = jobs.get(i) else {
                        break;
                    };
                    let outcome = self.optimize_window(sub, *part_idx);
                    // A poisoned slot means another worker panicked while
                    // holding the lock; the data (an Option write) is
                    // still sound, so keep going — scope() re-raises the
                    // panic anyway.
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                match slot
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                {
                    Some(outcome) => outcome,
                    // The cursor hands out each index exactly once and
                    // scope() propagates worker panics before this runs.
                    None => unreachable!("worker left a window unprocessed"),
                }
            })
            .collect()
    }

    /// Runs the engine chain on one window copy. Engines inside a worker
    /// are strictly serial — parallelism comes from window fan-out. At
    /// [`CheckLevel::Paranoid`] every engine invocation is bracketed by
    /// [`run_checked`], attributing any violation to this window.
    fn optimize_window(&self, sub: &Aig, part_idx: usize) -> WindowOutcome {
        let mut ctx = OptContext::with_threads(1);
        let mut per_engine = vec![EngineStats::default(); self.engines.len()];
        let mut violations = Vec::new();
        let paranoid = self.options.check_level.per_engine();
        let mut cur = sub.clone();
        for (stats, engine) in per_engine.iter_mut().zip(&self.engines) {
            let result = if paranoid {
                let (result, mut found) =
                    run_checked(engine.as_ref(), &cur, &mut ctx, Some(part_idx));
                violations.append(&mut found);
                result
            } else {
                engine.run(&cur, &mut ctx)
            };
            stats.merge(&result.stats);
            // Guarded acceptance: an engine that grows the window is undone.
            if result.aig.num_ands() <= cur.num_ands() {
                cur = result.aig;
            }
        }
        if cur.num_ands() >= sub.num_ands() {
            return WindowOutcome {
                rewrite: None,
                gate_rejected: false,
                per_engine,
                violations,
            };
        }
        if self.options.verify_windows
            && !equivalent_within(sub, &cur, self.options.conflict_budget)
        {
            return WindowOutcome {
                rewrite: None,
                gate_rejected: true,
                per_engine,
                violations,
            };
        }
        WindowOutcome {
            rewrite: Some(cur),
            gate_rejected: false,
            per_engine,
            violations,
        }
    }
}

/// Runs a single engine over the whole network through the parallel
/// executor, discarding the report. The window limits are sized for
/// full-strength engine passes (each window is re-partitioned by the
/// engine's own options); callers needing the [`PipelineReport`] should
/// build a [`Pipeline`] directly.
pub fn parallel_pass(aig: &Aig, num_threads: usize, engine: impl Engine + 'static) -> Aig {
    parallel_pass_report(aig, num_threads, engine).aig
}

/// [`parallel_pass`], keeping the report.
pub fn parallel_pass_report(
    aig: &Aig,
    num_threads: usize,
    engine: impl Engine + 'static,
) -> Optimized<PipelineReport> {
    parallel_pass_checked(aig, num_threads, CheckLevel::Off, engine)
}

/// [`parallel_pass_report`] with an explicit invariant-checking level —
/// the entry point used by the checked script mode
/// ([`crate::script::SbmOptions::check_level`]).
pub fn parallel_pass_checked(
    aig: &Aig,
    num_threads: usize,
    check_level: CheckLevel,
    engine: impl Engine + 'static,
) -> Optimized<PipelineReport> {
    let options = PipelineOptions {
        num_threads,
        partition: PartitionOptions {
            max_nodes: 300,
            max_inputs: 12,
            max_levels: 16,
        },
        min_window: 2,
        check_level,
        ..PipelineOptions::default()
    };
    Pipeline::new(options).with_engine(engine).run(aig)
}

/// Splices an optimized window copy back into `work`: the rewrite is
/// emitted over the window's (resolved) leaf literals and each root is
/// redirected to its new implementation. Returns the nodes saved, or
/// `None` when the splice is abandoned — emission created at least as many
/// nodes as the window held, or a root replacement would form a cycle
/// (abandoned garbage dies at the final cleanup).
fn stitch_window(work: &mut Aig, part: &Partition, rewrite: &Aig, saving: usize) -> Option<usize> {
    let leaf_lits: Vec<Lit> = part
        .leaves
        .iter()
        .map(|&n| work.resolve(Lit::new(n, false)))
        .collect();
    let nodes_before = work.num_nodes();
    let new_roots = emit_window(work, rewrite, &leaf_lits);
    let created = work.num_nodes() - nodes_before;
    if created >= saving {
        return None;
    }
    for (&root, &new_lit) in part.roots.iter().zip(&new_roots) {
        if work.resolve(Lit::new(root, false)) == work.resolve(new_lit) {
            continue;
        }
        work.replace(root, new_lit).ok()?;
    }
    Some(saving - created)
}

/// Emits `rewrite` into `work`, mapping rewrite input `i` to
/// `leaf_lits[i]`; returns the literals implementing the rewrite's
/// outputs. Structural hashing reuses existing nodes where possible.
fn emit_window(work: &mut Aig, rewrite: &Aig, leaf_lits: &[Lit]) -> Vec<Lit> {
    let mut map: HashMap<NodeId, Lit> = HashMap::new();
    map.insert(NodeId::CONST, Lit::FALSE);
    for (i, &input) in rewrite.inputs().iter().enumerate() {
        map.insert(input, leaf_lits[i]);
    }
    for id in rewrite.topo_order() {
        let (a, b) = rewrite.fanins(id);
        let fa = map[&a.node()].complement_if(a.is_complemented());
        let fb = map[&b.node()].complement_if(b.is_complemented());
        let lit = work.and(fa, fb);
        map.insert(id, lit);
    }
    rewrite
        .outputs()
        .iter()
        .map(|l| map[&l.node()].complement_if(l.is_complemented()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Refactor, Resub, Rewrite};
    use crate::verify::equivalent;

    fn test_aig(seed: u64) -> Aig {
        // A deterministic pseudo-random mass of redundant logic.
        let mut aig = Aig::new();
        let inputs: Vec<Lit> = (0..8).map(|_| aig.add_input()).collect();
        let mut state = seed | 1;
        let mut lits = inputs.clone();
        for _ in 0..120 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = lits[(state >> 33) as usize % lits.len()];
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = lits[(state >> 33) as usize % lits.len()];
            let f = match state % 3 {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                _ => aig.xor(a, b),
            };
            lits.push(f);
        }
        for l in lits.iter().rev().take(4) {
            aig.add_output(*l);
        }
        aig
    }

    fn small_window_pipeline(num_threads: usize) -> Pipeline {
        let options = PipelineOptions {
            num_threads,
            partition: PartitionOptions {
                max_nodes: 30,
                max_inputs: 10,
                max_levels: 12,
            },
            ..PipelineOptions::default()
        };
        Pipeline::new(options)
            .with_engine(Rewrite::default())
            .with_engine(Refactor::default())
            .with_engine(Resub::default())
    }

    #[test]
    fn serial_run_preserves_function_and_never_grows() {
        let aig = test_aig(42);
        let run = small_window_pipeline(1).run(&aig);
        assert!(run.aig.num_ands() <= aig.num_ands());
        assert!(equivalent(&aig, &run.aig), "pipeline broke equivalence");
        assert!(run.stats.is_consistent(), "{:?}", run.stats);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let aig = test_aig(7);
        let serial = small_window_pipeline(1).run(&aig);
        for threads in [2, 4] {
            let parallel = small_window_pipeline(threads).run(&aig);
            assert_eq!(
                serial.aig.num_ands(),
                parallel.aig.num_ands(),
                "thread count changed the result ({threads} threads)"
            );
            assert!(equivalent(&serial.aig, &parallel.aig));
            assert_eq!(
                serial.stats.windows_improved,
                parallel.stats.windows_improved
            );
            assert!(parallel.stats.is_consistent(), "{:?}", parallel.stats);
        }
    }

    #[test]
    fn report_counters_sum_across_workers() {
        let aig = test_aig(99);
        let run = small_window_pipeline(4).run(&aig);
        let report = &run.stats;
        assert!(report.is_consistent(), "{report:?}");
        assert_eq!(report.engines.len(), 3);
        // Every non-skipped window went through every engine exactly once:
        // merged tried counts must match what a serial rerun accumulates.
        let rerun = small_window_pipeline(1).run(&aig);
        for ((name_p, s_p), (name_s, s_s)) in report.engines.iter().zip(&rerun.stats.engines) {
            assert_eq!(name_p, name_s);
            assert_eq!(s_p.tried, s_s.tried, "{name_p} tried diverged");
            assert_eq!(s_p.accepted, s_s.accepted, "{name_p} accepted diverged");
            assert_eq!(s_p.gain, s_s.gain, "{name_p} gain diverged");
        }
    }

    #[test]
    fn empty_pipeline_is_identity_modulo_cleanup() {
        let aig = test_aig(5);
        let run = Pipeline::new(PipelineOptions::default()).run(&aig);
        assert_eq!(run.aig.num_ands(), aig.cleanup().num_ands());
        assert_eq!(run.stats.windows_improved, 0);
        assert!(run.stats.is_consistent());
    }

    #[test]
    fn paranoid_check_matches_off_and_reports_clean() {
        let aig = test_aig(23);
        let plain = small_window_pipeline(2).run(&aig);
        let mut options = PipelineOptions {
            num_threads: 2,
            partition: PartitionOptions {
                max_nodes: 30,
                max_inputs: 10,
                max_levels: 12,
            },
            ..PipelineOptions::default()
        };
        options.check_level = CheckLevel::Paranoid;
        let checked = Pipeline::new(options)
            .with_engine(Rewrite::default())
            .with_engine(Refactor::default())
            .with_engine(Resub::default())
            .run(&aig);
        assert!(
            checked.stats.check_violations.is_empty(),
            "{:?}",
            checked.stats.check_violations
        );
        assert_eq!(plain.aig.num_ands(), checked.aig.num_ands());
        assert!(equivalent(&plain.aig, &checked.aig));
    }

    #[test]
    fn boundaries_check_rejects_corrupt_input() {
        let mut aig = test_aig(3);
        // A self-referential redirection: resolve()/cleanup() would loop.
        let victim = aig.outputs()[0].node();
        aig.corrupt_force_replace(victim, Lit::new(victim, true));
        let options = PipelineOptions {
            check_level: CheckLevel::Boundaries,
            ..PipelineOptions::default()
        };
        let run = Pipeline::new(options)
            .with_engine(Rewrite::default())
            .run(&aig);
        assert_eq!(run.stats.check_violations.len(), 1);
        let v = &run.stats.check_violations[0];
        assert_eq!(v.engine, "pipeline");
        assert_eq!(v.stage, "pre");
        assert_eq!(v.error.code, sbm_check::CheckCode::AigCyclicRedirect);
        // The corrupt input is passed through untouched.
        assert_eq!(run.aig.num_nodes(), aig.num_nodes());
    }

    #[test]
    fn report_displays_every_phase() {
        let aig = test_aig(11);
        let run = small_window_pipeline(2).run(&aig);
        let text = format!("{}", run.stats);
        for needle in ["pipeline:", "rewrite", "refactor", "resub", "phases:"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
