//! # The Scalable Boolean Method (SBM) framework
//!
//! This crate implements the four optimization engines of *“Scalable
//! Boolean Methods in a Modern Synthesis Flow”* (Testa et al., DATE 2019),
//! plus the state-of-the-art baseline transformations the paper composes
//! them with:
//!
//! | Engine | Module | Paper section |
//! |---|---|---|
//! | Boolean-difference resubstitution | [`bdiff`] | III |
//! | Gradient-based AIG optimization | [`gradient`] | IV-A |
//! | Heterogeneous elimination for kerneling | [`hetero`] | IV-B |
//! | MSPF computation with BDDs | [`mspf`] | IV-C |
//!
//! Baseline moves (used inside the gradient engine and the `resyn2rs`-style
//! reference script): [`rewrite`], [`refactor`], [`resub`], [`balance`],
//! plus SAT sweeping and redundancy removal from [`sbm_sat`].
//!
//! The top-level entry points live in [`script`]: [`script::resyn2rs`]
//! (the ABC-style baseline the paper compares against) and
//! [`script::sbm_script`] (the paper's Boolean resynthesis flow,
//! Section V-A).
//!
//! Every entry point can run in *checked mode*
//! ([`CheckLevel::Boundaries`] or [`CheckLevel::Paranoid`], via
//! [`pipeline::PipelineOptions::check_level`] /
//! [`script::SbmOptions::check_level`]): engine invocations are then
//! bracketed by the structural invariant checks of [`sbm_check`] plus a
//! 64-pattern simulation spot-check, and any violation is reported with
//! the engine and partition that first caused it
//! ([`engine::CheckViolation`]).
//!
//! Execution is fault-tolerant: a wall-clock deadline or cancellation
//! ([`sbm_budget::Budget`], via [`pipeline::PipelineOptions::deadline`] /
//! [`script::SbmOptions::deadline`]) stops engines cooperatively, window
//! panics are caught and degraded to the original sub-network, failed
//! attempts are retried once at reduced effort, and everything is tallied
//! in [`pipeline::FaultSummary`]. Deterministic fault injection
//! ([`sbm_check::FaultPlan`]) exercises every one of those paths in tests.
//!
//! Runs are also crash-safe: with [`pipeline::CheckpointOptions`] /
//! [`script::SbmOptions::checkpoint_dir`] set, progress is persisted to a
//! CRC-checked snapshot plus write-ahead window journal (`sbm_journal`),
//! and [`pipeline::Pipeline::resume`] / [`script::sbm_script_resumable`]
//! pick an interrupted run up where it left off.
//!
//! # Example
//!
//! ```
//! use sbm_aig::Aig;
//! use sbm_core::script::{sbm_script, SbmOptions};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let c = aig.add_input();
//! // Redundant structure: (a & b) | (a & b & c) == a & b.
//! let ab = aig.and(a, b);
//! let abc = aig.and(ab, c);
//! let f = aig.or(ab, abc);
//! aig.add_output(f);
//! let optimized = sbm_script(&aig, &SbmOptions::default());
//! assert!(optimized.num_ands() <= aig.num_ands());
//! ```

pub use sbm_check::{CheckCode, CheckError, CheckLevel};

pub mod balance;
pub mod bdd_bridge;
pub mod bdiff;
pub mod engine;
pub mod gradient;
pub mod hetero;
pub mod mspf;
pub mod pipeline;
pub mod refactor;
pub mod resub;
pub mod rewrite;
pub mod script;
pub mod verify;
