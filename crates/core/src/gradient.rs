//! Gradient-based AIG optimization (paper Section IV-A).
//!
//! Instead of a fixed script, the engine *learns* which moves pay off on
//! the current design: moves have costs, cheap moves are tried first, the
//! engine "records the gain of the best one" and prioritizes "moves with
//! high success likelihood on the current design … in the next
//! iterations". A cost budget bounds the total work; the budget is
//! auto-extended while the gain gradient over the last `k` iterations
//! exceeds a threshold, and the engine "terminates early if the gain
//! gradient is 0 over the last k iterations".

use sbm_aig::Aig;
use sbm_budget::Budget;
use sbm_sim::SigService;

use crate::balance::balance;
use crate::bdiff::{boolean_difference_resub_filtered, BdiffOptions};
use crate::hetero::{hetero_eliminate_kernel_impl, HeteroOptions};
use crate::mspf::{mspf_optimize_filtered, MspfOptions};
use crate::refactor::{refactor_impl, RefactorOptions};
use crate::resub::{resub_impl, ResubOptions};
use crate::rewrite::{rewrite_impl, RewriteOptions};

/// The move set of the gradient engine (paper: "rewriting, refactoring,
/// resub, mspf resub and eliminate, simplify & kerneling"; all but
/// rewriting come in low- and high-effort variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Move {
    /// Cut-based rewriting.
    Rewrite,
    /// Cone collapsing + refactoring (low/high effort).
    Refactor { high_effort: bool },
    /// Windowed resubstitution (low/high effort).
    Resub { high_effort: bool },
    /// MSPF-based resubstitution with BDDs (low/high effort).
    MspfResub { high_effort: bool },
    /// Eliminate, simplify & kerneling (low/high effort).
    EliminateKernel { high_effort: bool },
    /// Boolean-difference resubstitution.
    BooleanDifference,
    /// AND-tree balancing (zero-cost housekeeping move).
    Balance,
}

impl Move {
    /// The runtime-complexity cost of the move (unit-cost moves are tried
    /// first; higher-cost moves enter once cheap moves hit a local
    /// minimum).
    pub fn cost(self) -> u32 {
        match self {
            Move::Balance => 1,
            Move::Rewrite => 1,
            Move::Resub { high_effort: false } => 1,
            Move::Refactor { high_effort: false } => 2,
            Move::Resub { high_effort: true } => 2,
            Move::EliminateKernel { high_effort: false } => 3,
            Move::Refactor { high_effort: true } => 3,
            Move::MspfResub { high_effort: false } => 4,
            Move::EliminateKernel { high_effort: true } => 5,
            Move::MspfResub { high_effort: true } => 6,
            Move::BooleanDifference => 6,
        }
    }

    fn refactor_options(high_effort: bool) -> RefactorOptions {
        RefactorOptions {
            max_support: if high_effort { 14 } else { 10 },
            min_mffc: if high_effort { 2 } else { 4 },
            ..Default::default()
        }
    }

    fn resub_options(high_effort: bool) -> ResubOptions {
        ResubOptions {
            max_divisors: if high_effort { 48 } else { 16 },
            try_pairs: high_effort,
            ..Default::default()
        }
    }

    fn mspf_options(high_effort: bool) -> MspfOptions {
        let mut opts = MspfOptions::default();
        if !high_effort {
            opts.partition.max_nodes = 120;
            opts.partition.max_inputs = 10;
            opts.max_candidates = 16;
        }
        opts
    }

    fn hetero_options(high_effort: bool) -> HeteroOptions {
        let mut opts = HeteroOptions::default();
        if !high_effort {
            opts.thresholds = vec![-1, 5, 50];
            opts.extract_rounds = 8;
        }
        opts
    }

    /// Applies the move serially, returning the optimized network.
    pub fn apply(self, aig: &Aig) -> Aig {
        self.apply_budgeted(aig, 1, &Budget::unlimited()).0
    }

    /// Applies the move with `num_threads` workers: window-based moves are
    /// fanned out through the parallel partition executor
    /// ([`crate::pipeline::parallel_pass`]), and the eliminate/kernel move
    /// enables its internal threshold-sweep threads. At `num_threads = 1`
    /// this is exactly [`Move::apply`].
    pub fn apply_threaded(self, aig: &Aig, num_threads: usize) -> Aig {
        self.apply_budgeted(aig, num_threads, &Budget::unlimited())
            .0
    }

    /// [`Move::apply_threaded`] with a shared [`Budget`]: BDD-backed moves
    /// observe the deadline/cancellation and stop early, returning the best
    /// network found so far. Also returns the BDD node-limit bailouts the
    /// move incurred (always 0 for algebraic moves, which never build
    /// BDDs), so the gradient engine's ledger covers its inner mspf/bdiff
    /// invocations.
    pub(crate) fn apply_budgeted(
        self,
        aig: &Aig,
        num_threads: usize,
        budget: &Budget,
    ) -> (Aig, u64) {
        self.apply_filtered(aig, num_threads, budget, None)
    }

    /// [`Move::apply_budgeted`] with an optional simulation-signature
    /// service threaded into the BDD-backed moves (mspf, bdiff) for
    /// candidate prefiltering.
    pub(crate) fn apply_filtered(
        self,
        aig: &Aig,
        num_threads: usize,
        budget: &Budget,
        sim: Option<&SigService>,
    ) -> (Aig, u64) {
        // With the signature service active the move runs on the calling
        // thread, monolithically, at *every* thread count: the windowed
        // fan-out produces different (weaker, window-clipped) BDD moves
        // and different filter counters than the monolithic pass, so
        // routing by thread count would make both the result and the
        // sim-filter tallies depend on `num_threads`. Parallelism still
        // comes from the script's own windowed steps.
        if num_threads > 1 && sim.is_none() {
            return self.apply_parallel_budgeted(aig, num_threads, budget, sim);
        }
        match self {
            Move::Balance => (balance(aig), 0),
            Move::Rewrite => (rewrite_impl(aig, &RewriteOptions::default()).0, 0),
            Move::Refactor { high_effort } => (
                refactor_impl(aig, &Move::refactor_options(high_effort)).0,
                0,
            ),
            Move::Resub { high_effort } => {
                (resub_impl(aig, &Move::resub_options(high_effort)).0, 0)
            }
            Move::MspfResub { high_effort } => {
                let (aig, stats) =
                    mspf_optimize_filtered(aig, &Move::mspf_options(high_effort), budget, sim);
                (aig, stats.bailouts as u64)
            }
            Move::EliminateKernel { high_effort } => (
                hetero_eliminate_kernel_impl(aig, &Move::hetero_options(high_effort)).0,
                0,
            ),
            Move::BooleanDifference => {
                let (aig, stats) =
                    boolean_difference_resub_filtered(aig, &BdiffOptions::default(), budget, sim);
                (aig, stats.bailouts as u64)
            }
        }
    }

    fn apply_parallel_budgeted(
        self,
        aig: &Aig,
        num_threads: usize,
        budget: &Budget,
        sim: Option<&SigService>,
    ) -> (Aig, u64) {
        use crate::engine;
        use crate::pipeline::parallel_pass_filtered;
        fn split(run: crate::engine::Optimized<crate::pipeline::PipelineReport>) -> (Aig, u64) {
            let bailouts = run
                .stats
                .engines
                .iter()
                .map(|(_, s)| s.bailouts as u64)
                .sum();
            // The inner report is discarded here — note its BDD/SAT/sim
            // tallies back into this thread's accumulators so the work
            // still surfaces in the scheduler's enclosing scope.
            crate::bdd_bridge::note_bdd_tally(&run.stats.bdd);
            sbm_sat::note_sat_tally(&run.stats.sat);
            sbm_sim::note_sim_tally(&run.stats.sim);
            (run.aig, bailouts)
        }
        match self {
            Move::Balance => (balance(aig), 0),
            Move::Rewrite => split(parallel_pass_filtered(
                aig,
                num_threads,
                budget,
                sim,
                engine::Rewrite::default(),
            )),
            Move::Refactor { high_effort } => split(parallel_pass_filtered(
                aig,
                num_threads,
                budget,
                sim,
                engine::Refactor {
                    options: Move::refactor_options(high_effort),
                },
            )),
            Move::Resub { high_effort } => split(parallel_pass_filtered(
                aig,
                num_threads,
                budget,
                sim,
                engine::Resub {
                    options: Move::resub_options(high_effort),
                },
            )),
            Move::MspfResub { high_effort } => split(parallel_pass_filtered(
                aig,
                num_threads,
                budget,
                sim,
                engine::Mspf {
                    options: Move::mspf_options(high_effort),
                },
            )),
            Move::EliminateKernel { high_effort } => {
                let mut opts = Move::hetero_options(high_effort);
                // Hetero's parallelism is an internal threshold sweep, not
                // window fan-out; keep it tied to the actual thread count.
                opts.parallel = num_threads > 1;
                (hetero_eliminate_kernel_impl(aig, &opts).0, 0)
            }
            Move::BooleanDifference => split(parallel_pass_filtered(
                aig,
                num_threads,
                budget,
                sim,
                engine::Bdiff::default(),
            )),
        }
    }
}

/// All moves, cheapest first.
pub fn all_moves() -> Vec<Move> {
    let mut moves = vec![
        Move::Balance,
        Move::Rewrite,
        Move::Resub { high_effort: false },
        Move::Refactor { high_effort: false },
        Move::Resub { high_effort: true },
        Move::EliminateKernel { high_effort: false },
        Move::Refactor { high_effort: true },
        Move::MspfResub { high_effort: false },
        Move::EliminateKernel { high_effort: true },
        Move::MspfResub { high_effort: true },
        Move::BooleanDifference,
    ];
    moves.sort_by_key(|m| m.cost());
    moves
}

/// Best-result selection policy (paper Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Try moves in priority order, keep the first that gains — "the first
    /// successful move is picked, and all other moves are not tried". The
    /// paper's chosen runtime/QoR tradeoff.
    Waterfall,
    /// Try every affordable move and keep the best gain.
    Parallel,
}

/// Options for the gradient engine.
#[derive(Debug, Clone)]
pub struct GradientOptions {
    /// Total move-cost budget (paper's best value: 100).
    pub budget: u32,
    /// Gradient window: the last `k` iterations (paper: 20).
    pub k: u32,
    /// Minimum gain gradient (fraction of network size gained over the
    /// last `k` iterations) for the budget to auto-extend (paper: 3%).
    pub min_gain_gradient: f64,
    /// Extra budget granted when the gradient stays above the threshold.
    pub budget_extension: u32,
    /// Move selection policy.
    pub selection: Selection,
    /// Worker threads for move application (1 = strictly serial); see
    /// [`Move::apply_threaded`].
    pub num_threads: usize,
}

impl Default for GradientOptions {
    fn default() -> Self {
        GradientOptions {
            budget: 100,
            k: 20,
            min_gain_gradient: 0.03,
            budget_extension: 50,
            selection: Selection::Waterfall,
            num_threads: 1,
        }
    }
}

/// Per-move success statistics recorded during optimization.
#[derive(Debug, Clone, Default)]
pub struct MoveRecord {
    /// Times the move was tried.
    pub tried: u64,
    /// Times it produced gain > 0.
    pub succeeded: u64,
    /// Total nodes gained.
    pub total_gain: u64,
    /// BDD node-limit bailouts incurred by the move's inner mspf/bdiff
    /// invocations (always 0 for algebraic moves).
    pub bailouts: u64,
}

/// Statistics of a gradient-engine run.
#[derive(Debug, Clone, Default)]
pub struct GradientStats {
    /// Iterations executed.
    pub iterations: u32,
    /// Budget actually spent.
    pub spent: u32,
    /// Budget extensions granted.
    pub extensions: u32,
    /// Per-move records, in `all_moves()` order.
    pub records: Vec<(Move, MoveRecord)>,
    /// Whether the run terminated early on a flat gradient.
    pub early_termination: bool,
}

#[cfg(test)]
pub(crate) fn gradient_optimize_impl(aig: &Aig, options: &GradientOptions) -> (Aig, GradientStats) {
    gradient_optimize_filtered(aig, options, &Budget::unlimited(), None)
}

pub(crate) fn gradient_optimize_filtered(
    aig: &Aig,
    options: &GradientOptions,
    budget: &Budget,
    sim: Option<&SigService>,
) -> (Aig, GradientStats) {
    let mut current = aig.cleanup();
    let mut stats = GradientStats {
        records: all_moves()
            .into_iter()
            .map(|m| (m, MoveRecord::default()))
            .collect(),
        ..Default::default()
    };
    let mut cost_budget = options.budget;
    let mut spent = 0u32;
    let mut recent_gains: Vec<usize> = Vec::new();
    // The cost tier currently unlocked: cheap moves first (paper: "the
    // optimization engine starts by trying unit cost moves").
    let mut unlocked_cost = 1u32;

    while spent < cost_budget {
        // The wall-clock budget overrides the cost budget: a deadline or
        // cancellation ends the run with the best network found so far.
        if budget.check().is_err() {
            break;
        }
        stats.iterations += 1;
        let size_before = current.num_ands();
        if size_before == 0 {
            break;
        }
        // Order affordable moves by success score (desc), then cost (asc).
        let mut candidates: Vec<Move> = all_moves()
            .into_iter()
            .filter(|m| m.cost() <= unlocked_cost)
            .collect();
        let score = |m: &Move, records: &[(Move, MoveRecord)]| -> f64 {
            let Some((_, rec)) = records.iter().find(|(mm, _)| mm == m) else {
                unreachable!("stats tracks a record for every move");
            };
            if rec.tried == 0 {
                0.5 // unexplored moves get a neutral prior
            } else {
                rec.succeeded as f64 / rec.tried as f64
            }
        };
        candidates.sort_by(|a, b| {
            score(b, &stats.records)
                .total_cmp(&score(a, &stats.records))
                .then(a.cost().cmp(&b.cost()))
        });

        let mut best: Option<(Move, Aig, usize)> = None;
        for mv in candidates {
            if spent + mv.cost() > cost_budget {
                continue;
            }
            if budget.check().is_err() {
                break;
            }
            let (result, bailouts) = mv.apply_filtered(&current, options.num_threads, budget, sim);
            spent += mv.cost();
            let gain = size_before.saturating_sub(result.num_ands());
            let Some((_, rec)) = stats.records.iter_mut().find(|(mm, _)| *mm == mv) else {
                unreachable!("stats tracks a record for every move");
            };
            rec.tried += 1;
            rec.bailouts += bailouts;
            if gain > 0 {
                rec.succeeded += 1;
                rec.total_gain += gain as u64;
            }
            let improves = best.as_ref().map_or(gain > 0, |&(_, _, g)| gain > g);
            if improves {
                best = Some((mv, result, gain));
                if options.selection == Selection::Waterfall {
                    break; // first successful move wins
                }
            }
            if spent >= cost_budget {
                break;
            }
        }

        let gain = match best {
            Some((_, result, gain)) => {
                current = result;
                gain
            }
            None => 0,
        };
        recent_gains.push(gain);
        if gain == 0 {
            // Local minimum for the unlocked tier: introduce higher-cost
            // moves, or stop if everything is unlocked and flat.
            let max_cost = all_moves().iter().map(|m| m.cost()).max().unwrap_or(1);
            if unlocked_cost < max_cost {
                unlocked_cost += 1;
                continue;
            }
        }
        // Gain gradient over the last k iterations.
        if recent_gains.len() >= options.k as usize {
            let window: usize = recent_gains.iter().rev().take(options.k as usize).sum();
            let gradient = window as f64 / current.num_ands().max(1) as f64;
            if window == 0 {
                stats.early_termination = true;
                break;
            }
            if gradient >= options.min_gain_gradient && spent >= cost_budget {
                cost_budget += options.budget_extension;
                stats.extensions += 1;
            }
        }
    }
    stats.spent = spent;
    (current.cleanup(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_sat::{EquivalenceOracle, MiterOracle, Verdict};

    fn messy_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let d = aig.add_input();
        // Redundant, unbalanced, shareable logic.
        let t1 = aig.and(a, b);
        let t2 = aig.and(a, !b);
        let redundant = aig.or(t1, t2); // == a
        let chain1 = aig.and(redundant, c);
        let chain2 = aig.and(chain1, d);
        let dup1 = aig.and(a, c);
        let dup2 = aig.and(dup1, d); // == chain2
        let f = aig.or(chain2, dup2);
        aig.add_output(f);
        aig
    }

    #[test]
    fn optimizes_messy_network() {
        let aig = messy_aig();
        let (optimized, stats) = gradient_optimize_impl(&aig, &GradientOptions::default());
        assert!(
            optimized.num_ands() < aig.num_ands(),
            "{} -> {} ({stats:?})",
            aig.num_ands(),
            optimized.num_ands()
        );
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
        // The messy network reduces to a & c & d = 2 AND nodes.
        assert_eq!(optimized.num_ands(), 2);
    }

    #[test]
    fn gain_is_never_negative() {
        let aig = messy_aig();
        let (optimized, _) = gradient_optimize_impl(&aig, &GradientOptions::default());
        assert!(optimized.num_ands() <= aig.num_ands());
    }

    #[test]
    fn respects_budget() {
        let aig = messy_aig();
        let opts = GradientOptions {
            budget: 3,
            budget_extension: 0,
            ..Default::default()
        };
        let (_, stats) = gradient_optimize_impl(&aig, &opts);
        assert!(stats.spent <= 3);
    }

    #[test]
    fn parallel_selection_no_worse_than_waterfall() {
        let aig = messy_aig();
        let (wf, _) = gradient_optimize_impl(&aig, &GradientOptions::default());
        let (par, _) = gradient_optimize_impl(
            &aig,
            &GradientOptions {
                selection: Selection::Parallel,
                ..Default::default()
            },
        );
        assert!(par.num_ands() <= wf.num_ands());
    }

    #[test]
    fn early_termination_on_flat_gradient() {
        // An already-optimal network: the engine must terminate without
        // burning the whole budget on a flat gradient.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        let opts = GradientOptions {
            budget: 10_000,
            k: 5,
            ..Default::default()
        };
        let (optimized, stats) = gradient_optimize_impl(&aig, &opts);
        assert_eq!(optimized.num_ands(), 1);
        assert!(stats.spent < 10_000, "engine must not burn the budget");
    }
}
