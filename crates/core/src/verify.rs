//! Verification helpers.
//!
//! The paper verifies every benchmark "with an industrial formal
//! equivalence checking flow" (Section V-C); this module provides the
//! equivalent for this repository: fast random-simulation screening
//! followed by a full SAT miter proof.

use sbm_aig::sim::Signatures;
use sbm_aig::Aig;
use sbm_budget::Budget;
use sbm_sat::{EquivalenceOracle, MiterOracle, Verdict};
use sbm_sim::{record_filter_hits, record_filter_misses, SigService};

/// Checks combinational equivalence: random simulation first (cheap
/// refutation), then a SAT miter for the proof.
///
/// # Panics
///
/// Panics if the interfaces differ (input/output counts).
pub fn equivalent(a: &Aig, b: &Aig) -> bool {
    simulation_screen(a, b) && MiterOracle::new().check(a, b) == Verdict::Equivalent
}

/// Budgeted equivalence gate for per-window checks: random-simulation
/// screen, then a SAT miter limited to `conflict_budget` conflicts.
/// Returns `false` when the solver runs out of budget — a window rewrite
/// that cannot be proved quickly is rejected, never trusted.
///
/// # Panics
///
/// Panics if the interfaces differ (input/output counts).
pub fn equivalent_within(a: &Aig, b: &Aig, conflict_budget: u64) -> bool {
    simulation_screen(a, b)
        && MiterOracle::new()
            .with_conflict_budget(Some(conflict_budget))
            .check(a, b)
            == Verdict::Equivalent
}

/// [`equivalent_within`] under a shared wall-clock [`Budget`]: the miter
/// solver additionally stops at the deadline or on cancellation. As with
/// a blown conflict budget, an interrupted proof counts as *not*
/// equivalent — the rewrite is rejected, never trusted.
///
/// # Panics
///
/// Panics if the interfaces differ (input/output counts).
pub fn equivalent_within_budgeted(a: &Aig, b: &Aig, conflict_budget: u64, budget: &Budget) -> bool {
    equivalent_within_budgeted_sim(a, b, conflict_budget, budget, None)
}

/// [`equivalent_within_budgeted`] wired into a shared [`SigService`]:
/// the cheap screen uses the service's pattern set (seeded block plus
/// every committed counterexample, so past refutations are replayed for
/// free), and a SAT refutation hands its witness assignment back to the
/// service ([`SigService::record_cex`]) to sharpen future screens. The
/// screen is sound — it refutes only on a genuine output mismatch — so
/// the gate's verdicts are identical with and without a service; only
/// how much SAT work the verdicts cost differs.
///
/// # Panics
///
/// Panics if the interfaces differ (input/output counts).
pub fn equivalent_within_budgeted_sim(
    a: &Aig,
    b: &Aig,
    conflict_budget: u64,
    budget: &Budget,
    sim: Option<&SigService>,
) -> bool {
    let Some(svc) = sim else {
        return simulation_screen(a, b)
            && MiterOracle::new()
                .with_conflict_budget(Some(conflict_budget))
                .with_budget(budget.clone())
                .check(a, b)
                == Verdict::Equivalent;
    };
    if !service_screen(svc, a, b) {
        record_filter_hits(1);
        return false;
    }
    record_filter_misses(1);
    match MiterOracle::new()
        .with_conflict_budget(Some(conflict_budget))
        .with_budget(budget.clone())
        .check(a, b)
    {
        Verdict::Equivalent => true,
        Verdict::Refuted(witness) => {
            svc.record_cex(&witness);
            false
        }
        Verdict::Unknown => false,
    }
}

/// [`simulation_screen`] over the service's committed pattern set:
/// interface-aligned input rows make output signatures of the two
/// networks directly comparable.
fn service_screen(svc: &SigService, a: &Aig, b: &Aig) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(a.num_outputs(), b.num_outputs());
    let sa = svc.signatures(a);
    let sb = svc.signatures(b);
    for (oa, ob) in a.outputs().into_iter().zip(b.outputs()) {
        for w in 0..sa.words_per_node() {
            if sa.lit_word(oa, w) != sb.lit_word(ob, w) {
                return false;
            }
        }
    }
    true
}

/// Cheap refutation: identical seeds drive identical input patterns, so
/// any signature mismatch on an output pair disproves equivalence.
fn simulation_screen(a: &Aig, b: &Aig) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(a.num_outputs(), b.num_outputs());
    let sa = Signatures::random(a, 4, 0xB007);
    let sb = Signatures::random(b, 4, 0xB007);
    for (oa, ob) in a.outputs().into_iter().zip(b.outputs()) {
        for w in 0..4 {
            if sa.lit_word(oa, w) != sb.lit_word(ob, w) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_equivalence_and_difference() {
        let mut a = Aig::new();
        let x = a.add_input();
        let y = a.add_input();
        let f = a.xor(x, y);
        a.add_output(f);
        let mut b = a.cleanup();
        assert!(equivalent(&a, &b));
        let out = b.outputs()[0];
        b.set_output(0, !out);
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn budgeted_gate_accepts_and_rejects() {
        let mut a = Aig::new();
        let x = a.add_input();
        let y = a.add_input();
        let z = a.add_input();
        let f = a.maj3(x, y, z);
        a.add_output(f);
        let b = a.cleanup();
        assert!(equivalent_within(&a, &b, 10_000));
        let mut c = b.clone();
        let out = c.outputs()[0];
        c.set_output(0, !out);
        assert!(!equivalent_within(&a, &c, 10_000));
    }

    #[test]
    fn sim_gate_harvests_and_replays_counterexamples() {
        // AND of 16 inputs vs constant false: they differ only on the
        // all-ones minterm, which 256 random patterns miss with
        // overwhelming probability — the SAT miter must refute and hand
        // the witness to the service.
        let mut a = Aig::new();
        let inputs: Vec<_> = (0..16).map(|_| a.add_input()).collect();
        let mut f = inputs[0];
        for &i in &inputs[1..] {
            f = a.and(f, i);
        }
        a.add_output(f);
        let mut b = Aig::new();
        for _ in 0..16 {
            b.add_input();
        }
        b.add_output(sbm_aig::Lit::FALSE);
        let svc = SigService::default();
        let budget = Budget::unlimited();
        let _ = sbm_sim::drain_sim_tally();
        assert!(!equivalent_within_budgeted_sim(
            &a,
            &b,
            10_000,
            &budget,
            Some(&svc)
        ));
        let tally = sbm_sim::drain_sim_tally();
        assert_eq!(tally.filter_misses, 1, "screen passed, SAT refuted");
        assert_eq!(tally.cex_recorded, 1, "witness harvested");
        // After committing, the replayed witness refutes in the screen:
        // no SAT call, one filter hit.
        assert_eq!(svc.commit_pending(), 1);
        assert!(!equivalent_within_budgeted_sim(
            &a,
            &b,
            10_000,
            &budget,
            Some(&svc)
        ));
        let tally = sbm_sim::drain_sim_tally();
        assert_eq!(tally.filter_hits, 1, "committed cex screens the pair");
        assert_eq!(tally.cex_recorded, 0);
        // Equivalent pair: the service gate still proves it.
        let clean = a.cleanup();
        assert!(equivalent_within_budgeted_sim(
            &a,
            &clean,
            10_000,
            &budget,
            Some(&svc)
        ));
    }

    #[test]
    fn interface_mismatch_panics() {
        let mut a = Aig::new();
        let x = a.add_input();
        a.add_output(x);
        let mut b = a.cleanup();
        b.add_output(x); // second output: interfaces now differ
        let r = std::panic::catch_unwind(|| equivalent(&a, &b));
        assert!(r.is_err(), "output-count mismatch must panic");
    }
}
