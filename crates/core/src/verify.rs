//! Verification helpers.
//!
//! The paper verifies every benchmark "with an industrial formal
//! equivalence checking flow" (Section V-C); this module provides the
//! equivalent for this repository: fast random-simulation screening
//! followed by a full SAT miter proof.

use sbm_aig::sim::Signatures;
use sbm_aig::Aig;
use sbm_budget::Budget;
use sbm_sat::equiv::{check_equivalence, check_equivalence_budgeted, EquivResult};

/// Checks combinational equivalence: random simulation first (cheap
/// refutation), then a SAT miter for the proof.
///
/// # Panics
///
/// Panics if the interfaces differ (input/output counts).
pub fn equivalent(a: &Aig, b: &Aig) -> bool {
    simulation_screen(a, b) && check_equivalence(a, b, None) == EquivResult::Equivalent
}

/// Budgeted equivalence gate for per-window checks: random-simulation
/// screen, then a SAT miter limited to `conflict_budget` conflicts.
/// Returns `false` when the solver runs out of budget — a window rewrite
/// that cannot be proved quickly is rejected, never trusted.
///
/// # Panics
///
/// Panics if the interfaces differ (input/output counts).
pub fn equivalent_within(a: &Aig, b: &Aig, conflict_budget: u64) -> bool {
    simulation_screen(a, b)
        && check_equivalence(a, b, Some(conflict_budget)) == EquivResult::Equivalent
}

/// [`equivalent_within`] under a shared wall-clock [`Budget`]: the miter
/// solver additionally stops at the deadline or on cancellation. As with
/// a blown conflict budget, an interrupted proof counts as *not*
/// equivalent — the rewrite is rejected, never trusted.
///
/// # Panics
///
/// Panics if the interfaces differ (input/output counts).
pub fn equivalent_within_budgeted(a: &Aig, b: &Aig, conflict_budget: u64, budget: &Budget) -> bool {
    simulation_screen(a, b)
        && check_equivalence_budgeted(a, b, Some(conflict_budget), budget)
            == EquivResult::Equivalent
}

/// Cheap refutation: identical seeds drive identical input patterns, so
/// any signature mismatch on an output pair disproves equivalence.
fn simulation_screen(a: &Aig, b: &Aig) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(a.num_outputs(), b.num_outputs());
    let sa = Signatures::random(a, 4, 0xB007);
    let sb = Signatures::random(b, 4, 0xB007);
    for (oa, ob) in a.outputs().into_iter().zip(b.outputs()) {
        for w in 0..4 {
            if sa.lit_word(oa, w) != sb.lit_word(ob, w) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_equivalence_and_difference() {
        let mut a = Aig::new();
        let x = a.add_input();
        let y = a.add_input();
        let f = a.xor(x, y);
        a.add_output(f);
        let mut b = a.cleanup();
        assert!(equivalent(&a, &b));
        let out = b.outputs()[0];
        b.set_output(0, !out);
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn budgeted_gate_accepts_and_rejects() {
        let mut a = Aig::new();
        let x = a.add_input();
        let y = a.add_input();
        let z = a.add_input();
        let f = a.maj3(x, y, z);
        a.add_output(f);
        let b = a.cleanup();
        assert!(equivalent_within(&a, &b, 10_000));
        let mut c = b.clone();
        let out = c.outputs()[0];
        c.set_output(0, !out);
        assert!(!equivalent_within(&a, &c, 10_000));
    }

    #[test]
    fn interface_mismatch_panics() {
        let mut a = Aig::new();
        let x = a.add_input();
        a.add_output(x);
        let mut b = a.cleanup();
        b.add_output(x); // second output: interfaces now differ
        let r = std::panic::catch_unwind(|| equivalent(&a, &b));
        assert!(r.is_err(), "output-count mismatch must panic");
    }
}
