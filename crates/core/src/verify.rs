//! Verification helpers.
//!
//! The paper verifies every benchmark "with an industrial formal
//! equivalence checking flow" (Section V-C); this module provides the
//! equivalent for this repository: fast random-simulation screening
//! followed by a full SAT miter proof.

use sbm_aig::sim::Signatures;
use sbm_aig::Aig;
use sbm_sat::equiv::{check_equivalence, EquivResult};

/// Checks combinational equivalence: random simulation first (cheap
/// refutation), then a SAT miter for the proof.
///
/// # Panics
///
/// Panics if the interfaces differ (input/output counts).
pub fn equivalent(a: &Aig, b: &Aig) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(b.num_outputs(), b.num_outputs());
    // Simulation screen: identical seeds drive identical input patterns.
    let sa = Signatures::random(a, 4, 0xB007);
    let sb = Signatures::random(b, 4, 0xB007);
    for (oa, ob) in a.outputs().into_iter().zip(b.outputs()) {
        for w in 0..4 {
            if sa.lit_word(oa, w) != sb.lit_word(ob, w) {
                return false;
            }
        }
    }
    check_equivalence(a, b, None) == EquivResult::Equivalent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_equivalence_and_difference() {
        let mut a = Aig::new();
        let x = a.add_input();
        let y = a.add_input();
        let f = a.xor(x, y);
        a.add_output(f);
        let mut b = a.cleanup();
        assert!(equivalent(&a, &b));
        let out = b.outputs()[0];
        b.set_output(0, !out);
        assert!(!equivalent(&a, &b));
    }
}
