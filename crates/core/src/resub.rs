//! Windowed resubstitution with divisors.
//!
//! The classic `resub` move: inside a window, try to re-express a node as
//! (a) an existing divisor (0-resub), or (b) a single gate over two
//! divisors (1-resub), using exact window truth tables as the reasoning
//! engine (the paper's small-window truth-table methodology, Section
//! II-A).

use sbm_aig::mffc::mffc_size;
use sbm_aig::sim::window_truth_tables;
use sbm_aig::window::{partition, PartitionOptions};
use sbm_aig::{Aig, Lit, NodeId};
use sbm_tt::TruthTable;

/// Options for windowed resubstitution.
#[derive(Debug, Clone, Copy)]
pub struct ResubOptions {
    /// Window limits.
    pub partition: PartitionOptions,
    /// Maximum divisors considered per node.
    pub max_divisors: usize,
    /// Try two-divisor gates (1-resub) in addition to direct replacement.
    pub try_pairs: bool,
}

impl Default for ResubOptions {
    fn default() -> Self {
        ResubOptions {
            partition: PartitionOptions {
                max_nodes: 200,
                max_inputs: 12,
                max_levels: 10,
            },
            max_divisors: 24,
            try_pairs: true,
        }
    }
}

/// Statistics of a resubstitution pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResubStats {
    /// Direct divisor replacements.
    pub zero_resubs: usize,
    /// Two-divisor gate replacements.
    pub one_resubs: usize,
}

pub(crate) fn resub_impl(aig: &Aig, options: &ResubOptions) -> (Aig, ResubStats) {
    let mut work = aig.cleanup();
    let mut stats = ResubStats::default();
    let parts = partition(&work, &options.partition);
    let mut fanout_counts = work.fanout_counts();
    for part in &parts {
        if part.leaves.is_empty() || part.leaves.len() > sbm_tt::MAX_VARS {
            continue;
        }
        let tables = window_truth_tables(&work, &part.roots, &part.leaves);
        // Divisors: window members and leaves, with their tables.
        let mut divisors: Vec<(NodeId, TruthTable)> = Vec::new();
        for &n in part.leaves.iter().chain(part.nodes.iter()) {
            if let Some(t) = tables.get(&n) {
                divisors.push((n, t.clone()));
            }
            if divisors.len() >= options.max_divisors {
                break;
            }
        }
        for &f in &part.nodes {
            if work.is_replaced(f) || fanout_counts.get(f.index()).is_none_or(|&c| c == 0) {
                continue;
            }
            let Some(tf) = tables.get(&f) else { continue };
            let saving = mffc_size(&work, f, &fanout_counts);
            if saving == 0 {
                continue;
            }
            let mut replacement: Option<(Lit, usize)> = None; // (lit, cost)

            // 0-resub: an existing divisor (either phase) matches exactly.
            for (d, td) in &divisors {
                if *d == f || work.is_replaced(*d) {
                    continue;
                }
                if td == tf {
                    replacement = Some((Lit::new(*d, false), 0));
                    break;
                }
                if &!td == tf {
                    replacement = Some((Lit::new(*d, true), 0));
                    break;
                }
            }
            // 1-resub: f = gate(d1, d2) for AND/OR/XOR over any phases.
            if replacement.is_none() && options.try_pairs && saving >= 2 {
                'outer: for i in 0..divisors.len() {
                    let (d1, t1) = &divisors[i];
                    if *d1 == f || work.is_replaced(*d1) {
                        continue;
                    }
                    for (d2, t2) in divisors.iter().skip(i + 1) {
                        if *d2 == f || work.is_replaced(*d2) {
                            continue;
                        }
                        let l1 = Lit::new(*d1, false);
                        let l2 = Lit::new(*d2, false);
                        let candidates: [(TruthTable, u8); 7] = [
                            (t1 & t2, 0),
                            (&!t1 & t2, 1),
                            (t1 & &!t2, 2),
                            (&!t1 & &!t2, 3),
                            (t1 | t2, 4),
                            (t1 ^ t2, 5),
                            (!(t1 ^ t2), 6),
                        ];
                        for (cand, code) in candidates {
                            let (matches, invert) = if &cand == tf {
                                (true, false)
                            } else if &!&cand == tf {
                                (true, true)
                            } else {
                                (false, false)
                            };
                            if !matches {
                                continue;
                            }
                            let cost = if code >= 5 { 3 } else { 1 };
                            if cost >= saving {
                                continue;
                            }
                            let lit = build_gate(&mut work, code, l1, l2);
                            replacement = Some((lit.complement_if(invert), cost));
                            break 'outer;
                        }
                    }
                }
            }
            if let Some((lit, cost)) = replacement {
                if cost < saving && work.replace(f, lit).is_ok() {
                    if cost == 0 {
                        stats.zero_resubs += 1;
                    } else {
                        stats.one_resubs += 1;
                    }
                    fanout_counts = work.fanout_counts();
                }
            }
        }
    }
    let result = work.cleanup();
    if result.num_ands() <= aig.num_ands() {
        (result, stats)
    } else {
        (aig.cleanup(), ResubStats::default())
    }
}

fn build_gate(aig: &mut Aig, code: u8, l1: Lit, l2: Lit) -> Lit {
    match code {
        0 => aig.and(l1, l2),
        1 => aig.and(!l1, l2),
        2 => aig.and(l1, !l2),
        3 => aig.and(!l1, !l2),
        4 => aig.or(l1, l2),
        5 => aig.xor(l1, l2),
        _ => aig.xnor(l1, l2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_sat::{EquivalenceOracle, MiterOracle, Verdict};

    #[test]
    fn zero_resub_reuses_existing_node() {
        // g = a & b exists; f rebuilds (a & b) & (a | b) == a & b the hard
        // way. Resub should reconnect f's users to g.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let g = aig.and(a, b);
        let o = aig.or(a, b);
        let f = aig.and(g, o); // functionally == g
        aig.add_output(g);
        aig.add_output(f);
        let before = aig.num_ands();
        let (optimized, stats) = resub_impl(&aig, &ResubOptions::default());
        assert!(optimized.num_ands() < before, "{stats:?}");
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
    }

    #[test]
    fn one_resub_finds_gate_over_divisors() {
        // f = (a & b) | (a & c) has a 1-resub as a & (b | c) when b|c
        // exists as a divisor.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let bc = aig.or(b, c);
        aig.add_output(bc); // keep the divisor alive
        let ab = aig.and(a, b);
        let ac = aig.and(a, c);
        let f = aig.or(ab, ac);
        aig.add_output(f);
        let before = aig.num_ands();
        let (optimized, _) = resub_impl(&aig, &ResubOptions::default());
        assert!(optimized.num_ands() < before);
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
    }

    #[test]
    fn never_worsens() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let d = aig.add_input();
        let x = aig.maj3(a, b, c);
        let y = aig.xor(x, d);
        aig.add_output(y);
        let (optimized, _) = resub_impl(&aig, &ResubOptions::default());
        assert!(optimized.num_ands() <= aig.num_ands());
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
    }
}
