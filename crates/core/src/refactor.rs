//! Large-cone refactoring.
//!
//! The `refactor` move (and the paper's "collapse and Boolean
//! decomposition, applied on reconvergent MFFC of the logic network",
//! Section V-A): collapse a node's cone over its structural support into a
//! truth table, resynthesize it with ISOP + algebraic factoring, and keep
//! the result when it is smaller than the cone it replaces.

use sbm_aig::mffc::mffc_size;
use sbm_aig::sim::{lit_truth_table, window_truth_tables};
use sbm_aig::{Aig, Lit};

use crate::rewrite::{cut_mffc, emit_function};

/// Options for refactoring.
#[derive(Debug, Clone, Copy)]
pub struct RefactorOptions {
    /// Maximum structural-support size of a collapsed cone.
    pub max_support: usize,
    /// Minimum MFFC size for a node to be worth collapsing.
    pub min_mffc: usize,
    /// Accept zero-gain replacements.
    pub allow_zero_gain: bool,
}

impl Default for RefactorOptions {
    fn default() -> Self {
        RefactorOptions {
            max_support: 12,
            min_mffc: 3,
            allow_zero_gain: false,
        }
    }
}

/// Statistics of a refactoring pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefactorStats {
    /// Cones collapsed and resynthesized.
    pub refactored: usize,
    /// Cones considered.
    pub considered: usize,
}

pub(crate) fn refactor_impl(aig: &Aig, options: &RefactorOptions) -> (Aig, RefactorStats) {
    let mut work = aig.cleanup();
    let mut stats = RefactorStats::default();
    let order = work.topo_order();
    let mut fanout_counts = work.fanout_counts();
    // Visit from the outputs down (reverse topological) so big cones are
    // tried before their sub-cones.
    for &id in order.iter().rev() {
        if work.is_replaced(id)
            || !work.is_and(id)
            || fanout_counts.get(id.index()).is_none_or(|&c| c == 0)
        {
            continue;
        }
        if mffc_size(&work, id, &fanout_counts) < options.min_mffc {
            continue;
        }
        let support = work.structural_support(id);
        if support.len() < 2 || support.len() > options.max_support {
            continue;
        }
        stats.considered += 1;
        let tables = window_truth_tables(&work, &[id], &support);
        let Some(tt) = lit_truth_table(&tables, Lit::new(id, false)) else {
            continue;
        };
        let saving = cut_mffc(&work, id, &support, &fanout_counts);
        let leaf_lits: Vec<Lit> = support.iter().map(|&n| Lit::new(n, false)).collect();
        let before = work.num_nodes();
        let Some(replacement) = emit_function(&mut work, &tt, &leaf_lits) else {
            continue;
        };
        let created = work.num_nodes() - before;
        if replacement.node() == id || created > saving {
            continue;
        }
        if created == saving && !options.allow_zero_gain {
            continue;
        }
        if work.replace(id, replacement).is_ok() {
            stats.refactored += 1;
            fanout_counts = work.fanout_counts();
        }
    }
    let result = work.cleanup();
    if result.num_ands() <= aig.num_ands() {
        (result, stats)
    } else {
        (aig.cleanup(), RefactorStats::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_sat::{EquivalenceOracle, MiterOracle, Verdict};

    #[test]
    fn simplifies_redundant_cone() {
        // f = (a & b) | (a & !b) == a, built so strashing can't see it.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let t1 = aig.and(a, b);
        let t2 = aig.and(a, !b);
        let f = aig.or(t1, t2);
        let g = aig.and(f, c);
        aig.add_output(g);
        let (optimized, stats) = refactor_impl(&aig, &RefactorOptions::default());
        assert!(optimized.num_ands() < aig.num_ands(), "{stats:?}");
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
        assert_eq!(optimized.num_ands(), 1, "should shrink to a & c");
    }

    #[test]
    fn keeps_optimal_cones() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.maj3(a, b, c);
        aig.add_output(m);
        let (optimized, _) = refactor_impl(&aig, &RefactorOptions::default());
        assert!(optimized.num_ands() <= aig.num_ands());
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
    }

    #[test]
    fn respects_support_limit() {
        let mut aig = Aig::new();
        let inputs: Vec<Lit> = (0..16).map(|_| aig.add_input()).collect();
        let f = aig.xor_many(&inputs);
        aig.add_output(f);
        let opts = RefactorOptions {
            max_support: 8,
            ..Default::default()
        };
        // The root cone has 16 supports: must be skipped without panicking.
        let (optimized, _) = refactor_impl(&aig, &opts);
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
    }
}
