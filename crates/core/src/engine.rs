//! The common optimization-engine abstraction.
//!
//! Every Boolean/algebraic engine in this crate is reachable through the
//! [`Engine`] trait: a named pass that maps an AIG to an optimized AIG
//! plus uniform [`EngineStats`]. The trait is what the parallel pipeline
//! (see [`crate::pipeline`]) schedules over windows, and what scripts
//! compose into sequences; engines with budget-aware entry points also
//! expose `*_budgeted` free functions returning `(Aig, Stats)` pairs.
//!
//! Engines are `Send + Sync` — a single engine value may be shared by
//! many worker threads, each running it on a disjoint window.

use std::fmt;
use std::time::Duration;

use sbm_aig::Aig;
use sbm_budget::Budget;
use sbm_check::{check_aig, sim_spot_check, CheckError, CheckLevel, FaultPlan};
use sbm_metrics::Timer;
use sbm_sim::SigService;

use crate::balance::balance;
use crate::bdiff::{boolean_difference_resub_filtered, BdiffOptions};
use crate::gradient::{gradient_optimize_filtered, GradientOptions};
use crate::hetero::{hetero_eliminate_kernel_impl, HeteroOptions};
use crate::mspf::{mspf_optimize_filtered, MspfOptions};
use crate::refactor::{refactor_impl, RefactorOptions};
use crate::resub::{resub_impl, ResubOptions};
use crate::rewrite::{rewrite_impl, RewriteOptions};

/// Borrowed per-invocation context for [`Engine::optimize`] — the one
/// bundle every engine receives, replacing the owned
/// context-plus-side-channels of the pre-redesign API.
///
/// All fields are private behind typed accessors so the set can grow
/// without breaking implementors; construction is builder-style from a
/// borrowed [`Budget`]:
///
/// ```
/// use sbm_budget::Budget;
/// use sbm_core::engine::{Engine, EngineCtx, Mspf};
///
/// let budget = Budget::unlimited();
/// let ctx = EngineCtx::new(&budget).with_threads(2);
/// let aig = sbm_aig::Aig::new();
/// let result = Mspf::default().optimize(&aig, &ctx);
/// assert_eq!(result.stats.gain, 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EngineCtx<'a> {
    num_threads: usize,
    check_level: CheckLevel,
    budget: &'a Budget,
    fault_plan: Option<&'a FaultPlan>,
    sim: Option<&'a SigService>,
}

impl<'a> EngineCtx<'a> {
    /// A serial, check-free, fault-free, unfiltered context over `budget`.
    pub fn new(budget: &'a Budget) -> Self {
        EngineCtx {
            num_threads: 1,
            check_level: CheckLevel::Off,
            budget,
            fault_plan: None,
            sim: None,
        }
    }

    /// Sets the worker-thread count (1 = strictly serial).
    #[must_use]
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Sets the invariant-checking level the caller runs this engine at.
    #[must_use]
    pub fn with_check_level(mut self, check_level: CheckLevel) -> Self {
        self.check_level = check_level;
        self
    }

    /// Attaches a deterministic fault-injection plan (tests only).
    #[must_use]
    pub fn with_fault_plan(mut self, fault_plan: Option<&'a FaultPlan>) -> Self {
        self.fault_plan = fault_plan;
        self
    }

    /// Attaches the shared simulation-signature service; engines with
    /// expensive (BDD/SAT) candidate evaluation use it to reject
    /// candidates whose signatures differ on observable bits.
    #[must_use]
    pub fn with_sim(mut self, sim: Option<&'a SigService>) -> Self {
        self.sim = sim;
        self
    }

    /// Worker threads available to the engine (1 = strictly serial).
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The invariant-checking level of the surrounding run.
    pub fn check_level(&self) -> CheckLevel {
        self.check_level
    }

    /// The resource budget (wall-clock deadline / cancellation) the
    /// engine must honor.
    pub fn budget(&self) -> &'a Budget {
        self.budget
    }

    /// The fault-injection plan of the surrounding run, if any.
    pub fn fault_plan(&self) -> Option<&'a FaultPlan> {
        self.fault_plan
    }

    /// The shared simulation-signature service, if candidate filtering
    /// is enabled for this run.
    pub fn sim(&self) -> Option<&'a SigService> {
        self.sim
    }
}

/// Uniform per-engine statistics (the paper's cost/benefit bookkeeping).
///
/// Engines with richer native stats (e.g. [`crate::bdiff::BdiffStats`])
/// project onto these fields; the native structs remain available through
/// the `*_budgeted` free functions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Windows / partitions processed (0 for non-windowed engines).
    pub windows: usize,
    /// Candidate moves evaluated.
    pub tried: usize,
    /// Moves accepted.
    pub accepted: usize,
    /// AND-node reduction (positive = smaller network).
    pub gain: i64,
    /// BDD node-limit bailouts. Every `BddError::NodeLimit` bail inside
    /// an engine increments this — including the mspf/bdiff moves the
    /// gradient scheduler dispatches; the purely algebraic engines
    /// (balance, rewrite, refactor, resub, hetero) use no BDDs, so their
    /// count is structurally zero. Budget interruptions (deadline /
    /// cancel) are *not* counted here; they surface in the pipeline's
    /// `FaultSummary` instead.
    pub bailouts: usize,
    /// Busy time of the pass: wall-clock time spent inside this one
    /// invocation. Merging stats from concurrent workers *sums* their
    /// busy times, so an aggregate can exceed the true elapsed
    /// wall-clock; phase walls live in
    /// [`crate::pipeline::PipelineReport`].
    pub busy: Duration,
}

impl EngineStats {
    /// Accumulates `other` into `self` (counter-wise sum).
    pub fn merge(&mut self, other: &EngineStats) {
        self.windows += other.windows;
        self.tried += other.tried;
        self.accepted += other.accepted;
        self.gain += other.gain;
        self.bailouts += other.bailouts;
        self.busy += other.busy;
    }
}

/// What an engine pass produces: the optimized AIG plus its stats.
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// The optimized network (never larger than the input).
    pub aig: Aig,
    /// Uniform statistics of the pass.
    pub stats: EngineStats,
}

/// An optimized AIG paired with engine-native statistics. Replaces the
/// bare `(Aig, Stats)` tuples of the pre-trait API.
#[derive(Debug, Clone)]
pub struct Optimized<S> {
    /// The optimized network.
    pub aig: Aig,
    /// Engine-native statistics.
    pub stats: S,
}

/// A named optimization pass over an AIG.
pub trait Engine: Send + Sync {
    /// Short engine name (used in reports and logs).
    fn name(&self) -> &str;
    /// Runs the pass. Implementations never return a larger network.
    fn optimize(&self, aig: &Aig, ctx: &EngineCtx<'_>) -> EngineResult;
    /// A cheaper preset of this engine for the pipeline's retry ladder:
    /// after a failed invocation (panic or forced bailout) the window is
    /// retried once on this variant before degrading to its original
    /// sub-network. `None` (the default) retries with the engine itself.
    ///
    /// Mirrors the paper's "try expensive Boolean, fall back to cheap
    /// algebraic" philosophy: the BDD-backed engines halve their node
    /// limits here.
    fn reduced_effort(&self) -> Option<Box<dyn Engine>> {
        None
    }
}

/// Seed of every 64-pattern simulation spot-check run by the checked
/// pipeline mode — fixed so checked runs stay deterministic.
pub const SPOT_CHECK_SEED: u64 = 0x53424DC4EC;

/// An invariant violation caught by the checked pipeline mode
/// ([`CheckLevel`](sbm_check::CheckLevel)), attributing the failure to
/// the engine invocation (and, inside the pipeline, the partition) that
/// produced it.
#[derive(Debug, Clone)]
pub struct CheckViolation {
    /// The engine whose invocation was bracketed (`"pipeline"` /
    /// `"script"` for run-boundary checks).
    pub engine: String,
    /// Where the check fired: `"pre"` (input already violated an
    /// invariant), `"post"` (the engine's output does) or `"sim"` (the
    /// 64-pattern spot-check found a functional mismatch).
    pub stage: &'static str,
    /// Partition index within the pipeline run, when window-scoped.
    pub window: Option<usize>,
    /// The violated invariant.
    pub error: CheckError,
}

impl fmt::Display for CheckViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.window {
            Some(w) => write!(
                f,
                "{} ({} check, window {w}): {}",
                self.engine, self.stage, self.error
            ),
            None => write!(f, "{} ({} check): {}", self.engine, self.stage, self.error),
        }
    }
}

/// Runs `engine` bracketed by invariant checks: the input must pass
/// [`check_aig`] (otherwise the engine is not run at all), and the
/// output must pass both [`check_aig`] and a 64-pattern
/// [`sim_spot_check`] against the input. A violating result is
/// **discarded** — the input passes through unchanged — and the
/// violation is reported, attributed to `engine` and `window`.
///
/// This is the primitive behind
/// [`CheckLevel::Paranoid`](sbm_check::CheckLevel::Paranoid); callers at
/// `Off` should invoke [`Engine::optimize`] directly (this wrapper costs
/// two structural walks and two simulation sweeps per invocation).
pub fn run_checked(
    engine: &dyn Engine,
    aig: &Aig,
    ctx: &EngineCtx<'_>,
    window: Option<usize>,
) -> (EngineResult, Vec<CheckViolation>) {
    let violation = |stage, error| CheckViolation {
        engine: engine.name().to_string(),
        stage,
        window,
        error,
    };
    if let Err(error) = check_aig(aig) {
        // Never hand a corrupted network to an engine: the resolving
        // accessors could loop or panic on it.
        return (
            EngineResult {
                aig: aig.clone(),
                stats: EngineStats::default(),
            },
            vec![violation("pre", error)],
        );
    }
    let result = engine.optimize(aig, ctx);
    let error =
        check_aig(&result.aig).and_then(|()| sim_spot_check(aig, &result.aig, SPOT_CHECK_SEED));
    match error {
        Ok(()) => (result, Vec::new()),
        Err(error) => {
            let stage = if error.code == sbm_check::CheckCode::SimMismatch {
                "sim"
            } else {
                "post"
            };
            (
                EngineResult {
                    aig: aig.clone(),
                    stats: result.stats,
                },
                vec![violation(stage, error)],
            )
        }
    }
}

/// Times `run`, computes the node gain, and lets `fill` project the
/// engine-native stats onto [`EngineStats`].
fn timed<S>(
    aig: &Aig,
    run: impl FnOnce(&Aig) -> (Aig, S),
    fill: impl FnOnce(S, &mut EngineStats),
) -> EngineResult {
    let before = aig.num_ands() as i64;
    let timer = Timer::start();
    let (aig, native) = run(aig);
    let mut stats = EngineStats {
        gain: before - aig.num_ands() as i64,
        ..EngineStats::default()
    };
    fill(native, &mut stats);
    stats.busy = timer.stop();
    EngineResult { aig, stats }
}

/// AND-tree balancing as an [`Engine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Balance;

impl Engine for Balance {
    fn name(&self) -> &str {
        "balance"
    }

    fn optimize(&self, aig: &Aig, _ctx: &EngineCtx<'_>) -> EngineResult {
        timed(
            aig,
            |a| (balance(a), ()),
            |(), stats| {
                stats.tried = 1;
                stats.accepted = usize::from(stats.gain > 0);
            },
        )
    }
}

/// Cut-based rewriting as an [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct Rewrite {
    /// Pass options.
    pub options: RewriteOptions,
}

impl Engine for Rewrite {
    fn name(&self) -> &str {
        "rewrite"
    }

    fn optimize(&self, aig: &Aig, _ctx: &EngineCtx<'_>) -> EngineResult {
        timed(
            aig,
            |a| rewrite_impl(a, &self.options),
            |native, stats| {
                stats.tried = native.cuts_tried;
                stats.accepted = native.rewritten;
            },
        )
    }
}

/// Cone refactoring as an [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct Refactor {
    /// Pass options.
    pub options: RefactorOptions,
}

impl Engine for Refactor {
    fn name(&self) -> &str {
        "refactor"
    }

    fn optimize(&self, aig: &Aig, _ctx: &EngineCtx<'_>) -> EngineResult {
        timed(
            aig,
            |a| refactor_impl(a, &self.options),
            |native, stats| {
                stats.tried = native.considered;
                stats.accepted = native.refactored;
            },
        )
    }
}

/// Windowed resubstitution as an [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct Resub {
    /// Pass options.
    pub options: ResubOptions,
}

impl Engine for Resub {
    fn name(&self) -> &str {
        "resub"
    }

    fn optimize(&self, aig: &Aig, _ctx: &EngineCtx<'_>) -> EngineResult {
        timed(
            aig,
            |a| resub_impl(a, &self.options),
            |native, stats| {
                stats.accepted = native.zero_resubs + native.one_resubs;
                stats.tried = stats.accepted;
            },
        )
    }
}

/// MSPF-based redundancy removal as an [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct Mspf {
    /// Pass options.
    pub options: MspfOptions,
}

impl Engine for Mspf {
    fn name(&self) -> &str {
        "mspf"
    }

    fn optimize(&self, aig: &Aig, ctx: &EngineCtx<'_>) -> EngineResult {
        timed(
            aig,
            |a| mspf_optimize_filtered(a, &self.options, ctx.budget(), ctx.sim()),
            |native, stats| {
                stats.tried = native.mspf_computed;
                stats.accepted = native.replaced + native.constants;
                stats.bailouts = native.bailouts;
            },
        )
    }

    fn reduced_effort(&self) -> Option<Box<dyn Engine>> {
        let mut options = self.options;
        options.bdd_node_limit = (options.bdd_node_limit / 2).max(1);
        options.max_candidates = (options.max_candidates / 2).max(1);
        Some(Box::new(Mspf { options }))
    }
}

/// Boolean-difference resubstitution as an [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct Bdiff {
    /// Pass options.
    pub options: BdiffOptions,
}

impl Engine for Bdiff {
    fn name(&self) -> &str {
        "bdiff"
    }

    fn optimize(&self, aig: &Aig, ctx: &EngineCtx<'_>) -> EngineResult {
        timed(
            aig,
            |a| boolean_difference_resub_filtered(a, &self.options, ctx.budget(), ctx.sim()),
            |native, stats| {
                stats.windows = native.windows;
                stats.tried = native.pairs_tried;
                stats.accepted = native.accepted;
                stats.bailouts = native.bailouts;
            },
        )
    }

    fn reduced_effort(&self) -> Option<Box<dyn Engine>> {
        let mut options = self.options;
        options.bdd_node_limit = (options.bdd_node_limit / 2).max(1);
        options.max_pairs_per_node = (options.max_pairs_per_node / 2).max(1);
        Some(Box::new(Bdiff { options }))
    }
}

/// Heterogeneous eliminate + kernel extraction as an [`Engine`].
///
/// The only engine that consults [`EngineCtx::num_threads`] directly:
/// its internal threshold sweep runs on scoped threads unless the context
/// demands strict serial execution.
#[derive(Debug, Clone, Default)]
pub struct Hetero {
    /// Pass options (`parallel` is overridden by the context).
    pub options: HeteroOptions,
}

impl Engine for Hetero {
    fn name(&self) -> &str {
        "hetero"
    }

    fn optimize(&self, aig: &Aig, ctx: &EngineCtx<'_>) -> EngineResult {
        let mut options = self.options.clone();
        options.parallel = ctx.num_threads() > 1;
        timed(
            aig,
            |a| hetero_eliminate_kernel_impl(a, &options),
            |native, stats| {
                stats.windows = native.partitions;
                stats.tried = native.partitions;
                stats.accepted = native.improved;
            },
        )
    }
}

/// The gradient-based move scheduler as an [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct Gradient {
    /// Scheduler options (`num_threads` is raised to the context's).
    pub options: GradientOptions,
}

impl Engine for Gradient {
    fn name(&self) -> &str {
        "gradient"
    }

    fn optimize(&self, aig: &Aig, ctx: &EngineCtx<'_>) -> EngineResult {
        let mut options = self.options.clone();
        options.num_threads = options.num_threads.max(ctx.num_threads());
        timed(
            aig,
            |a| gradient_optimize_filtered(a, &options, ctx.budget(), ctx.sim()),
            |native, stats| {
                for (_, record) in &native.records {
                    stats.tried += record.tried as usize;
                    stats.accepted += record.succeeded as usize;
                    stats.bailouts += record.bailouts as usize;
                }
            },
        )
    }

    fn reduced_effort(&self) -> Option<Box<dyn Engine>> {
        let mut options = self.options.clone();
        options.budget = (options.budget / 2).max(1);
        options.budget_extension = 0;
        Some(Box::new(Gradient { options }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::equivalent;

    fn benchmark_aig() -> Aig {
        let mut aig = Aig::new();
        let inputs: Vec<_> = (0..6).map(|_| aig.add_input()).collect();
        let mut acc = aig.and(inputs[0], inputs[1]);
        for chunk in inputs.windows(3) {
            let m = aig.maj3(chunk[0], chunk[1], chunk[2]);
            let x = aig.xor(m, acc);
            acc = aig.or(x, chunk[1]);
        }
        aig.add_output(acc);
        aig.add_output(!acc);
        aig
    }

    fn all_engines() -> Vec<Box<dyn Engine>> {
        vec![
            Box::new(Balance),
            Box::new(Rewrite::default()),
            Box::new(Refactor::default()),
            Box::new(Resub::default()),
            Box::new(Mspf::default()),
            Box::new(Bdiff::default()),
            Box::new(Hetero::default()),
            Box::new(Gradient::default()),
        ]
    }

    #[test]
    fn every_engine_preserves_function_and_never_grows() {
        let aig = benchmark_aig();
        let budget = Budget::unlimited();
        let ctx = EngineCtx::new(&budget);
        for engine in all_engines() {
            let result = engine.optimize(&aig, &ctx);
            assert!(
                result.aig.num_ands() <= aig.num_ands(),
                "{} grew the network",
                engine.name()
            );
            assert!(
                equivalent(&aig, &result.aig),
                "{} broke equivalence",
                engine.name()
            );
            assert_eq!(
                result.stats.gain,
                aig.num_ands() as i64 - result.aig.num_ands() as i64,
                "{} mis-reported gain",
                engine.name()
            );
        }
    }

    #[test]
    fn engine_ctx_accessors_round_trip() {
        let budget = Budget::unlimited();
        let sim = SigService::default();
        let ctx = EngineCtx::new(&budget)
            .with_threads(4)
            .with_check_level(CheckLevel::Paranoid)
            .with_sim(Some(&sim));
        assert_eq!(ctx.num_threads(), 4);
        assert_eq!(ctx.check_level(), CheckLevel::Paranoid);
        assert!(ctx.fault_plan().is_none());
        assert!(ctx.sim().is_some());
        assert!(ctx.budget().check().is_ok());
    }

    #[test]
    fn engine_names_are_unique() {
        let engines = all_engines();
        let mut names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), engines.len());
    }

    #[test]
    fn stats_merge_sums_counters() {
        let a = EngineStats {
            windows: 1,
            tried: 2,
            accepted: 1,
            gain: 3,
            bailouts: 0,
            busy: Duration::from_millis(5),
        };
        let mut b = EngineStats {
            windows: 4,
            tried: 5,
            accepted: 2,
            gain: -1,
            bailouts: 2,
            busy: Duration::from_millis(7),
        };
        b.merge(&a);
        assert_eq!(
            b,
            EngineStats {
                windows: 5,
                tried: 7,
                accepted: 3,
                gain: 2,
                bailouts: 2,
                busy: Duration::from_millis(12),
            }
        );
    }
}
