//! Heterogeneous elimination for kernel extraction (paper Section IV-B).
//!
//! Elimination (forward collapsing) grows SOPs before kernel extraction,
//! but a single network-wide threshold produces SOPs of similar size and
//! misses extraction opportunities. The heterogeneous engine partitions
//! the network and, per partition, tries the whole threshold ladder
//! `(-1, 2, 5, 20, 50, 100, 200, 300)`, keeping the variant that reduces
//! the most literals — "we only keep the best one, e.g., the one reducing
//! the largest number of literals of the partition". Threshold evaluation
//! is embarrassingly parallel ("partitioning engines, whose computation
//! can be distributed in parallel"), which this implementation exploits
//! with scoped threads.

use std::collections::HashMap;

use sbm_aig::window::{partition, Partition, PartitionOptions};
use sbm_aig::{Aig, Lit, NodeId};
use sbm_sop::eliminate::eliminate;
use sbm_sop::extract::extract;
use sbm_sop::{SignalLit, SopNetwork};

/// The paper's empirically useful eliminate thresholds.
pub const DEFAULT_THRESHOLDS: [i64; 8] = [-1, 2, 5, 20, 50, 100, 200, 300];

/// Options for heterogeneous elimination + kerneling.
#[derive(Debug, Clone)]
pub struct HeteroOptions {
    /// Partition limits — "partitioned networks of medium-large sizes".
    pub partition: PartitionOptions,
    /// The eliminate thresholds to sweep per partition.
    pub thresholds: Vec<i64>,
    /// Extraction rounds after elimination.
    pub extract_rounds: usize,
    /// Evaluate thresholds on parallel threads.
    pub parallel: bool,
}

impl Default for HeteroOptions {
    fn default() -> Self {
        HeteroOptions {
            partition: PartitionOptions {
                max_nodes: 600,
                max_inputs: 30,
                max_levels: 24,
            },
            thresholds: DEFAULT_THRESHOLDS.to_vec(),
            extract_rounds: 20,
            parallel: true,
        }
    }
}

/// Statistics of a heterogeneous eliminate/kernel pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeteroStats {
    /// Partitions processed.
    pub partitions: usize,
    /// Partitions where some threshold beat the identity.
    pub improved: usize,
    /// AIG nodes saved in total.
    pub nodes_saved: usize,
}

/// Extracts a partition as a standalone [`SopNetwork`]: leaves become
/// inputs (in `part.leaves` order), roots become outputs (positive phase).
fn partition_to_sop(aig: &Aig, part: &Partition) -> Option<SopNetwork> {
    let mut net = SopNetwork::new(part.leaves.len());
    let mut map: HashMap<NodeId, SignalLit> = HashMap::new();
    for (i, &leaf) in part.leaves.iter().enumerate() {
        map.insert(leaf, SignalLit::positive(i as u32));
    }
    for &id in &part.nodes {
        let (a, b) = aig.fanins(id);
        // Strashing keeps constants out of AND fanins, but a pending
        // replacement from an earlier partition can resolve to one; such
        // partitions are skipped rather than modeled.
        let conv = |l: Lit, map: &HashMap<NodeId, SignalLit>| -> Option<SignalLit> {
            let base = *map.get(&l.node())?;
            Some(if l.is_complemented() {
                base.negate()
            } else {
                base
            })
        };
        let la = conv(a, &map)?;
        let lb = conv(b, &map)?;
        let s = net.add_node(sbm_sop::Cover::from_cubes(vec![sbm_sop::Cube::from_lits(
            &[la, lb],
        )]));
        map.insert(id, SignalLit::positive(s));
    }
    for &root in &part.roots {
        net.add_output(map[&root]);
    }
    Some(net)
}

/// Optimizes one partition network with a specific eliminate threshold,
/// returning the resulting literal count and the network.
fn optimize_with_threshold(
    net: &SopNetwork,
    threshold: i64,
    extract_rounds: usize,
) -> (usize, SopNetwork) {
    let mut candidate = net.clone();
    eliminate(&mut candidate, threshold);
    extract(&mut candidate, extract_rounds);
    let candidate = candidate.cleanup();
    (candidate.num_lits(), candidate)
}

pub(crate) fn hetero_eliminate_kernel_impl(
    aig: &Aig,
    options: &HeteroOptions,
) -> (Aig, HeteroStats) {
    let mut work = aig.cleanup();
    let mut stats = HeteroStats::default();
    let parts = partition(&work, &options.partition);
    for part in &parts {
        if part.nodes.len() < 4 || part.leaves.is_empty() {
            continue;
        }
        stats.partitions += 1;
        let Some(net) = partition_to_sop(&work, part) else {
            continue;
        };

        // Sweep the threshold ladder — in parallel when enabled.
        let results: Vec<(usize, SopNetwork)> = if options.parallel {
            // sbm-lint: allow(C001) scoped fork-join over an immutable network; results are re-ordered by threshold index, so scheduling cannot leak into output
            std::thread::scope(|scope| {
                let handles: Vec<_> = options
                    .thresholds
                    .iter()
                    .map(|&t| {
                        let net_ref = &net;
                        let rounds = options.extract_rounds;
                        scope.spawn(move || optimize_with_threshold(net_ref, t, rounds))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(result) => result,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            })
        } else {
            options
                .thresholds
                .iter()
                .map(|&t| optimize_with_threshold(&net, t, options.extract_rounds))
                .collect()
        };

        let Some((_, best)) = results.into_iter().min_by_key(|(lits, _)| *lits) else {
            continue;
        };

        // Re-implement the partition from the best SOP network and splice
        // it in, if it actually reduces AIG nodes.
        let leaf_lits: Vec<Lit> = part.leaves.iter().map(|&n| Lit::new(n, false)).collect();
        let nodes_before = work.num_nodes();
        let new_roots = emit_sop_network(&mut work, &best, &leaf_lits);
        let created = work.num_nodes() - nodes_before;
        let saving = part.nodes.len();
        if created > saving {
            continue; // garbage nodes die at cleanup
        }
        let mut ok = true;
        for (&root, &new_lit) in part.roots.iter().zip(&new_roots) {
            if work.resolve(Lit::new(root, false)) == work.resolve(new_lit) {
                continue;
            }
            if work.replace(root, new_lit).is_err() {
                ok = false;
                break;
            }
        }
        if ok && created < saving {
            stats.improved += 1;
            stats.nodes_saved += saving - created;
        }
    }
    let result = work.cleanup();
    if result.num_ands() <= aig.num_ands() {
        (result, stats)
    } else {
        (aig.cleanup(), HeteroStats::default())
    }
}

/// Emits the (optimized) partition network into the AIG over the original
/// leaf literals; returns the new root literals in output order.
fn emit_sop_network(aig: &mut Aig, net: &SopNetwork, leaf_lits: &[Lit]) -> Vec<Lit> {
    let mut map: HashMap<u32, Lit> = HashMap::new();
    for (i, &l) in leaf_lits.iter().enumerate() {
        map.insert(i as u32, l);
    }
    for s in net.topo_order() {
        let fac = sbm_sop::factor::factor(net.cover(s));
        let lit = emit_factored(aig, &fac, &map);
        map.insert(s, lit);
    }
    net.outputs()
        .iter()
        .map(|l| map[&l.signal()].complement_if(l.is_negated()))
        .collect()
}

fn emit_factored(aig: &mut Aig, fac: &sbm_sop::factor::Factored, map: &HashMap<u32, Lit>) -> Lit {
    use sbm_sop::factor::Factored;
    match fac {
        Factored::Zero => Lit::FALSE,
        Factored::One => Lit::TRUE,
        Factored::Lit(l) => map[&l.signal()].complement_if(l.is_negated()),
        Factored::And(a, b) => {
            let la = emit_factored(aig, a, map);
            let lb = emit_factored(aig, b, map);
            aig.and(la, lb)
        }
        Factored::Or(a, b) => {
            let la = emit_factored(aig, a, map);
            let lb = emit_factored(aig, b, map);
            aig.or(la, lb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_sat::{EquivalenceOracle, MiterOracle, Verdict};

    /// A decoder-like structure with heavy kernel sharing.
    fn kernel_rich_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let d = aig.add_input();
        let e = aig.add_input();
        // Outputs of the form (a+b)·x with the (a+b) kernel re-derived
        // separately each time.
        for &x in &[c, d, e] {
            let t1 = aig.and(a, x);
            let t2 = aig.and(b, x);
            let f = aig.or(t1, t2);
            aig.add_output(f);
        }
        aig
    }

    #[test]
    fn extracts_shared_kernels_across_outputs() {
        let aig = kernel_rich_aig();
        let before = aig.num_ands();
        let (optimized, stats) = hetero_eliminate_kernel_impl(&aig, &HeteroOptions::default());
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
        assert!(
            optimized.num_ands() <= before,
            "{before} -> {} ({stats:?})",
            optimized.num_ands()
        );
    }

    #[test]
    fn sequential_matches_parallel() {
        let aig = kernel_rich_aig();
        let (par, _) = hetero_eliminate_kernel_impl(&aig, &HeteroOptions::default());
        let (seq, _) = hetero_eliminate_kernel_impl(
            &aig,
            &HeteroOptions {
                parallel: false,
                ..Default::default()
            },
        );
        assert_eq!(par.num_ands(), seq.num_ands());
        assert_eq!(MiterOracle::new().check(&par, &seq), Verdict::Equivalent);
    }

    #[test]
    fn never_worsens_on_tight_logic() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.maj3(a, b, c);
        let x = aig.xor(a, c);
        let f = aig.and(m, x);
        aig.add_output(f);
        let (optimized, _) = hetero_eliminate_kernel_impl(&aig, &HeteroOptions::default());
        assert!(optimized.num_ands() <= aig.num_ands());
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
    }
}
