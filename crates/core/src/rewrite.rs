//! Cut-based DAG-aware rewriting.
//!
//! The `rewrite` move of the gradient engine (Section IV-A), in the spirit
//! of Mishchenko et al. \[12\]: enumerate small cuts, resynthesize each
//! cut's function from scratch (ISOP + algebraic factoring, both
//! polarities), and accept the replacement when it reduces the node count,
//! taking structural sharing with the existing network into account.

use std::collections::{HashMap, HashSet};

use sbm_aig::cut::{enumerate_cuts, CutOptions};
use sbm_aig::sim::{lit_truth_table, window_truth_tables};
use sbm_aig::{Aig, Lit, NodeId};
use sbm_sop::factor::{factor, Factored};
use sbm_sop::isop::isop_exact;
use sbm_tt::TruthTable;

/// Options for rewriting.
#[derive(Debug, Clone, Copy)]
pub struct RewriteOptions {
    /// Cut size (4 mirrors classic AIG rewriting).
    pub k: usize,
    /// Priority cuts per node.
    pub max_cuts: usize,
    /// Accept zero-gain replacements (reshapes the network; the paper's
    /// Alg. 2 uses the same trick to escape local minima).
    pub allow_zero_gain: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            k: 4,
            max_cuts: 8,
            allow_zero_gain: false,
        }
    }
}

/// Statistics of a rewriting pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Nodes rewritten.
    pub rewritten: usize,
    /// Cuts evaluated.
    pub cuts_tried: usize,
}

/// Counts the nodes that would be freed by disconnecting `root` from its
/// cut: members of `cone(root, leaves)` whose every fanout is inside the
/// freed set (a cut-local MFFC).
pub(crate) fn cut_mffc(aig: &Aig, root: NodeId, leaves: &[NodeId], fanout_counts: &[u32]) -> usize {
    cut_mffc_set(aig, root, leaves, fanout_counts).len()
}

/// The freed set itself (see [`cut_mffc`]); `root` included.
pub(crate) fn cut_mffc_set(
    aig: &Aig,
    root: NodeId,
    leaves: &[NodeId],
    fanout_counts: &[u32],
) -> HashSet<NodeId> {
    let cone: HashSet<NodeId> = aig.cone(&[root], leaves).into_iter().collect();
    let mut remaining: HashMap<NodeId, u32> = HashMap::new();
    let mut stack = vec![root];
    let mut visited: HashSet<NodeId> = HashSet::new();
    while let Some(id) = stack.pop() {
        if !visited.insert(id) {
            continue;
        }
        let (a, b) = aig.fanins(id);
        for fanin in [a.node(), b.node()] {
            if !cone.contains(&fanin) {
                continue;
            }
            let left = remaining
                .entry(fanin)
                .or_insert_with(|| fanout_counts[fanin.index()]);
            *left = left.saturating_sub(1);
            if *left == 0 {
                stack.push(fanin);
            }
        }
    }
    visited
}

/// Resynthesizes `tt` over `leaf_lits` into the AIG, picking the better
/// polarity by factored literal count. Returns the implementing literal,
/// or `None` when both polarities produce pathologically wide covers
/// (e.g. parity functions, whose ISOP has `2^(n−1)` cubes) — those cones
/// are better left to structural methods.
pub(crate) fn emit_function(aig: &mut Aig, tt: &TruthTable, leaf_lits: &[Lit]) -> Option<Lit> {
    const MAX_CUBES: usize = 64;
    let pos_cover = isop_exact(tt);
    let neg_cover = isop_exact(&!tt);
    if pos_cover.num_cubes().min(neg_cover.num_cubes()) > MAX_CUBES {
        return None;
    }
    let pos = factor(&pos_cover);
    let neg = factor(&neg_cover);
    Some(if neg.num_lits() < pos.num_lits() {
        !emit_factored(aig, &neg, leaf_lits)
    } else {
        emit_factored(aig, &pos, leaf_lits)
    })
}

fn emit_factored(aig: &mut Aig, fac: &Factored, leaf_lits: &[Lit]) -> Lit {
    match fac {
        Factored::Zero => Lit::FALSE,
        Factored::One => Lit::TRUE,
        Factored::Lit(l) => leaf_lits[l.signal() as usize].complement_if(l.is_negated()),
        Factored::And(a, b) => {
            let la = emit_factored(aig, a, leaf_lits);
            let lb = emit_factored(aig, b, leaf_lits);
            aig.and(la, lb)
        }
        Factored::Or(a, b) => {
            let la = emit_factored(aig, a, leaf_lits);
            let lb = emit_factored(aig, b, leaf_lits);
            aig.or(la, lb)
        }
    }
}

pub(crate) fn rewrite_impl(aig: &Aig, options: &RewriteOptions) -> (Aig, RewriteStats) {
    let mut work = aig.cleanup();
    let mut stats = RewriteStats::default();
    let cuts = enumerate_cuts(
        &work,
        CutOptions {
            k: options.k,
            max_cuts: options.max_cuts,
        },
    );
    let order = work.topo_order();
    let mut fanout_counts = work.fanout_counts();
    for id in order {
        if work.is_replaced(id)
            || !work.is_and(id)
            || fanout_counts.get(id.index()).is_none_or(|&c| c == 0)
        {
            continue;
        }
        let Some(node_cuts) = cuts.get(&id) else {
            continue;
        };
        let mut best: Option<(Lit, usize)> = None; // (replacement, gain)
        for cut in node_cuts {
            if cut.leaves() == [id] || cut.size() < 2 {
                continue;
            }
            // Skip cuts whose leaves were rewritten away meanwhile.
            if cut.leaves().iter().any(|&l| work.is_replaced(l)) {
                continue;
            }
            stats.cuts_tried += 1;
            let tables = window_truth_tables(&work, &[id], cut.leaves());
            let Some(tt) = lit_truth_table(&tables, Lit::new(id, false)) else {
                continue;
            };
            let saving = cut_mffc(&work, id, cut.leaves(), &fanout_counts);
            let leaf_lits: Vec<Lit> = cut.leaves().iter().map(|&n| Lit::new(n, false)).collect();
            let before = work.num_nodes();
            let Some(replacement) = emit_function(&mut work, &tt, &leaf_lits) else {
                continue;
            };
            let created = work.num_nodes() - before;
            if created > saving || replacement.node() == id {
                continue;
            }
            let gain = saving - created;
            if gain == 0 && !options.allow_zero_gain {
                continue;
            }
            if best.as_ref().is_none_or(|&(_, g)| gain > g) {
                best = Some((replacement, gain));
            }
        }
        if let Some((replacement, _)) = best {
            if work.replace(id, replacement).is_ok() {
                stats.rewritten += 1;
                fanout_counts = work.fanout_counts();
            }
        }
    }
    let result = work.cleanup();
    if result.num_ands() <= aig.num_ands() {
        (result, stats)
    } else {
        (aig.cleanup(), RewriteStats::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_sat::{EquivalenceOracle, MiterOracle, Verdict};

    #[test]
    fn collapses_redundant_structure() {
        // f = (a & b) | (a & b & c): one 3-cut rewrite to a & b.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        let f = aig.or(ab, abc);
        aig.add_output(f);
        let before = aig.num_ands();
        let (optimized, stats) = rewrite_impl(&aig, &RewriteOptions::default());
        assert!(optimized.num_ands() < before, "{stats:?}");
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
    }

    #[test]
    fn mux_structure_is_not_worsened() {
        let mut aig = Aig::new();
        let s = aig.add_input();
        let t = aig.add_input();
        let e = aig.add_input();
        let m = aig.mux(s, t, e);
        aig.add_output(m);
        let (optimized, _) = rewrite_impl(&aig, &RewriteOptions::default());
        assert!(optimized.num_ands() <= 3);
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
    }

    #[test]
    fn preserves_function_on_shared_logic() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let d = aig.add_input();
        let x = aig.xor(a, b);
        let y = aig.and(x, c);
        let z = aig.or(x, d); // x shared
        aig.add_output(y);
        aig.add_output(z);
        let (optimized, _) = rewrite_impl(&aig, &RewriteOptions::default());
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
        assert!(optimized.num_ands() <= aig.num_ands());
    }

    #[test]
    fn cut_mffc_counts_exclusive_cone() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let f = aig.and(ab, c);
        aig.add_output(f);
        let counts = aig.fanout_counts();
        let leaves = [a.node(), b.node(), c.node()];
        assert_eq!(cut_mffc(&aig, f.node(), &leaves, &counts), 2);
        // With ab shared, only f is freed.
        aig.add_output(ab);
        let counts = aig.fanout_counts();
        assert_eq!(cut_mffc(&aig, f.node(), &leaves, &counts), 1);
    }
}
