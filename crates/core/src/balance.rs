//! AND-tree balancing.
//!
//! Rebuilds maximal single-fanout AND trees as depth-balanced trees
//! (combining the two shallowest operands first, Huffman-style). Balancing
//! is the `b` step of ABC's `resyn2rs` script, which this repository uses
//! as the baseline optimizer; it reduces depth and often exposes sharing
//! for the other moves.

use std::collections::HashMap;

use sbm_aig::{Aig, Lit, NodeId};

/// Balances all AND trees of `aig`; returns a rebuilt network. The result
/// is functionally equivalent and never deeper.
pub fn balance(aig: &Aig) -> Aig {
    let src = aig.cleanup();
    let fanout_counts = src.fanout_counts();
    let mut out = Aig::new();
    let mut map: HashMap<NodeId, Lit> = HashMap::new();
    map.insert(NodeId::CONST, Lit::FALSE);
    for &input in src.inputs() {
        let l = out.add_input();
        map.insert(input, l);
    }
    // Levels of nodes in the NEW graph (upper bounds; strashing may reuse a
    // shallower existing node, which only helps).
    let mut levels_new: HashMap<NodeId, u32> = HashMap::new();
    for id in src.topo_order() {
        // Collect the maximal AND-tree leaves under `id`: follow
        // uncomplemented edges into single-fanout AND nodes.
        let mut leaves: Vec<Lit> = Vec::new();
        collect_and_leaves(&src, id, &fanout_counts, &mut leaves);
        // Translate to new literals with their levels.
        let mut ops: Vec<(u32, Lit)> = leaves
            .iter()
            .map(|l| {
                let nl = map[&l.node()].complement_if(l.is_complemented());
                let lvl = levels_new.get(&nl.node()).copied().unwrap_or(0);
                (lvl, nl)
            })
            .collect();
        // Huffman-style combine: always AND the two shallowest operands.
        ops.sort_by_key(|&(lvl, _)| std::cmp::Reverse(lvl));
        while ops.len() > 1 {
            let (Some((la, a)), Some((lb, b))) = (ops.pop(), ops.pop()) else {
                unreachable!("the loop condition guarantees two operands");
            };
            let combined = out.and(a, b);
            let lvl = levels_new
                .get(&combined.node())
                .copied()
                .unwrap_or(la.max(lb) + 1);
            levels_new.entry(combined.node()).or_insert(lvl);
            // Insert keeping descending order by level.
            let pos = ops.iter().position(|&(l, _)| l <= lvl).unwrap_or(ops.len());
            ops.insert(pos, (lvl, combined));
        }
        let result = ops.pop().map(|(_, l)| l).unwrap_or(Lit::TRUE);
        map.insert(id, result);
    }
    for l in src.outputs() {
        let nl = map[&l.node()].complement_if(l.is_complemented());
        out.add_output(nl);
    }
    out.cleanup()
}

/// Gathers the operand literals of the maximal AND tree rooted at `id`.
fn collect_and_leaves(aig: &Aig, id: NodeId, fanout_counts: &[u32], leaves: &mut Vec<Lit>) {
    let (a, b) = aig.fanins(id);
    for lit in [a, b] {
        let n = lit.node();
        if !lit.is_complemented() && aig.is_and(n) && fanout_counts[n.index()] == 1 {
            collect_and_leaves(aig, n, fanout_counts, leaves);
        } else {
            leaves.push(lit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_sat::{EquivalenceOracle, MiterOracle, Verdict};

    #[test]
    fn balances_chain_to_log_depth() {
        let mut aig = Aig::new();
        let inputs: Vec<Lit> = (0..8).map(|_| aig.add_input()).collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = aig.and(acc, x);
        }
        aig.add_output(acc);
        assert_eq!(aig.depth(), 7);
        let balanced = balance(&aig);
        assert_eq!(balanced.depth(), 3);
        assert_eq!(balanced.num_ands(), 7);
        assert_eq!(
            MiterOracle::new().check(&aig, &balanced),
            Verdict::Equivalent
        );
    }

    #[test]
    fn respects_shared_nodes() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_output(abc);
        aig.add_output(ab); // ab is shared: must stay a tree boundary
        let balanced = balance(&aig);
        assert_eq!(
            MiterOracle::new().check(&aig, &balanced),
            Verdict::Equivalent
        );
        assert_eq!(balanced.num_ands(), 2);
    }

    #[test]
    fn unbalanced_mixed_logic_preserved() {
        let mut aig = Aig::new();
        let inputs: Vec<Lit> = (0..6).map(|_| aig.add_input()).collect();
        let mut acc = inputs[0];
        for (i, &x) in inputs[1..].iter().enumerate() {
            acc = if i % 2 == 0 {
                aig.or(acc, x)
            } else {
                aig.and(acc, x)
            };
        }
        aig.add_output(acc);
        let balanced = balance(&aig);
        assert!(balanced.depth() <= aig.depth());
        assert_eq!(
            MiterOracle::new().check(&aig, &balanced),
            Verdict::Equivalent
        );
    }
}
