//! Boolean-difference-based resubstitution (paper Section III).
//!
//! Every function can be written as `f = (∂f/∂g) ⊕ g` where
//! `∂f/∂g = f ⊕ g` is the Boolean difference. When the difference has a
//! small BDD, implementing `f` as `difference ⊕ g` (reusing the existing
//! node `g`) can be much cheaper than `f`'s current cone — the method
//! "untangles reconvergent logic not touched by other techniques"
//! (Section V-B).
//!
//! This module implements Alg. 1 (difference computation and
//! implementation with BDDs) and Alg. 2 (the windowed resubstitution
//! flow), with the paper's filters: difference-BDD size threshold
//! (default 10), `xor_cost`-aware saving check against `mffc(f)`,
//! structural support filters, and a BDD node limit with bail-out.

use std::collections::{HashMap, HashSet};

use sbm_aig::sim::Signatures;
use sbm_aig::window::{partition, PartitionOptions};
use sbm_aig::{Aig, Lit, NodeId};
use sbm_bdd::{Bdd, BddManager};
use sbm_budget::Budget;
use sbm_sim::{record_filter_hits, record_filter_misses, SigService};

use crate::bdd_bridge::{bdd_to_aig, pooled_manager, recycle_manager, window_bdds};
use crate::rewrite::{cut_mffc, cut_mffc_set};

/// Options for Boolean-difference resubstitution.
#[derive(Debug, Clone, Copy)]
pub struct BdiffOptions {
    /// Maximum BDD size of the difference (paper: "we found 10 to be a
    /// suitable tradeoff to have good QoR and feasible runtime").
    pub max_diff_size: usize,
    /// AIG nodes needed for a two-input XOR (technology-dependent;
    /// 3 in a plain AIG).
    pub xor_cost: usize,
    /// Maximum candidate pairs tried per node `f` (the paper fixes "the
    /// maximum number m of pairs to be tried").
    pub max_pairs_per_node: usize,
    /// Node limit of the per-window BDD manager (the paper's maximum
    /// memory limit).
    pub bdd_node_limit: usize,
    /// Window limits; level count has priority (Section III-B).
    pub partition: PartitionOptions,
}

impl Default for BdiffOptions {
    fn default() -> Self {
        BdiffOptions {
            max_diff_size: 10,
            xor_cost: 3,
            max_pairs_per_node: 64,
            bdd_node_limit: 20_000,
            partition: PartitionOptions {
                max_nodes: 1000,
                max_inputs: 14,
                max_levels: 20,
            },
        }
    }
}

/// Statistics of a resubstitution run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BdiffStats {
    /// Windows processed.
    pub windows: usize,
    /// Candidate pairs evaluated.
    pub pairs_tried: usize,
    /// Accepted rewrites `f ← (∂f/∂g) ⊕ g`.
    pub accepted: usize,
    /// Rewrites found through the `all_bdds` hashtable (an existing node
    /// already implements the difference).
    pub diff_reused: usize,
    /// BDD bailouts (node limit).
    pub bailouts: usize,
}

#[cfg(test)]
pub(crate) fn boolean_difference_resub_impl(
    aig: &Aig,
    options: &BdiffOptions,
) -> (Aig, BdiffStats) {
    boolean_difference_resub_budgeted(aig, options, &Budget::unlimited())
}

pub(crate) fn boolean_difference_resub_budgeted(
    aig: &Aig,
    options: &BdiffOptions,
    budget: &Budget,
) -> (Aig, BdiffStats) {
    boolean_difference_resub_filtered(aig, options, budget, None)
}

/// Like [`boolean_difference_resub_budgeted`], but with signature-based
/// pair screening: when `sim` is present, a candidate pair whose
/// difference signature matches no existing window signal and whose
/// saving cannot cover even a single-node difference network is rejected
/// before the difference BDD is built. The filter is a sound necessary
/// condition of [`evaluate_pair`]'s saving check, so the accepted
/// rewrites are unchanged. Bdiff rewrites are exact (`f = (f ⊕ g) ⊕ g`),
/// so one signature computation stays valid across the whole pass.
pub(crate) fn boolean_difference_resub_filtered(
    aig: &Aig,
    options: &BdiffOptions,
    budget: &Budget,
    sim: Option<&SigService>,
) -> (Aig, BdiffStats) {
    let mut work = aig.cleanup();
    let mut stats = BdiffStats::default();
    let parts = partition(&work, &options.partition);
    let sig: Option<Signatures> = sim.map(|svc| svc.signatures(&work));
    for part in &parts {
        if budget.check().is_err() {
            break;
        }
        stats.windows += 1;
        if part.leaves.is_empty() {
            continue;
        }
        // No variable-count cap here: BDDs scale to wide supports (the
        // paper applies the method monolithically to i2c's 147 inputs);
        // the node limit is the only safety valve.
        let mut mgr = pooled_manager(part.leaves.len(), options.bdd_node_limit);
        mgr.set_budget(budget.clone());
        let bdds = window_bdds(&work, part, &mut mgr);
        // A tripped budget also surfaces as `None` entries; only genuine
        // node-limit failures count as bailouts.
        if budget.check().is_ok() {
            stats.bailouts += bdds.values().filter(|b| b.is_none()).count();
        }
        // Alg. 1's all_bdds hashtable: canonical BDD → implementing literal.
        // Leaves and members both participate, so an existing node whose
        // function equals a difference is reused directly.
        let mut all_bdds: HashMap<Bdd, Lit> = HashMap::new();
        all_bdds.insert(Bdd::ZERO, Lit::FALSE);
        all_bdds.insert(Bdd::ONE, Lit::TRUE);
        for (&node, &maybe) in &bdds {
            if let Some(b) = maybe {
                all_bdds.entry(b).or_insert_with(|| Lit::new(node, false));
                if let Ok(nb) = mgr.not(b) {
                    all_bdds.entry(nb).or_insert_with(|| Lit::new(node, true));
                }
            }
        }
        let leaf_lits: Vec<Lit> = part.leaves.iter().map(|&n| Lit::new(n, false)).collect();
        let mut fanout_counts = work.fanout_counts();
        // Support sets are queried once per candidate pair; cache them.
        let supports: HashMap<NodeId, Vec<usize>> = bdds
            .iter()
            .filter_map(|(&n, &b)| b.map(|b| (n, mgr.support(b))))
            .collect();
        // Signatures of every reusable window literal (both phases, plus
        // the constants): a difference can only take the Reuse fast path
        // if its signature appears here.
        let lit_sigs: Option<HashSet<Vec<u64>>> = sig.as_ref().map(|sig| {
            let words = sig.words_per_node();
            let mut set: HashSet<Vec<u64>> = HashSet::new();
            set.insert(vec![0u64; words]);
            set.insert(vec![u64::MAX; words]);
            for &n in part.leaves.iter().chain(part.nodes.iter()) {
                for lit in [Lit::new(n, false), Lit::new(n, true)] {
                    set.insert((0..words).map(|w| sig.lit_word(lit, w)).collect());
                }
            }
            set
        });

        for &f in &part.nodes {
            if budget.check().is_err() {
                break;
            }
            // Skip replaced nodes and nodes that died when an earlier
            // replacement freed their cone (fanout count 0 ⇒ unreachable).
            if work.is_replaced(f) || fanout_counts.get(f.index()).is_none_or(|&c| c == 0) {
                continue;
            }
            let Some(bf) = bdds.get(&f).copied().flatten() else {
                continue;
            };
            let support_f = &supports[&f];
            if support_f.is_empty() {
                continue;
            }
            let mut pairs_left = options.max_pairs_per_node;
            let mut best: Option<Candidate> = None;
            // Freed set of f down to the window leaves, computed once; a
            // pair only needs a correction when g lies inside it.
            let freed = cut_mffc_set(&work, f, &part.leaves, &fanout_counts);
            for &g in part.nodes.iter().chain(part.leaves.iter()) {
                if pairs_left == 0 {
                    break;
                }
                if g == f || work.is_replaced(g) {
                    continue;
                }
                let Some(bg) = bdds.get(&g).copied().flatten() else {
                    continue;
                };
                if bg == bf {
                    continue; // identical function: sweeping territory
                }
                // Structural filtering: skip pairs "with less than one
                // element in their shared support" (paper, Section III-B).
                // Both supports are sorted ascending: merge-intersect.
                let support_g = &supports[&g];
                let mut shared = 0usize;
                let (mut i, mut j) = (0, 0);
                while i < support_f.len() && j < support_g.len() {
                    match support_f[i].cmp(&support_g[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            shared += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                if shared == 0 {
                    continue;
                }
                pairs_left -= 1;
                stats.pairs_tried += 1;
                let saving = if freed.contains(&g) {
                    // g would be re-referenced: recompute with g as an
                    // extra boundary (rare).
                    let mut boundary = part.leaves.clone();
                    boundary.push(g);
                    cut_mffc(&work, f, &boundary, &fanout_counts)
                } else {
                    freed.len()
                };
                // Signature prefilter: the Reuse path needs the difference
                // to match an existing window signal; the Build path needs
                // saving ≥ diff_size + xor_cost with diff_size ≥ 1. A pair
                // failing both provably fails `evaluate_pair`, so skipping
                // its BDD XOR changes nothing.
                if let (Some(sig), Some(lit_sigs)) = (sig.as_ref(), lit_sigs.as_ref()) {
                    let words = sig.words_per_node();
                    let diff_sig: Vec<u64> = (0..words)
                        .map(|w| sig.node_word(f, w) ^ sig.node_word(g, w))
                        .collect();
                    let reuse_possible = lit_sigs.contains(&diff_sig);
                    if !reuse_possible && saving < options.xor_cost + 1 {
                        record_filter_hits(1);
                        continue;
                    }
                    record_filter_misses(1);
                }
                if let Some(candidate) = evaluate_pair(
                    &mut mgr, &all_bdds, saving, f, g, bf, bg, options, &mut stats,
                ) {
                    let better = match &best {
                        None => true,
                        Some(b) => candidate.est_gain > b.est_gain,
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
            }
            // Apply the best candidate for f, with exact node accounting
            // (the estimate is a lower bound on implementation cost).
            if let Some(candidate) = best {
                if apply_candidate(&mut work, &mut mgr, &leaf_lits, f, &candidate, &mut stats) {
                    fanout_counts = work.fanout_counts();
                }
            }
            // Free the difference BDDs accumulated for this node — the
            // paper's per-iteration memory release (Section III-C).
            mgr.clear_cache();
        }
        recycle_manager(mgr);
    }
    let result = work.cleanup();
    if result.num_ands() <= aig.num_ands() {
        (result, stats)
    } else {
        (aig.cleanup(), BdiffStats::default())
    }
}

/// A profitable rewrite candidate for a node `f`.
struct Candidate {
    /// The `g` of `f = (∂f/∂g) ⊕ g`.
    g: NodeId,
    /// How to obtain the difference network.
    kind: CandidateKind,
    /// Estimated gain: `saving − estimated implementation cost`.
    est_gain: i64,
    /// Exact freed-node count when the rewrite is applied.
    saving: usize,
}

enum CandidateKind {
    /// The difference already exists in the window (Alg. 1 lines 5–7).
    Reuse(Lit),
    /// The difference must be strashed from its BDD (lines 15–16).
    Build(Bdd),
}

/// Alg. 1, evaluation half: computes `∂f/∂g` with BDDs and applies the
/// size and saving filters. Returns a candidate if the pair passes.
#[allow(clippy::too_many_arguments)]
fn evaluate_pair(
    mgr: &mut BddManager,
    all_bdds: &HashMap<Bdd, Lit>,
    saving: usize,
    f: NodeId,
    g: NodeId,
    bf: Bdd,
    bg: Bdd,
    options: &BdiffOptions,
    stats: &mut BdiffStats,
) -> Option<Candidate> {
    let diff = match mgr.xor(bf, bg) {
        Ok(diff) => diff,
        Err(error) => {
            // Budget trips mean "stop working", not "this pair blew the
            // node limit" — only the latter is a bailout.
            if !error.is_budget() {
                stats.bailouts += 1;
            }
            return None;
        }
    };
    // `saving` is f's exclusive cone down to the window leaves and g —
    // exactly what the replacement `diff(leaves) ⊕ g` frees.

    // Fast path: the difference already exists in the window.
    if let Some(&existing) = all_bdds.get(&diff) {
        if existing.node() == f || options.xor_cost > saving {
            return None;
        }
        return Some(Candidate {
            g,
            kind: CandidateKind::Reuse(existing),
            est_gain: saving as i64 - options.xor_cost as i64,
            saving,
        });
    }
    // Size filter (lines 8–10): bounds the implementation cost of the
    // difference network.
    let diff_size = mgr.size(diff);
    if diff_size > options.max_diff_size {
        return None;
    }
    // Saving filter (lines 11–14): the BDD size is a lower bound on AIG
    // nodes for the difference.
    if diff_size + options.xor_cost > saving {
        return None;
    }
    Some(Candidate {
        g,
        kind: CandidateKind::Build(diff),
        est_gain: saving as i64 - (diff_size + options.xor_cost) as i64,
        saving,
    })
}

/// Alg. 1, implementation half: strash the difference into the AIG, XOR
/// it with `g` and replace `f`, with exact created-node accounting
/// (Alg. 2 acceptance: the node count must not increase).
fn apply_candidate(
    work: &mut Aig,
    mgr: &mut BddManager,
    leaf_lits: &[Lit],
    f: NodeId,
    candidate: &Candidate,
    stats: &mut BdiffStats,
) -> bool {
    let g_lit = Lit::new(candidate.g, false);
    let nodes_before = work.num_nodes();
    let result = match &candidate.kind {
        CandidateKind::Reuse(existing) => work.xor(*existing, g_lit),
        CandidateKind::Build(diff) => {
            let diff_lit = bdd_to_aig(work, mgr, *diff, leaf_lits);
            work.xor(diff_lit, g_lit)
        }
    };
    let created = work.num_nodes() - nodes_before;
    // Strashing back onto f itself is an identity, not a rewrite.
    if work.resolve(result).node() == f || created > candidate.saving {
        return false;
    }
    if work.replace(f, result).is_ok() {
        stats.accepted += 1;
        if matches!(candidate.kind, CandidateKind::Reuse(_)) {
            stats.diff_reused += 1;
        }
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_sat::{EquivalenceOracle, MiterOracle, Verdict};

    /// The Fig. 1 flavor of circuit: f and g share most of their logic, so
    /// the Boolean difference is tiny.
    fn reconvergent_pair() -> Aig {
        let mut aig = Aig::new();
        let x: Vec<Lit> = (0..5).map(|_| aig.add_input()).collect();
        // g = (x1 & x2) | (x3 & x4)
        let a = aig.and(x[0], x[1]);
        let b = aig.and(x[2], x[3]);
        let g = aig.or(a, b);
        // f = g ⊕ x5, but built as an entangled cone that doesn't share
        // structure with g.
        let na = aig.and(x[0], x[1]);
        let nb = aig.and(x[2], x[3]);
        let og = aig.or(na, nb);
        let f = aig.xor(og, x[4]);
        aig.add_output(g);
        aig.add_output(f);
        aig
    }

    #[test]
    fn rewrites_reconvergent_logic() {
        let aig = reconvergent_pair();
        let before = aig.num_ands();
        let (optimized, stats) = boolean_difference_resub_impl(&aig, &BdiffOptions::default());
        assert!(optimized.num_ands() <= before, "never worse");
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
        assert!(stats.windows >= 1);
    }

    #[test]
    fn finds_difference_rewrite() {
        // f = maj(a,b,c), g = a&b | a&c | b&c built separately; plus an
        // XOR-related pair where the difference is a single leaf:
        // f2 = g2 ⊕ d with g2 = a ⊕ b  →  diff = d.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let d = aig.add_input();
        let g2 = aig.xor(a, b);
        // f2 built as a flat 3-input XOR cone (9 nodes, no sharing with g2
        // beyond inputs).
        let t1 = aig.and(a, b);
        let t2 = aig.nor(a, b);
        let even2 = aig.or(t1, t2); // xnor(a,b)
        let f2 = aig.mux(d, even2, !even2); // (a⊕b)⊕d
        aig.add_output(g2);
        aig.add_output(f2);
        let before = aig.num_ands();
        let (optimized, stats) = boolean_difference_resub_impl(&aig, &BdiffOptions::default());
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
        assert!(
            optimized.num_ands() <= before,
            "{} -> {}",
            before,
            optimized.num_ands()
        );
        assert!(stats.pairs_tried > 0);
    }

    #[test]
    fn never_increases_size_on_random_networks() {
        // Deterministic pseudo-random DAGs.
        let mut seed = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..5 {
            let mut aig = Aig::new();
            let mut signals: Vec<Lit> = (0..6).map(|_| aig.add_input()).collect();
            for _ in 0..40 {
                let r = next();
                let i = (r as usize >> 8) % signals.len();
                let j = (r as usize >> 24) % signals.len();
                let x = signals[i].complement_if(r & 1 == 1);
                let y = signals[j].complement_if(r & 2 == 2);
                let s = match (r >> 2) % 3 {
                    0 => aig.and(x, y),
                    1 => aig.or(x, y),
                    _ => aig.xor(x, y),
                };
                signals.push(s);
            }
            for k in 0..3 {
                let out = signals[signals.len() - 1 - k];
                aig.add_output(out);
            }
            let clean = aig.cleanup();
            let (optimized, _) = boolean_difference_resub_impl(&clean, &BdiffOptions::default());
            assert!(optimized.num_ands() <= clean.num_ands());
            assert_eq!(
                MiterOracle::new().check(&clean, &optimized),
                Verdict::Equivalent
            );
        }
    }
}
