//! Bridging windows of AIG logic into BDDs and back.
//!
//! The Boolean-difference and MSPF engines reason with BDDs built over the
//! leaves of a window ("The BDDs for all nodes in the partition are
//! precomputed and stored in the hashtable `all_bdds`", Alg. 1) and
//! implement results back "as an AIG, obtained using structural hashing
//! (strashing) on the corresponding BDD" (Section III-C).

use std::cell::RefCell;
use std::collections::HashMap;

use sbm_aig::window::Partition;
use sbm_aig::{Aig, Lit, NodeId};
use sbm_bdd::{Bdd, BddManager, BddStats, BddTally, ManagerPool};

thread_local! {
    /// One manager pool per worker thread: the pipeline fans windows out
    /// to scoped threads, and each thread recycles its own managers
    /// without any locking.
    static BDD_POOL: RefCell<ManagerPool> = RefCell::new(ManagerPool::new());
}

/// Takes a thread-locally pooled manager, reset for `num_vars` variables
/// and `node_limit`. Return it with [`recycle_manager`] when the window is
/// done so its allocations stay warm for the next one.
pub fn pooled_manager(num_vars: usize, node_limit: usize) -> BddManager {
    BDD_POOL.with(|pool| pool.borrow_mut().acquire(num_vars, node_limit))
}

/// Returns a manager obtained from [`pooled_manager`] to this thread's
/// pool. The pool absorbs the manager's [`BddStats`] into its
/// [`BddTally`] before any recycling reset can zero them.
pub fn recycle_manager(mgr: BddManager) {
    BDD_POOL.with(|pool| pool.borrow_mut().release(mgr));
}

/// Banks a manager's counters into this thread's pool tally without
/// releasing the manager — for callers that reset a manager *in place*
/// (which zeroes its [`BddStats`]) and keep using it.
pub fn harvest_manager_stats(stats: &BddStats) {
    BDD_POOL.with(|pool| pool.borrow_mut().note_stats(stats));
}

/// Takes the calling thread's accumulated [`BddTally`], leaving it
/// zeroed. Like [`sbm_sat::drain_sat_tally`], drains are destructive so
/// each counter is attributed to exactly one report.
pub fn drain_bdd_tally() -> BddTally {
    BDD_POOL.with(|pool| pool.borrow_mut().drain_tally())
}

/// Adds `tally` back into the calling thread's pool accumulator — used
/// when an inner run's report (which carried the tally) is discarded but
/// its BDD work should still surface in the surrounding scope.
pub fn note_bdd_tally(tally: &BddTally) {
    BDD_POOL.with(|pool| pool.borrow_mut().note_tally(tally));
}

/// Builds the BDDs of all nodes of `partition` as functions of its leaves
/// (leaf `i` = BDD variable `i`).
///
/// A node whose BDD construction hits the manager's node limit gets `None`
/// — the paper's "BDD of size 0 for the given node, which will be
/// disregarded in the next steps of the algorithm".
pub fn window_bdds(
    aig: &Aig,
    partition: &Partition,
    mgr: &mut BddManager,
) -> HashMap<NodeId, Option<Bdd>> {
    let mut bdds: HashMap<NodeId, Option<Bdd>> = HashMap::new();
    bdds.insert(NodeId::CONST, Some(Bdd::ZERO));
    for (i, &leaf) in partition.leaves.iter().enumerate() {
        let v = mgr.var(i);
        bdds.insert(leaf, Some(v));
    }
    for &id in &partition.nodes {
        let (a, b) = aig.fanins(id);
        let fa = lit_bdd(mgr, &bdds, a);
        let fb = lit_bdd(mgr, &bdds, b);
        let result = match (fa, fb) {
            (Some(x), Some(y)) => mgr.and(x, y).ok(),
            _ => None,
        };
        bdds.insert(id, result);
    }
    bdds
}

/// The BDD of an AIG literal given node BDDs; `None` propagates bailouts.
pub fn lit_bdd(mgr: &mut BddManager, bdds: &HashMap<NodeId, Option<Bdd>>, lit: Lit) -> Option<Bdd> {
    let base = (*bdds.get(&lit.node())?)?;
    if lit.is_complemented() {
        mgr.not(base).ok()
    } else {
        Some(base)
    }
}

/// Strashes a BDD into the AIG as a multiplexer tree over the window's leaf
/// literals (`leaf_lits[i]` implements BDD variable `i`). Shared BDD nodes
/// become shared AIG nodes.
///
/// # Panics
///
/// Panics if the BDD mentions a variable with no corresponding leaf
/// literal.
pub fn bdd_to_aig(aig: &mut Aig, mgr: &BddManager, f: Bdd, leaf_lits: &[Lit]) -> Lit {
    let mut map: HashMap<Bdd, Lit> = HashMap::new();
    map.insert(Bdd::ZERO, Lit::FALSE);
    map.insert(Bdd::ONE, Lit::TRUE);
    mgr.walk_postorder(f, |node, var, lo, hi| {
        let sel = leaf_lits[var];
        let l = map[&lo];
        let h = map[&hi];
        let lit = aig.mux(sel, h, l);
        map.insert(node, lit);
    });
    map[&f]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_aig::window::{partition, PartitionOptions};

    #[test]
    fn window_bdds_match_eval() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.maj3(a, b, c);
        aig.add_output(m);
        let parts = partition(&aig, &PartitionOptions::default());
        assert_eq!(parts.len(), 1);
        let p = &parts[0];
        let mut mgr = BddManager::new(p.leaves.len());
        let bdds = window_bdds(&aig, p, &mut mgr);
        let bm = bdds[&m.node()].expect("no bailout expected");
        assert_eq!(mgr.sat_count(bm), 4);
    }

    #[test]
    fn bailout_marks_node_none() {
        let mut aig = Aig::new();
        let inputs: Vec<_> = (0..12).map(|_| aig.add_input()).collect();
        let f = aig.xor_many(&inputs);
        aig.add_output(f);
        let parts = partition(
            &aig,
            &PartitionOptions {
                max_nodes: 1000,
                max_inputs: 14,
                max_levels: 30,
            },
        );
        let p = &parts[0];
        let mut mgr = BddManager::with_node_limit(p.leaves.len(), 4);
        let bdds = window_bdds(&aig, p, &mut mgr);
        assert!(bdds.values().any(Option::is_none), "tiny limit must bail");
    }

    #[test]
    fn bdd_round_trips_through_aig() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let f = aig.mux(a, b, c);
        aig.add_output(f);
        let parts = partition(&aig, &PartitionOptions::default());
        let p = &parts[0];
        let mut mgr = BddManager::new(p.leaves.len());
        let bdds = window_bdds(&aig, p, &mut mgr);
        // The output literal may be complemented: take the literal's BDD.
        let bf = lit_bdd(&mut mgr, &bdds, f).unwrap();
        let leaf_lits: Vec<Lit> = p.leaves.iter().map(|&n| Lit::new(n, false)).collect();
        let rebuilt = bdd_to_aig(&mut aig, &mgr, bf, &leaf_lits);
        aig.add_output(rebuilt);
        // Both outputs must agree everywhere.
        for m in 0..8 {
            let assignment = [(m & 1) == 1, (m >> 1) & 1 == 1, (m >> 2) & 1 == 1];
            let out = aig.eval(&assignment);
            assert_eq!(out[0], out[1], "pattern {m}");
        }
    }
}
