//! MSPF computation with BDDs (paper Section IV-C).
//!
//! The Maximum Set of Permissible Functions of a node is the set of
//! functions it can be changed to without altering any primary output — the
//! most powerful don't-care interpretation for synthesis (Muroga's
//! transduction \[4\]). Following the paper, MSPF is computed per window
//! with BDDs via cofactoring:
//!
//! ```text
//! mspf(node) = ⋀_po ( ¬(f0(po) ⊕ f1(po)) ∨ dc(po) )
//! ```
//!
//! where `f0`/`f1` are the window-output cofactors with respect to the
//! node. A candidate replacement `new` is *connectable* iff
//! `bdd(new) ∧ ¬mspf = bdd(old) ∧ ¬mspf` — thanks to BDD strong
//! canonicity this is a cheap canonical-node comparison, which is what lets
//! the engine "look not just for one but for many connectable fanins"
//! (Section IV-C).

use std::collections::HashMap;

use sbm_aig::mffc::mffc_size;
use sbm_aig::sim::Signatures;
use sbm_aig::window::{partition, Partition, PartitionOptions};
use sbm_aig::{Aig, Lit, NodeId};
use sbm_bdd::{Bdd, BddError, BddManager};
use sbm_budget::Budget;
use sbm_sim::{
    keep_candidate, record_filter_hits, record_filter_misses, window_care_mask, SigService,
};

use crate::bdd_bridge::{pooled_manager, recycle_manager, window_bdds};

/// Options for MSPF optimization.
#[derive(Debug, Clone, Copy)]
pub struct MspfOptions {
    /// Window limits — the paper uses "partitions of medium size" for this
    /// engine.
    pub partition: PartitionOptions,
    /// BDD manager node limit (memory bailout).
    pub bdd_node_limit: usize,
    /// Maximum replacement candidates tried per node.
    pub max_candidates: usize,
}

impl Default for MspfOptions {
    fn default() -> Self {
        MspfOptions {
            partition: PartitionOptions {
                max_nodes: 400,
                max_inputs: 12,
                max_levels: 16,
            },
            bdd_node_limit: 50_000,
            max_candidates: 32,
        }
    }
}

/// Statistics of an MSPF pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MspfStats {
    /// Nodes whose MSPF was computed.
    pub mspf_computed: usize,
    /// Nodes replaced by a permissible existing signal.
    pub replaced: usize,
    /// Nodes proven constant under observability don't-cares.
    pub constants: usize,
    /// BDD bailouts.
    pub bailouts: usize,
}

/// Computes the MSPF of `node` inside the window: the leaf-minterm set on
/// which the node's value is not observable at any window root.
///
/// `node_var_bdds` must contain the window BDDs rebuilt with `node` treated
/// as a free variable (`x_node` = the last manager variable).
fn mspf_of_node(
    mgr: &mut BddManager,
    roots_with_var: &[Bdd],
    x_node: usize,
) -> Result<Bdd, BddError> {
    // mspf = ⋀_roots ¬(f0 ⊕ f1)
    let mut mspf = Bdd::ONE;
    for &root in roots_with_var {
        let f0 = mgr.cofactor(root, x_node, false)?;
        let f1 = mgr.cofactor(root, x_node, true)?;
        let diff = mgr.xor(f0, f1)?;
        let stable = mgr.not(diff)?;
        mspf = mgr.and(mspf, stable)?;
        if mspf == Bdd::ZERO {
            break; // paper: stop as soon as no permissible flexibility
        }
    }
    Ok(mspf)
}

/// Rebuilds the window's root BDDs with `target` replaced by a fresh
/// variable (index `leaves.len()`), so that cofactoring w.r.t. that
/// variable yields the observability cofactors.
fn roots_with_node_var(
    aig: &Aig,
    part: &Partition,
    target: NodeId,
    mgr: &mut BddManager,
) -> Option<Vec<Bdd>> {
    let x = mgr.var(part.leaves.len());
    let mut bdds: HashMap<NodeId, Bdd> = HashMap::new();
    bdds.insert(NodeId::CONST, Bdd::ZERO);
    for (i, &leaf) in part.leaves.iter().enumerate() {
        let v = mgr.var(i);
        bdds.insert(leaf, v);
    }
    bdds.insert(target, x);
    for &id in &part.nodes {
        if id == target || aig.is_replaced(id) {
            continue;
        }
        let (a, b) = aig.fanins(id);
        // Earlier replacements in this pass can redirect a fanin outside
        // the (pre-pass) window: the window is stale, give up on it.
        let get = |l: Lit, bdds: &HashMap<NodeId, Bdd>, mgr: &mut BddManager| -> Option<Bdd> {
            let base = *bdds.get(&l.node())?;
            if l.is_complemented() {
                mgr.not(base).ok()
            } else {
                Some(base)
            }
        };
        let fa = get(a, &bdds, mgr)?;
        let fb = get(b, &bdds, mgr)?;
        let f = mgr.and(fa, fb).ok()?;
        bdds.insert(id, f);
    }
    part.roots.iter().map(|r| bdds.get(r).copied()).collect()
}

#[cfg(test)]
pub(crate) fn mspf_optimize_impl(aig: &Aig, options: &MspfOptions) -> (Aig, MspfStats) {
    mspf_optimize_budgeted(aig, options, &Budget::unlimited())
}

/// Counts `error` as a node-limit bailout; budget interruptions are a
/// "stop working" signal, not a per-node failure, and are excluded so
/// `MspfStats::bailouts` stays exact under deadlines.
fn count_bailout(stats: &mut MspfStats, error: BddError) {
    if !error.is_budget() {
        stats.bailouts += 1;
    }
}

pub(crate) fn mspf_optimize_budgeted(
    aig: &Aig,
    options: &MspfOptions,
    budget: &Budget,
) -> (Aig, MspfStats) {
    mspf_optimize_filtered(aig, options, budget, None)
}

/// Like [`mspf_optimize_budgeted`], but with signature-based candidate
/// filtering: when `sim` is present, every node's replacement candidates
/// are screened against the shared simulation signatures under a
/// simulated observability care mask *before* the expensive BDD
/// cofactoring — a node none of whose candidates survive skips its MSPF
/// computation entirely. The filter is a sound necessary condition
/// (identical behavior on every care-set pattern simulation has seen),
/// so the set of accepted replacements is unchanged.
pub(crate) fn mspf_optimize_filtered(
    aig: &Aig,
    options: &MspfOptions,
    budget: &Budget,
    sim: Option<&SigService>,
) -> (Aig, MspfStats) {
    let mut work = aig.cleanup();
    let mut stats = MspfStats::default();
    let parts = partition(&work, &options.partition);
    let mut fanout_counts = work.fanout_counts();
    // Network-wide signatures for the filter; refreshed after every
    // accepted replacement (fanins resolve through replacements, so one
    // resimulation keeps all live nodes exact).
    let mut sig: Option<Signatures> = sim.map(|svc| svc.signatures(&work));
    for part in &parts {
        if budget.check().is_err() {
            break; // wind down: keep what was already optimized
        }
        if part.leaves.is_empty() || part.leaves.len() + 1 > sbm_tt::MAX_VARS {
            continue;
        }
        // Sort members by estimated saving (MFFC, descending) — the
        // paper's "further sorted w.r.t. an estimated saving metric".
        let mut members: Vec<NodeId> = part.nodes.clone();
        members.sort_by_key(|&n| std::cmp::Reverse(mffc_size(&work, n, &fanout_counts)));

        // Plain window BDDs for candidate comparison. MSPF replacements
        // preserve the window *roots* but may change internal member
        // functions, so this map is rebuilt after every accepted
        // replacement.
        let mut mgr = pooled_manager(part.leaves.len() + 1, options.bdd_node_limit);
        mgr.set_budget(budget.clone());
        let mut bdds = window_bdds(&work, part, &mut mgr);

        for &f in &members {
            if budget.check().is_err() {
                break;
            }
            if work.is_replaced(f) || fanout_counts.get(f.index()).is_none_or(|&c| c == 0) {
                continue;
            }
            let saving = mffc_size(&work, f, &fanout_counts);
            if saving == 0 {
                continue;
            }
            let Some(bf) = bdds.get(&f).copied().flatten() else {
                // A missing window BDD is a node-limit bailout unless the
                // budget tripped mid-build (then it is an interruption).
                if budget.check().is_ok() {
                    stats.bailouts += 1;
                }
                continue;
            };
            // Candidate list, truncated to the same budget the unfiltered
            // pass would try; signature filtering then only ever *removes*
            // entries, so the first (and thus accepted) connectable
            // candidate is identical with and without the filter.
            let mut candidates: Vec<Lit> = vec![Lit::FALSE, Lit::TRUE];
            candidates.extend(
                part.leaves
                    .iter()
                    .chain(part.nodes.iter())
                    .filter(|&&n| n != f)
                    .flat_map(|&n| [Lit::new(n, false), Lit::new(n, true)]),
            );
            candidates.truncate(options.max_candidates * 2);
            if let Some(sig) = sig.as_ref() {
                let care = window_care_mask(&work, sig, &part.nodes, &part.roots, f);
                let before_filter = candidates.len();
                candidates.retain(|&cand| keep_candidate(sig, f, cand, &care));
                record_filter_hits((before_filter - candidates.len()) as u64);
                record_filter_misses(candidates.len() as u64);
                if candidates.is_empty() {
                    // Every candidate provably differs on an observable
                    // pattern: the whole MSPF computation for this node
                    // cannot yield a replacement, skip it.
                    continue;
                }
            }
            // Root functions with f as a free variable, in a manager reset
            // after this node — the paper's memory strategy with the
            // allocations recycled.
            let mut var_mgr = pooled_manager(part.leaves.len() + 1, options.bdd_node_limit);
            var_mgr.set_budget(budget.clone());
            let Some(roots) = roots_with_node_var(&work, part, f, &mut var_mgr) else {
                if budget.check().is_ok() {
                    stats.bailouts += 1;
                }
                recycle_manager(var_mgr);
                continue;
            };
            let mspf = match mspf_of_node(&mut var_mgr, &roots, part.leaves.len()) {
                Ok(mspf) => mspf,
                Err(error) => {
                    count_bailout(&mut stats, error);
                    recycle_manager(var_mgr);
                    continue;
                }
            };
            stats.mspf_computed += 1;
            if mspf == Bdd::ZERO {
                continue; // no flexibility at all
            }
            // Import the MSPF into the main manager (it is a function of
            // the leaves only — x_node was cofactored away).
            let mspf_tt = var_mgr.to_truth_table(mspf);
            recycle_manager(var_mgr);
            let mspf_main = match mgr.from_truth_table(&mspf_tt) {
                Ok(b) => b,
                Err(error) => {
                    count_bailout(&mut stats, error);
                    continue;
                }
            };
            let care = match mgr.not(mspf_main) {
                Ok(b) => b,
                Err(error) => {
                    count_bailout(&mut stats, error);
                    continue;
                }
            };
            // Connectability: bdd(new) ∧ care == bdd(f) ∧ care.
            let f_care = match mgr.and(bf, care) {
                Ok(b) => b,
                Err(error) => {
                    count_bailout(&mut stats, error);
                    continue;
                }
            };
            let mut replaced = false;
            for cand in candidates {
                if work.is_replaced(cand.node()) && !cand.is_const() {
                    continue;
                }
                let base = match cand {
                    l if l == Lit::FALSE => Some(Bdd::ZERO),
                    l if l == Lit::TRUE => Some(Bdd::ONE),
                    l => {
                        let b = bdds.get(&l.node()).copied().flatten();
                        match (b, l.is_complemented()) {
                            (Some(b), false) => Some(b),
                            (Some(b), true) => mgr.not(b).ok(),
                            (None, _) => None,
                        }
                    }
                };
                let Some(bc) = base else { continue };
                if bc == bf {
                    continue; // same function; nothing to gain here
                }
                let Ok(c_care) = mgr.and(bc, care) else { break };
                // Strong canonicity: connectable iff same canonical node.
                if c_care == f_care && work.replace(f, cand).is_ok() {
                    stats.replaced += 1;
                    if cand.is_const() {
                        stats.constants += 1;
                    }
                    fanout_counts = work.fanout_counts();
                    replaced = true;
                    break;
                }
            }
            if replaced {
                // The replacement preserves the window roots but may change
                // internal member functions: rebuild the comparison BDDs.
                // The in-place reset below zeroes the manager's counters,
                // so bank them into the thread's pool tally first.
                crate::bdd_bridge::harvest_manager_stats(&mgr.stats());
                mgr.reset(part.leaves.len() + 1, options.bdd_node_limit);
                mgr.set_budget(budget.clone());
                bdds = window_bdds(&work, part, &mut mgr);
                sig = sim.map(|svc| svc.signatures(&work));
            }
        }
        recycle_manager(mgr);
    }
    let result = work.cleanup();
    if result.num_ands() <= aig.num_ands() {
        (result, stats)
    } else {
        (aig.cleanup(), MspfStats::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_sat::{EquivalenceOracle, MiterOracle, Verdict};

    #[test]
    fn observability_dont_cares_simplify() {
        // g = (a ⊕ b) & a: under the & a context, (a ⊕ b) only matters
        // when a = 1, where a ⊕ b = !b — so g == a & !b and the XOR's
        // 3 nodes collapse.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.xor(a, b);
        let g = aig.and(x, a);
        aig.add_output(g);
        let before = aig.num_ands();
        let (optimized, stats) = mspf_optimize_impl(&aig, &MspfOptions::default());
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
        assert!(
            optimized.num_ands() < before,
            "{before} -> {} ({stats:?})",
            optimized.num_ands()
        );
    }

    #[test]
    fn no_flexibility_no_change() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        let (optimized, _) = mspf_optimize_impl(&aig, &MspfOptions::default());
        assert_eq!(optimized.num_ands(), 1);
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
    }

    #[test]
    fn preserves_function_on_multi_output_windows() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let x = aig.xor(a, b);
        let f = aig.and(x, c);
        let g = aig.or(x, c);
        aig.add_output(f);
        aig.add_output(g);
        let (optimized, _) = mspf_optimize_impl(&aig, &MspfOptions::default());
        assert_eq!(
            MiterOracle::new().check(&aig, &optimized),
            Verdict::Equivalent
        );
        assert!(optimized.num_ands() <= aig.num_ands());
    }
}
