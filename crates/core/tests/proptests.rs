//! Property tests: every SBM engine must preserve network function and
//! never increase size, on random DAGs — and the parallel pipeline must
//! agree with its serial self.

use proptest::prelude::*;
use sbm_aig::window::PartitionOptions;
use sbm_aig::{Aig, Lit};
use sbm_budget::Budget;
use sbm_check::{FaultKind, FaultPlan};
use sbm_core::engine::{
    run_checked, Balance, Bdiff, Engine, EngineCtx, Gradient, Hetero, Mspf, Refactor, Resub,
    Rewrite,
};
use sbm_core::gradient::GradientOptions;
use sbm_core::pipeline::{Pipeline, PipelineOptions, PipelineReport};
use sbm_core::verify::equivalent;
use sbm_core::CheckLevel;

#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, usize, usize, bool, bool)>,
    num_outputs: usize,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (3usize..=6, 5usize..=40, 1usize..=3).prop_flat_map(|(num_inputs, num_steps, num_outputs)| {
        let step = (
            0u8..3,
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            any::<bool>(),
        );
        proptest::collection::vec(step, num_steps).prop_map(move |raw| {
            let steps = raw
                .iter()
                .enumerate()
                .map(|(i, &(op, a, b, na, nb))| {
                    let pool = num_inputs + i;
                    (op, a as usize % pool, b as usize % pool, na, nb)
                })
                .collect();
            Recipe {
                num_inputs,
                steps,
                num_outputs,
            }
        })
    })
}

fn build(recipe: &Recipe) -> Aig {
    let mut aig = Aig::new();
    let mut signals: Vec<Lit> = (0..recipe.num_inputs).map(|_| aig.add_input()).collect();
    for &(op, a, b, na, nb) in &recipe.steps {
        let x = signals[a].complement_if(na);
        let y = signals[b].complement_if(nb);
        let s = match op {
            0 => aig.and(x, y),
            1 => aig.or(x, y),
            _ => aig.xor(x, y),
        };
        signals.push(s);
    }
    for k in 0..recipe.num_outputs {
        aig.add_output(signals[signals.len() - 1 - k.min(signals.len() - 1)]);
    }
    aig.cleanup()
}

macro_rules! engine_property {
    ($name:ident, $engine:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn $name(recipe in arb_recipe()) {
                let aig = build(&recipe);
                let engine = $engine;
                let budget = Budget::unlimited();
                let out = engine.optimize(&aig, &EngineCtx::new(&budget)).aig;
                prop_assert!(out.num_ands() <= aig.num_ands(),
                    "{} -> {}", aig.num_ands(), out.num_ands());
                prop_assert!(equivalent(&aig, &out), "function changed");
            }
        }
    };
}

engine_property!(balance_preserves, Balance);
engine_property!(rewrite_preserves, Rewrite::default());
engine_property!(refactor_preserves, Refactor::default());
engine_property!(resub_preserves, Resub::default());
engine_property!(mspf_preserves, Mspf::default());
engine_property!(bdiff_preserves, Bdiff::default());
engine_property!(hetero_preserves, Hetero::default());
engine_property!(
    gradient_preserves,
    Gradient {
        options: GradientOptions {
            budget: 20,
            budget_extension: 0,
            ..Default::default()
        },
    }
);

// Every engine, run under `Paranoid`-style bracketing on random DAGs:
// the pre/post structural checks and the 64-pattern spot-check must all
// stay silent — a violation here means an engine emitted a malformed or
// functionally wrong network that `run_checked` had to discard.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn every_engine_is_clean_under_paranoid_checks(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let engines: Vec<Box<dyn Engine>> = vec![
            Box::new(Balance),
            Box::new(Rewrite::default()),
            Box::new(Refactor::default()),
            Box::new(Resub::default()),
            Box::new(Mspf::default()),
            Box::new(Bdiff::default()),
            Box::new(Hetero::default()),
            Box::new(Gradient {
                options: GradientOptions {
                    budget: 20,
                    budget_extension: 0,
                    ..Default::default()
                },
            }),
        ];
        let budget = Budget::unlimited();
        for engine in &engines {
            let (result, violations) =
                run_checked(engine.as_ref(), &aig, &EngineCtx::new(&budget), None);
            prop_assert!(
                violations.is_empty(),
                "{} violated invariants: {:?}",
                engine.name(),
                violations
            );
            prop_assert!(equivalent(&aig, &result.aig), "{} changed function", engine.name());
        }
    }
}

fn small_window_pipeline(num_threads: usize) -> Pipeline {
    small_window_pipeline_checked(num_threads, CheckLevel::Off)
}

fn small_window_pipeline_checked(num_threads: usize, check_level: CheckLevel) -> Pipeline {
    let options = PipelineOptions {
        num_threads,
        partition: PartitionOptions {
            max_nodes: 16,
            max_inputs: 8,
            max_levels: 8,
        },
        min_window: 2,
        check_level,
        ..PipelineOptions::default()
    };
    Pipeline::new(options)
        .with_engine(Rewrite::default())
        .with_engine(Resub::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn parallel_pipeline_equivalent_and_no_larger_than_serial(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let serial = small_window_pipeline(1).run(&aig);
        prop_assert!(equivalent(&aig, &serial.aig), "serial broke function");
        prop_assert!(serial.stats.is_consistent(), "{:?}", serial.stats);
        for threads in [2usize, 4] {
            let parallel = small_window_pipeline(threads).run(&aig);
            prop_assert!(
                equivalent(&aig, &parallel.aig),
                "{threads}-thread pipeline broke function"
            );
            prop_assert!(
                parallel.aig.num_ands() <= serial.aig.num_ands(),
                "{threads}-thread result larger than serial: {} > {}",
                parallel.aig.num_ands(),
                serial.aig.num_ands()
            );
            prop_assert!(parallel.stats.is_consistent(), "{:?}", parallel.stats);
        }
    }

    // Zero-fault runs must report zero faults: the fault machinery is
    // pure observation when nothing goes wrong.
    #[test]
    fn fault_free_pipeline_reports_zero_faults(recipe in arb_recipe()) {
        let aig = build(&recipe);
        for threads in [1usize, 2] {
            let run = small_window_pipeline(threads).run(&aig);
            prop_assert!(run.stats.fault.is_zero(), "{:?}", run.stats.fault);
        }
    }

    // Seeded fault injection at 10–30% rates: every run must complete,
    // stay functionally equivalent to its input, keep consistent window
    // accounting, and tally a `FaultSummary` that replays exactly from
    // the injected-fault ledger — independent of thread count.
    #[test]
    fn fault_injected_pipeline_survives_and_ledgers_exactly(
        recipe in arb_recipe(),
        seed in any::<u64>(),
        rate_pct in 10u32..30,
    ) {
        let aig = build(&recipe);
        let plan = FaultPlan::uniform(seed, f64::from(rate_pct) / 100.0);
        let mut summaries = Vec::new();
        for threads in [1usize, 2] {
            let run = fault_pipeline(threads, plan).run(&aig);
            prop_assert!(equivalent(&aig, &run.aig), "injection broke function");
            prop_assert!(run.stats.is_consistent(), "{:?}", run.stats);
            if let Err(mismatch) = assert_ledger_exact(&run.stats) {
                prop_assert!(false, "{}", mismatch);
            }
            summaries.push(run.stats.fault);
        }
        // The roll is a pure function of (seed, window, engine, attempt),
        // so the whole summary — ledger included — is thread-invariant.
        prop_assert_eq!(&summaries[0], &summaries[1]);
    }

    #[test]
    fn paranoid_pipeline_reports_no_violations(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let plain = small_window_pipeline(2).run(&aig);
        let checked = small_window_pipeline_checked(2, CheckLevel::Paranoid).run(&aig);
        prop_assert!(
            checked.stats.check_violations.is_empty(),
            "{:?}",
            checked.stats.check_violations
        );
        prop_assert_eq!(plain.aig.num_ands(), checked.aig.num_ands());
        prop_assert!(equivalent(&aig, &checked.aig), "checked pipeline broke function");
    }
}

fn fault_pipeline(num_threads: usize, plan: FaultPlan) -> Pipeline {
    let options = PipelineOptions {
        num_threads,
        partition: PartitionOptions {
            max_nodes: 16,
            max_inputs: 8,
            max_levels: 8,
        },
        min_window: 2,
        fault_plan: Some(plan),
        ..PipelineOptions::default()
    };
    Pipeline::new(options)
        .with_engine(Rewrite::default())
        .with_engine(Resub::default())
}

/// Replays the injected-fault ledger against the per-engine counters:
/// every count in the summary must be derivable from the ledger alone.
/// Valid whenever no *genuine* faults occur alongside the injected ones
/// (the engines under test neither panic nor hit node limits here).
fn assert_ledger_exact(report: &PipelineReport) -> Result<(), String> {
    let fault = &report.fault;
    let check = |what: &str, got: usize, want: usize| {
        if got == want {
            Ok(())
        } else {
            Err(format!("{what}: summary says {got}, ledger says {want}"))
        }
    };
    let count = |engine: &str, attempt: Option<u8>, kinds: &[FaultKind]| {
        fault
            .injected
            .iter()
            .filter(|f| {
                f.engine == engine
                    && attempt.is_none_or(|a| f.attempt == a)
                    && kinds.contains(&f.kind)
            })
            .count()
    };
    let failures = [FaultKind::Panic, FaultKind::Bailout];
    for (name, c) in &fault.per_engine {
        check(
            &format!("{name} panics"),
            c.panics,
            count(name, None, &[FaultKind::Panic]),
        )?;
        check(
            &format!("{name} delays"),
            c.delays,
            count(name, None, &[FaultKind::Delay]),
        )?;
        check(
            &format!("{name} injected bailouts"),
            c.injected_bailouts,
            count(name, None, &[FaultKind::Bailout]),
        )?;
        // A retry happens exactly when attempt 0 failed, and succeeds
        // unless attempt 1 was also shot down.
        check(
            &format!("{name} retries"),
            c.retries,
            count(name, Some(0), &failures),
        )?;
        check(
            &format!("{name} retry successes"),
            c.retry_successes,
            c.retries - count(name, Some(1), &failures),
        )?;
    }
    // A window degrades exactly when some engine's retry failed; the
    // chain stops there, so distinct windows with an attempt-1 failure
    // equal the degraded count.
    let mut degraded: Vec<usize> = fault
        .injected
        .iter()
        .filter(|f| f.attempt == 1 && failures.contains(&f.kind))
        .map(|f| f.window)
        .collect();
    degraded.sort_unstable();
    degraded.dedup();
    check("degraded windows", fault.degraded_windows, degraded.len())
}

/// An engine wrapper that cancels a shared [`Budget`] after a fixed
/// number of completed invocations — simulating a process being killed
/// mid-run at an arbitrary point. It reports the inner engine's name so
/// the configuration fingerprint (which hashes engine names) matches the
/// plain pipeline used for the resume.
struct KillSwitch<E> {
    inner: E,
    budget: sbm_budget::Budget,
    fuse: std::sync::Arc<std::sync::atomic::AtomicUsize>,
}

impl<E: Engine> Engine for KillSwitch<E> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn optimize(&self, aig: &Aig, ctx: &EngineCtx<'_>) -> sbm_core::engine::EngineResult {
        let result = self.inner.optimize(aig, ctx);
        use std::sync::atomic::Ordering;
        let prev = self
            .fuse
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .unwrap_or(0);
        if prev == 1 {
            self.budget.cancel();
        }
        result
    }
}

fn kill_resume_options(num_threads: usize, dir: std::path::PathBuf) -> PipelineOptions {
    PipelineOptions {
        num_threads,
        partition: PartitionOptions {
            max_nodes: 16,
            max_inputs: 8,
            max_levels: 8,
        },
        min_window: 2,
        checkpoint: Some(sbm_core::pipeline::CheckpointOptions::new(dir)),
        ..PipelineOptions::default()
    }
}

// Kill-mid-run crash safety: a checkpointed run whose budget is cancelled
// after `kill_after` engine invocations — at an arbitrary point in the
// window schedule — must leave a checkpoint from which a plain pipeline
// resumes to a result identical to an uninterrupted run, with every
// window accounted exactly once and consistent fault bookkeeping, at
// every thread count.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn killed_checkpointed_run_resumes_identical(
        recipe in arb_recipe(),
        kill_after in 1usize..6,
    ) {
        let aig = build(&recipe);
        for threads in [1usize, 2, 4] {
            let dir = std::env::temp_dir().join(format!(
                "sbm-kill-resume-{}-t{threads}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);

            // Reference: the same configuration, uninterrupted and
            // uncheckpointed.
            let full = {
                let mut o = kill_resume_options(threads, dir.clone());
                o.checkpoint = None;
                Pipeline::new(o)
                    .with_engine(Rewrite::default())
                    .with_engine(Resub::default())
                    .run(&aig)
            };

            // The killed run: shared cancellable budget, fuse on the
            // first engine of the chain.
            let budget = sbm_budget::Budget::cancellable();
            let fuse = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(kill_after));
            let mut options = kill_resume_options(threads, dir.clone());
            options.budget = budget.clone();
            let killed = Pipeline::new(options)
                .with_engine(KillSwitch {
                    inner: Rewrite::default(),
                    budget: budget.clone(),
                    fuse,
                })
                .with_engine(Resub::default())
                .run(&aig);
            prop_assert!(killed.stats.is_consistent(), "{:?}", killed.stats);
            prop_assert!(
                killed.stats.checkpoint_error.is_none(),
                "{:?}",
                killed.stats.checkpoint_error
            );
            prop_assert!(equivalent(&aig, &killed.aig), "killed run broke function");

            // Resume with the plain engine chain (same names, fresh
            // unlimited budget).
            let resumed = Pipeline::new(kill_resume_options(threads, dir.clone()))
                .with_engine(Rewrite::default())
                .with_engine(Resub::default())
                .resume();
            let resumed = match resumed {
                Ok(r) => r,
                Err(e) => {
                    prop_assert!(false, "resume failed: {e}");
                    unreachable!()
                }
            };
            prop_assert!(equivalent(&aig, &resumed.aig), "resume broke function");
            prop_assert!(resumed.stats.is_consistent(), "{:?}", resumed.stats);
            prop_assert!(resumed.stats.fault.is_zero(), "{:?}", resumed.stats.fault);
            prop_assert_eq!(
                resumed.aig.num_ands(),
                full.aig.num_ands(),
                "resumed result differs from uninterrupted run"
            );
            let summary = resumed.stats.resume.unwrap_or_default();
            prop_assert_eq!(
                summary.windows_replayed + summary.windows_rerun,
                resumed.stats.windows_total - resumed.stats.windows_skipped,
                "every window must be replayed or re-run exactly once: {summary:?}"
            );

            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A deterministic mass of redundant logic big enough that the small
/// partition settings produce many windows.
fn stress_aig(seed: u64) -> Aig {
    let mut aig = Aig::new();
    let inputs: Vec<Lit> = (0..8).map(|_| aig.add_input()).collect();
    let mut state = seed | 1;
    let mut lits = inputs;
    for _ in 0..180 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = lits[(state >> 33) as usize % lits.len()];
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = lits[(state >> 33) as usize % lits.len()];
        let f = match state % 3 {
            0 => aig.and(a, b),
            1 => aig.or(a, b),
            _ => aig.xor(a, b),
        };
        lits.push(f);
    }
    for l in lits.iter().rev().take(4) {
        aig.add_output(*l);
    }
    aig.cleanup()
}

// The acceptance stress test: seeded panic/delay/bailout injection at a
// 15% per-kind rate across *all eight* engines. Every run must complete
// without aborting, produce a network functionally equivalent to its
// input (simulation screen + SAT gate, via `equivalent`), and report a
// `FaultSummary` that matches the injected-fault ledger exactly. Across
// the seeds the retry ladder must demonstrably rescue some attempts.
#[test]
fn all_engine_fault_stress_completes_equivalent_with_exact_ledger() {
    let mut total_injected = 0usize;
    let mut total_retry_successes = 0usize;
    for seed in [1u64, 2, 3] {
        let aig = stress_aig(seed);
        let options = PipelineOptions {
            num_threads: 2,
            partition: PartitionOptions {
                max_nodes: 30,
                max_inputs: 10,
                max_levels: 12,
            },
            min_window: 2,
            fault_plan: Some(FaultPlan::uniform(seed, 0.15)),
            ..PipelineOptions::default()
        };
        let run = Pipeline::new(options)
            .with_engine(Balance)
            .with_engine(Rewrite::default())
            .with_engine(Refactor::default())
            .with_engine(Resub::default())
            .with_engine(Mspf::default())
            .with_engine(Bdiff::default())
            .with_engine(Hetero::default())
            .with_engine(Gradient {
                options: GradientOptions {
                    budget: 20,
                    budget_extension: 0,
                    ..Default::default()
                },
            })
            .run(&aig);
        assert!(
            equivalent(&aig, &run.aig),
            "seed {seed}: injection broke function"
        );
        assert!(run.stats.is_consistent(), "seed {seed}: {:?}", run.stats);
        if let Err(mismatch) = assert_ledger_exact(&run.stats) {
            panic!("seed {seed}: {mismatch}\n{:?}", run.stats.fault);
        }
        total_injected += run.stats.fault.injected.len();
        total_retry_successes += run
            .stats
            .fault
            .per_engine
            .iter()
            .map(|(_, c)| c.retry_successes)
            .sum::<usize>();
    }
    assert!(total_injected > 0, "stress plan never fired");
    assert!(
        total_retry_successes > 0,
        "retry ladder never rescued an attempt across the stress seeds"
    );
}
