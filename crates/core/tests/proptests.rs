//! Property tests: every SBM engine must preserve network function and
//! never increase size, on random DAGs — and the parallel pipeline must
//! agree with its serial self.

use proptest::prelude::*;
use sbm_aig::window::PartitionOptions;
use sbm_aig::{Aig, Lit};
use sbm_core::engine::{
    run_checked, Balance, Bdiff, Engine, Gradient, Hetero, Mspf, OptContext, Refactor, Resub,
    Rewrite,
};
use sbm_core::gradient::GradientOptions;
use sbm_core::pipeline::{Pipeline, PipelineOptions};
use sbm_core::verify::equivalent;
use sbm_core::CheckLevel;

#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, usize, usize, bool, bool)>,
    num_outputs: usize,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (3usize..=6, 5usize..=40, 1usize..=3).prop_flat_map(|(num_inputs, num_steps, num_outputs)| {
        let step = (
            0u8..3,
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            any::<bool>(),
        );
        proptest::collection::vec(step, num_steps).prop_map(move |raw| {
            let steps = raw
                .iter()
                .enumerate()
                .map(|(i, &(op, a, b, na, nb))| {
                    let pool = num_inputs + i;
                    (op, a as usize % pool, b as usize % pool, na, nb)
                })
                .collect();
            Recipe {
                num_inputs,
                steps,
                num_outputs,
            }
        })
    })
}

fn build(recipe: &Recipe) -> Aig {
    let mut aig = Aig::new();
    let mut signals: Vec<Lit> = (0..recipe.num_inputs).map(|_| aig.add_input()).collect();
    for &(op, a, b, na, nb) in &recipe.steps {
        let x = signals[a].complement_if(na);
        let y = signals[b].complement_if(nb);
        let s = match op {
            0 => aig.and(x, y),
            1 => aig.or(x, y),
            _ => aig.xor(x, y),
        };
        signals.push(s);
    }
    for k in 0..recipe.num_outputs {
        aig.add_output(signals[signals.len() - 1 - k.min(signals.len() - 1)]);
    }
    aig.cleanup()
}

macro_rules! engine_property {
    ($name:ident, $engine:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn $name(recipe in arb_recipe()) {
                let aig = build(&recipe);
                let engine = $engine;
                let out = engine.run(&aig, &mut OptContext::default()).aig;
                prop_assert!(out.num_ands() <= aig.num_ands(),
                    "{} -> {}", aig.num_ands(), out.num_ands());
                prop_assert!(equivalent(&aig, &out), "function changed");
            }
        }
    };
}

engine_property!(balance_preserves, Balance);
engine_property!(rewrite_preserves, Rewrite::default());
engine_property!(refactor_preserves, Refactor::default());
engine_property!(resub_preserves, Resub::default());
engine_property!(mspf_preserves, Mspf::default());
engine_property!(bdiff_preserves, Bdiff::default());
engine_property!(hetero_preserves, Hetero::default());
engine_property!(
    gradient_preserves,
    Gradient {
        options: GradientOptions {
            budget: 20,
            budget_extension: 0,
            ..Default::default()
        },
    }
);

// Every engine, run under `Paranoid`-style bracketing on random DAGs:
// the pre/post structural checks and the 64-pattern spot-check must all
// stay silent — a violation here means an engine emitted a malformed or
// functionally wrong network that `run_checked` had to discard.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn every_engine_is_clean_under_paranoid_checks(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let engines: Vec<Box<dyn Engine>> = vec![
            Box::new(Balance),
            Box::new(Rewrite::default()),
            Box::new(Refactor::default()),
            Box::new(Resub::default()),
            Box::new(Mspf::default()),
            Box::new(Bdiff::default()),
            Box::new(Hetero::default()),
            Box::new(Gradient {
                options: GradientOptions {
                    budget: 20,
                    budget_extension: 0,
                    ..Default::default()
                },
            }),
        ];
        for engine in &engines {
            let (result, violations) =
                run_checked(engine.as_ref(), &aig, &mut OptContext::default(), None);
            prop_assert!(
                violations.is_empty(),
                "{} violated invariants: {:?}",
                engine.name(),
                violations
            );
            prop_assert!(equivalent(&aig, &result.aig), "{} changed function", engine.name());
        }
    }
}

fn small_window_pipeline(num_threads: usize) -> Pipeline {
    small_window_pipeline_checked(num_threads, CheckLevel::Off)
}

fn small_window_pipeline_checked(num_threads: usize, check_level: CheckLevel) -> Pipeline {
    let options = PipelineOptions {
        num_threads,
        partition: PartitionOptions {
            max_nodes: 16,
            max_inputs: 8,
            max_levels: 8,
        },
        min_window: 2,
        check_level,
        ..PipelineOptions::default()
    };
    Pipeline::new(options)
        .with_engine(Rewrite::default())
        .with_engine(Resub::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn parallel_pipeline_equivalent_and_no_larger_than_serial(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let serial = small_window_pipeline(1).run(&aig);
        prop_assert!(equivalent(&aig, &serial.aig), "serial broke function");
        prop_assert!(serial.stats.is_consistent(), "{:?}", serial.stats);
        for threads in [2usize, 4] {
            let parallel = small_window_pipeline(threads).run(&aig);
            prop_assert!(
                equivalent(&aig, &parallel.aig),
                "{threads}-thread pipeline broke function"
            );
            prop_assert!(
                parallel.aig.num_ands() <= serial.aig.num_ands(),
                "{threads}-thread result larger than serial: {} > {}",
                parallel.aig.num_ands(),
                serial.aig.num_ands()
            );
            prop_assert!(parallel.stats.is_consistent(), "{:?}", parallel.stats);
        }
    }

    #[test]
    fn paranoid_pipeline_reports_no_violations(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let plain = small_window_pipeline(2).run(&aig);
        let checked = small_window_pipeline_checked(2, CheckLevel::Paranoid).run(&aig);
        prop_assert!(
            checked.stats.check_violations.is_empty(),
            "{:?}",
            checked.stats.check_violations
        );
        prop_assert_eq!(plain.aig.num_ands(), checked.aig.num_ands());
        prop_assert!(equivalent(&aig, &checked.aig), "checked pipeline broke function");
    }
}
