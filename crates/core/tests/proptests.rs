//! Property tests: every SBM engine must preserve network function and
//! never increase size, on random DAGs.

use proptest::prelude::*;
use sbm_aig::{Aig, Lit};
use sbm_core::balance::balance;
use sbm_core::bdiff::{boolean_difference_resub, BdiffOptions};
use sbm_core::gradient::{gradient_optimize, GradientOptions};
use sbm_core::hetero::{hetero_eliminate_kernel, HeteroOptions};
use sbm_core::mspf::{mspf_optimize, MspfOptions};
use sbm_core::refactor::{refactor, RefactorOptions};
use sbm_core::resub::{resub, ResubOptions};
use sbm_core::rewrite::{rewrite, RewriteOptions};
use sbm_core::verify::equivalent;

#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, usize, usize, bool, bool)>,
    num_outputs: usize,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (3usize..=6, 5usize..=40, 1usize..=3).prop_flat_map(|(num_inputs, num_steps, num_outputs)| {
        let step = (0u8..3, any::<u32>(), any::<u32>(), any::<bool>(), any::<bool>());
        proptest::collection::vec(step, num_steps).prop_map(move |raw| {
            let steps = raw
                .iter()
                .enumerate()
                .map(|(i, &(op, a, b, na, nb))| {
                    let pool = num_inputs + i;
                    (op, a as usize % pool, b as usize % pool, na, nb)
                })
                .collect();
            Recipe {
                num_inputs,
                steps,
                num_outputs,
            }
        })
    })
}

fn build(recipe: &Recipe) -> Aig {
    let mut aig = Aig::new();
    let mut signals: Vec<Lit> = (0..recipe.num_inputs).map(|_| aig.add_input()).collect();
    for &(op, a, b, na, nb) in &recipe.steps {
        let x = signals[a].complement_if(na);
        let y = signals[b].complement_if(nb);
        let s = match op {
            0 => aig.and(x, y),
            1 => aig.or(x, y),
            _ => aig.xor(x, y),
        };
        signals.push(s);
    }
    for k in 0..recipe.num_outputs {
        aig.add_output(signals[signals.len() - 1 - k.min(signals.len() - 1)]);
    }
    aig.cleanup()
}

macro_rules! engine_property {
    ($name:ident, $apply:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn $name(recipe in arb_recipe()) {
                let aig = build(&recipe);
                #[allow(clippy::redundant_closure_call)]
                let out: Aig = ($apply)(&aig);
                prop_assert!(out.num_ands() <= aig.num_ands(),
                    "{} -> {}", aig.num_ands(), out.num_ands());
                prop_assert!(equivalent(&aig, &out), "function changed");
            }
        }
    };
}

engine_property!(balance_preserves, |a: &Aig| balance(a));
engine_property!(rewrite_preserves, |a: &Aig| rewrite(a, &RewriteOptions::default()).0);
engine_property!(refactor_preserves, |a: &Aig| refactor(a, &RefactorOptions::default()).0);
engine_property!(resub_preserves, |a: &Aig| resub(a, &ResubOptions::default()).0);
engine_property!(mspf_preserves, |a: &Aig| mspf_optimize(a, &MspfOptions::default()).0);
engine_property!(bdiff_preserves, |a: &Aig| {
    boolean_difference_resub(a, &BdiffOptions::default()).0
});
engine_property!(hetero_preserves, |a: &Aig| {
    hetero_eliminate_kernel(a, &HeteroOptions::default()).0
});
engine_property!(gradient_preserves, |a: &Aig| {
    let opts = GradientOptions {
        budget: 20,
        budget_extension: 0,
        ..Default::default()
    };
    gradient_optimize(a, &opts).0
});
