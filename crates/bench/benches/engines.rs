// Benchmark harness, not library code: setup failures may panic, so the
// workspace unwrap/expect denial is relaxed here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Criterion benchmarks for the four SBM engines plus the baseline
//! script, on EPFL-style workloads (reduced scale).

use criterion::{criterion_group, criterion_main, Criterion};
use sbm_budget::Budget;
use sbm_core::engine::{Bdiff, Engine, EngineCtx, Gradient, Hetero, Mspf};
use sbm_core::gradient::GradientOptions;
use sbm_core::script::resyn2rs;
use sbm_epfl::{generate, Scale};

fn bench_engines(c: &mut Criterion) {
    let workloads = [
        ("priority", generate("priority", Scale::Reduced).unwrap()),
        ("router", generate("router", Scale::Reduced).unwrap()),
        ("int2float", generate("int2float", Scale::Reduced).unwrap()),
    ];
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    for (name, aig) in &workloads {
        group.bench_function(format!("bdiff/{name}"), |b| {
            b.iter(|| Bdiff::default().optimize(aig, &EngineCtx::new(&Budget::unlimited())));
        });
        group.bench_function(format!("mspf/{name}"), |b| {
            b.iter(|| Mspf::default().optimize(aig, &EngineCtx::new(&Budget::unlimited())));
        });
        group.bench_function(format!("hetero/{name}"), |b| {
            b.iter(|| Hetero::default().optimize(aig, &EngineCtx::new(&Budget::unlimited())));
        });
        group.bench_function(format!("gradient/{name}"), |b| {
            let engine = Gradient {
                options: GradientOptions {
                    budget: 30,
                    budget_extension: 0,
                    ..Default::default()
                },
            };
            b.iter(|| engine.optimize(aig, &EngineCtx::new(&Budget::unlimited())));
        });
        group.bench_function(format!("resyn2rs/{name}"), |b| b.iter(|| resyn2rs(aig)));
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
