// Benchmark harness, not library code: setup failures may panic, so the
// workspace unwrap/expect denial is relaxed here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Ablation of the Boolean-difference engine's filters (DESIGN.md E8):
//! the paper chose a difference-BDD size threshold of **10** as "a
//! suitable tradeoff to have good QoR and feasible runtime"
//! (Section III-C). This bench sweeps the threshold and the xor-cost and
//! reports runtime (criterion) plus QoR (stderr, once per config).

use criterion::{criterion_group, criterion_main, Criterion};
use sbm_budget::Budget;
use sbm_core::bdiff::BdiffOptions;
use sbm_core::engine::{Bdiff, Engine, EngineCtx};
use sbm_epfl::{generate, Scale};

fn bench_bdiff_threshold(c: &mut Criterion) {
    let aig = generate("router", Scale::Reduced).unwrap();
    let mut group = c.benchmark_group("bdiff_threshold");
    group.sample_size(10);
    for threshold in [4usize, 10, 20, 40] {
        let opts = BdiffOptions {
            max_diff_size: threshold,
            ..Default::default()
        };
        let engine = Bdiff { options: opts };
        let result = engine.optimize(&aig, &EngineCtx::new(&Budget::unlimited()));
        eprintln!(
            "bdiff threshold {threshold}: {} -> {} nodes, {} accepted",
            aig.num_ands(),
            result.aig.num_ands(),
            result.stats.accepted
        );
        group.bench_function(format!("threshold_{threshold}"), |b| {
            b.iter(|| engine.optimize(&aig, &EngineCtx::new(&Budget::unlimited())));
        });
    }
    group.finish();
}

fn bench_bdiff_xor_cost(c: &mut Criterion) {
    let aig = generate("int2float", Scale::Reduced).unwrap();
    let mut group = c.benchmark_group("bdiff_xor_cost");
    group.sample_size(10);
    for xor_cost in [1usize, 3, 6] {
        let opts = BdiffOptions {
            xor_cost,
            ..Default::default()
        };
        let engine = Bdiff { options: opts };
        let result = engine.optimize(&aig, &EngineCtx::new(&Budget::unlimited()));
        eprintln!(
            "bdiff xor_cost {xor_cost}: {} -> {} nodes, {} accepted",
            aig.num_ands(),
            result.aig.num_ands(),
            result.stats.accepted
        );
        group.bench_function(format!("xor_cost_{xor_cost}"), |b| {
            b.iter(|| engine.optimize(&aig, &EngineCtx::new(&Budget::unlimited())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bdiff_threshold, bench_bdiff_xor_cost);
criterion_main!(benches);
