// Benchmark harness, not library code: setup failures may panic, so the
// workspace unwrap/expect denial is relaxed here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Ablation of the gradient engine (DESIGN.md E6): the paper's best
//! parameters are budget = 100, k = 20, minimum gain gradient = 3%, with
//! the waterfall selection model as "a good tradeoff between runtime and
//! QoR" versus the parallel model (Section IV-A).

use criterion::{criterion_group, criterion_main, Criterion};
use sbm_budget::Budget;
use sbm_core::engine::{Engine, EngineCtx, Gradient};
use sbm_core::gradient::{GradientOptions, Selection};
use sbm_epfl::{generate, Scale};

fn bench_selection_models(c: &mut Criterion) {
    let aig = generate("router", Scale::Reduced).unwrap();
    let mut group = c.benchmark_group("gradient_selection");
    group.sample_size(10);
    for (label, selection) in [
        ("waterfall", Selection::Waterfall),
        ("parallel", Selection::Parallel),
    ] {
        let opts = GradientOptions {
            budget: 50,
            budget_extension: 0,
            selection,
            ..Default::default()
        };
        let engine = Gradient {
            options: opts.clone(),
        };
        let result = engine.optimize(&aig, &EngineCtx::new(&Budget::unlimited()));
        eprintln!(
            "gradient {label}: {} -> {} nodes ({} moves tried, {} accepted)",
            aig.num_ands(),
            result.aig.num_ands(),
            result.stats.tried,
            result.stats.accepted
        );
        group.bench_function(label, |b| {
            b.iter(|| engine.optimize(&aig, &EngineCtx::new(&Budget::unlimited())));
        });
    }
    group.finish();
}

fn bench_budgets(c: &mut Criterion) {
    let aig = generate("priority", Scale::Reduced).unwrap();
    let mut group = c.benchmark_group("gradient_budget");
    group.sample_size(10);
    for budget in [25u32, 50, 100] {
        let opts = GradientOptions {
            budget,
            budget_extension: 0,
            ..Default::default()
        };
        let engine = Gradient {
            options: opts.clone(),
        };
        let out = engine
            .optimize(&aig, &EngineCtx::new(&Budget::unlimited()))
            .aig;
        eprintln!(
            "gradient budget {budget}: {} -> {} nodes",
            aig.num_ands(),
            out.num_ands()
        );
        group.bench_function(format!("budget_{budget}"), |b| {
            b.iter(|| engine.optimize(&aig, &EngineCtx::new(&Budget::unlimited())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection_models, bench_budgets);
criterion_main!(benches);
