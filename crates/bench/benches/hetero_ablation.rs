// Benchmark harness, not library code: setup failures may panic, so the
// workspace unwrap/expect denial is relaxed here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Ablation of heterogeneous vs homogeneous elimination (DESIGN.md E7):
//! the paper's point is that sweeping the threshold ladder
//! `(-1, 2, 5, 20, 50, 100, 200, 300)` per partition and keeping the best
//! finds sharing a single network-wide threshold misses (Section IV-B).
//! Also compares the sequential and parallel threshold evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use sbm_budget::Budget;
use sbm_core::engine::{Engine, EngineCtx, Hetero};
use sbm_core::hetero::{HeteroOptions, DEFAULT_THRESHOLDS};
use sbm_epfl::{generate, Scale};

fn bench_hetero_vs_homogeneous(c: &mut Criterion) {
    let aig = generate("dec", Scale::Full).unwrap();
    let mut group = c.benchmark_group("hetero_vs_homogeneous");
    group.sample_size(10);

    // Homogeneous: one threshold for the whole network.
    for t in [-1i64, 50, 300] {
        let opts = HeteroOptions {
            thresholds: vec![t],
            ..Default::default()
        };
        let engine = Hetero {
            options: opts.clone(),
        };
        let out = engine
            .optimize(&aig, &EngineCtx::new(&Budget::unlimited()))
            .aig;
        eprintln!(
            "homogeneous t={t}: {} -> {} nodes",
            aig.num_ands(),
            out.num_ands()
        );
        group.bench_function(format!("homogeneous_{t}"), |b| {
            b.iter(|| engine.optimize(&aig, &EngineCtx::new(&Budget::unlimited())));
        });
    }
    // Heterogeneous: the full ladder, best per partition.
    let engine = Hetero::default();
    let result = engine.optimize(&aig, &EngineCtx::new(&Budget::unlimited()));
    eprintln!(
        "heterogeneous ladder {:?}: {} -> {} nodes ({} partitions improved)",
        DEFAULT_THRESHOLDS,
        aig.num_ands(),
        result.aig.num_ands(),
        result.stats.accepted
    );
    group.bench_function("heterogeneous", |b| {
        b.iter(|| engine.optimize(&aig, &EngineCtx::new(&Budget::unlimited())));
    });
    group.finish();
}

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let aig = generate("dec", Scale::Full).unwrap();
    let mut group = c.benchmark_group("hetero_parallelism");
    group.sample_size(10);
    for (label, threads) in [("parallel", 8), ("sequential", 1)] {
        let engine = Hetero::default();
        group.bench_function(label, |b| {
            b.iter(|| {
                engine.optimize(
                    &aig,
                    &EngineCtx::new(&Budget::unlimited()).with_threads(threads),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hetero_vs_homogeneous,
    bench_parallel_vs_sequential
);
criterion_main!(benches);
