//! Asserts the workspace-wide process exit-code convention
//! (`sbm_metrics::exit`) on the bench binaries: `0` success,
//! `1` validation failure, `2` usage error, `3` runtime/environment
//! failure. The same convention is asserted for `sbm-lint` in
//! `crates/lint/tests/exit_codes.rs` and for `sbm-server`/`loadgen`
//! in `crates/server/tests/exit_codes.rs`.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::Command;

use sbm_metrics::{exit, RunReport};

fn code_of(bin: &str, args: &[&str]) -> i32 {
    Command::new(bin)
        .args(args)
        .output()
        .expect("spawn binary")
        .status
        .code()
        .expect("exit code")
}

fn tmp_file(tag: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("sbm-exit-{tag}-{}", std::process::id()));
    std::fs::write(&path, contents).expect("write tmp file");
    path
}

#[test]
fn report_check_distinguishes_ok_validation_usage_and_runtime() {
    let bin = env!("CARGO_BIN_EXE_report_check");

    // 0 — a well-formed report round-trips.
    let report = RunReport {
        tool: "exit-codes".to_string(),
        ..RunReport::default()
    };
    let good = tmp_file("good", &report.to_json());
    assert_eq!(code_of(bin, &[good.to_str().unwrap()]), exit::OK);

    // 1 — the tool ran and rejected the input.
    let bad = tmp_file("bad", "this is not a run report");
    assert_eq!(code_of(bin, &[bad.to_str().unwrap()]), exit::VALIDATION);

    // 2 — no path given.
    assert_eq!(code_of(bin, &[]), exit::USAGE);

    // 3 — the environment failed (unreadable path).
    assert_eq!(
        code_of(bin, &["/nonexistent/sbm/report.json"]),
        exit::RUNTIME
    );

    let _ = std::fs::remove_file(good);
    let _ = std::fs::remove_file(bad);
}

#[test]
fn table_binaries_reject_bad_flags_with_usage() {
    // `--sim-filter` is shared by all three table binaries and parsed
    // before any benchmark work starts, so the bad-value path is cheap.
    for bin in [
        env!("CARGO_BIN_EXE_table1"),
        env!("CARGO_BIN_EXE_table2"),
        env!("CARGO_BIN_EXE_table3"),
    ] {
        assert_eq!(code_of(bin, &["--sim-filter", "bogus"]), exit::USAGE);
        assert_eq!(code_of(bin, &["--resume"]), exit::USAGE);
    }
}

#[test]
fn table1_exits_ok_when_the_run_succeeds() {
    // `--only` with a never-matching name skips every benchmark: the
    // run is trivially successful and cheap.
    let bin = env!("CARGO_BIN_EXE_table1");
    assert_eq!(code_of(bin, &["--only", "no-such-benchmark"]), exit::OK);
}
