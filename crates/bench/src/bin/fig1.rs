//! Regenerates **Figure 1** — the Boolean-difference worked example.
//!
//! Fig. 1(a) shows functions `f` and `g` over `x1..x5` implemented as
//! separate cones; Fig. 1(b) shows `f` rewritten as `(∂f/∂g) ⊕ g`,
//! reducing the total node count because the difference network is tiny.
//! This binary builds such a network, runs the Boolean-difference engine
//! and prints the before/after structure.

use sbm_aig::Aig;
use sbm_budget::Budget;
use sbm_core::engine::{Bdiff, Engine, EngineCtx};

fn main() {
    // f and g share a small Boolean difference but no structure:
    //   g = (x1·x2) + (x3·x4)
    //   f = ((x1·x2) + (x3·x4)) ⊕ x5, built as an independent cone.
    let mut aig = Aig::new();
    let x: Vec<_> = (0..5).map(|_| aig.add_input()).collect();
    let g1 = aig.and(x[0], x[1]);
    let g2 = aig.and(x[2], x[3]);
    let g = aig.or(g1, g2);
    // f rebuilt with redundant structure so strashing cannot share it
    // with g's cone (x·y == (x·y)·(x+y)).
    let f1a = aig.and(x[0], x[1]);
    let f1b = aig.or(x[0], x[1]);
    let f1 = aig.and(f1a, f1b);
    let f2a = aig.and(x[2], x[3]);
    let f2b = aig.or(x[2], x[3]);
    let f2 = aig.and(f2a, f2b);
    let fg = aig.or(f1, f2);
    let f = aig.mux(x[4], !fg, fg);
    aig.add_output(g);
    aig.add_output(f);
    let aig = aig.cleanup();

    println!("Figure 1 — Boolean difference example");
    println!();
    println!(
        "(a) original network:  {} AND nodes, {} levels",
        aig.num_ands(),
        aig.depth()
    );

    let result = Bdiff::default().optimize(&aig, &EngineCtx::new(&Budget::unlimited()));
    let optimized = result.aig;
    println!(
        "(b) after f ← (∂f/∂g) ⊕ g: {} AND nodes, {} levels",
        optimized.num_ands(),
        optimized.depth()
    );
    println!();
    println!(
        "windows: {}, pairs tried: {}, rewrites accepted: {}, bailouts: {}",
        result.stats.windows, result.stats.tried, result.stats.accepted, result.stats.bailouts
    );
    println!(
        "verify: {}",
        sbm_bench::verify_pair(&aig, &optimized, 10_000)
    );
    assert!(
        optimized.num_ands() <= aig.num_ands(),
        "the rewrite must not grow the network"
    );
}
