// A CLI driver, not library code: aborting with a message is the intended
// error path, so the workspace unwrap/expect denial is relaxed here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Regenerates **Table I** — "New Best Area Results For The EPFL Suite".
//!
//! For each benchmark the paper improved, this binary optimizes the
//! generated circuit with (a) the `resyn2rs` baseline and (b) the SBM
//! script, maps both onto LUT-6 (`if -K 6 -a` equivalent) and reports the
//! LUT and level counts. The paper's claim being reproduced is the
//! *shape*: the SBM flow's LUT-6 area beats (or ties) the baseline on
//! these benchmarks.
//!
//! Usage: `table1 [--full] [--threads N] [--check off|boundaries|paranoid]
//! [--deadline SECONDS] [--fault-seed N] [--fault-rate R]
//! [--checkpoint DIR [--resume]] [--only NAMES] [--report-json PATH]`
//! (default: reduced scale, serial, unchecked, unbounded, no injection).
//! Checked runs validate the structural invariants of every intermediate
//! network (see `sbm-check`) and list any violation after the table. A
//! deadline makes the run degrade gracefully instead of overrunning;
//! `--fault-seed`/`--fault-rate` inject deterministic faults (panics,
//! delays, forced bailouts) to exercise the fault-tolerant executor, and
//! the resulting `FaultSummary` is printed after the table.
//! `--checkpoint DIR` persists crash-safe progress per benchmark under
//! `DIR`; `--resume` continues an interrupted checkpointed run (a
//! benchmark whose checkpoint is missing or unusable is re-run fresh and
//! the typed error reported). `--only NAMES` restricts the run to
//! benchmarks matching any comma-separated substring. `--sim-filter off`
//! disables the simulation-signature candidate filter (see
//! `SbmOptions::sim_filter`). `--report-json PATH` writes the aggregated
//! run as a serialized `RunReport`.

use sbm_core::pipeline::PipelineReport;
use sbm_core::script::{resyn2rs_fixpoint, sbm_script_report, sbm_script_resumable, SbmOptions};
use sbm_epfl::{benchmark, Scale};
use sbm_lutmap::{map_luts, MapOptions};

/// The 12 benchmarks of Table I (`hypotenuse` is generated as `hyp`).
const TABLE1: [&str; 12] = [
    "arbiter", "div", "i2c", "log2", "max", "mem_ctrl", "mult", "priority", "sin", "hyp", "sqrt",
    "square",
];

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let threads = sbm_bench::threads_arg();
    let check = sbm_bench::check_arg();
    let deadline = sbm_bench::deadline_arg();
    let fault_plan = sbm_bench::fault_plan_arg();
    let (ckpt_root, resume) = sbm_bench::checkpoint_args();
    let only = sbm_bench::only_arg();
    let report_json = sbm_bench::report_json_arg();
    let sim_filter = sbm_bench::sim_filter_arg();
    let scale = if full { Scale::Full } else { Scale::Reduced };
    println!("Table I — New Best Area Results For The EPFL Suite (LUT-6)");
    println!(
        "scale: {scale:?}, threads: {threads}, check: {check}, sim filter: {}  \
         (paper sizes with --full; see EXPERIMENTS.md)",
        if sim_filter { "on" } else { "off" }
    );
    if let Some(deadline) = deadline {
        println!("deadline: {:.1}s per script run", deadline.as_secs_f64());
    }
    if let Some(plan) = &fault_plan {
        println!(
            "fault injection: seed {}, rates {:.2}/{:.2}/{:.2} (panic/delay/bailout)",
            plan.seed, plan.panic_rate, plan.delay_rate, plan.bailout_rate
        );
    }
    if let Some(root) = &ckpt_root {
        println!(
            "checkpoint: {} ({})",
            root.display(),
            if resume { "resuming" } else { "fresh" }
        );
    }
    println!();
    println!(
        "{:<12} {:>9} | {:>9} {:>7} | {:>9} {:>7} | {:>8} {:>9}",
        "benchmark", "I/O", "base LUT", "base lv", "SBM LUT", "SBM lv", "ΔLUT", "verify"
    );
    let map_opts = MapOptions::default();
    let mut pipeline_report = PipelineReport::default();
    let mut processed: Vec<String> = Vec::new();
    for name in TABLE1 {
        if !sbm_bench::only_matches(&only, name) {
            continue;
        }
        processed.push(name.to_string());
        let bench = benchmark(name, scale).expect("known benchmark");
        let aig = bench.aig;
        let io = format!("{}/{}", aig.num_inputs(), aig.num_outputs());

        let baseline = resyn2rs_fixpoint(&aig, 4);
        let base_map = map_luts(&baseline, &map_opts);

        // Checkpoints are per-benchmark subdirectories so a multi-bench
        // run never overwrites one benchmark's progress with another's.
        let options = SbmOptions::builder()
            .num_threads(threads)
            .check_level(check)
            .deadline(deadline)
            .fault_plan(fault_plan)
            .sim_filter(sim_filter)
            .checkpoint_dir(ckpt_root.as_ref().map(|d| d.join(name)))
            .build()
            .expect("valid options");
        let run = if resume {
            match sbm_script_resumable(&aig, &options) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("{name}: cannot resume ({e}); running fresh");
                    sbm_script_report(&aig, &options)
                }
            }
        } else {
            sbm_script_report(&aig, &options)
        };
        let sbm = run.aig;
        pipeline_report.merge(&run.stats);
        let sbm_map = map_luts(&sbm, &map_opts);

        let verdict = sbm_bench::verify_pair(&aig, &sbm, 4_000);
        println!(
            "{:<12} {:>9} | {:>9} {:>7} | {:>9} {:>7} | {:>8} {:>9}",
            name,
            io,
            base_map.num_luts(),
            base_map.depth(),
            sbm_map.num_luts(),
            sbm_map.depth(),
            sbm_bench::pct(base_map.num_luts() as f64, sbm_map.num_luts() as f64),
            verdict,
        );
    }
    if threads > 1 || fault_plan.is_some() || ckpt_root.is_some() {
        println!();
        println!("{pipeline_report}");
    }
    if let Some(error) = &pipeline_report.checkpoint_error {
        println!();
        println!("checkpoint WARNING: {error} (run completed without crash safety)");
    }
    if !pipeline_report.fault.is_zero() {
        println!();
        println!(
            "fault tolerance: every fault above was isolated; {} window(s) \
             degraded to their original logic, results stay verified",
            pipeline_report.fault.degraded_windows
        );
    }
    if check.at_boundaries() {
        println!();
        if pipeline_report.check_violations.is_empty() {
            println!("invariant checks ({check}): clean");
        } else {
            println!(
                "invariant checks ({check}): {} VIOLATION(S)",
                pipeline_report.check_violations.len()
            );
            for v in &pipeline_report.check_violations {
                println!("  {v}");
            }
        }
    }
    if let Some(path) = &report_json {
        let mut run = pipeline_report.run_report();
        run.tool = "table1".to_string();
        run.scale = format!("{scale:?}");
        run.threads = threads as u64;
        run.benchmarks = processed;
        println!();
        sbm_bench::write_report(path, &run);
    }
    println!();
    println!("paper reference (full scale): arbiter 365/117, div 3267/1211, i2c 207/15,");
    println!("log2 6567/119, max 522/189, mem_ctrl 2086/23, mult 4920/93, priority 103/26,");
    println!("sin 1227/55, hypotenuse 40377/4530, sqrt 3075/1106, square 3242/76");
}
