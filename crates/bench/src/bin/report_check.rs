//! Validates a `BENCH_*.json` run report with the same strict decoder
//! the tools serialize with — the CI gate against schema drift.
//!
//! Usage: `report_check PATH [--require-bdd] [--require-sim]`.
//!
//! The file must decode via `RunReport::from_json` (strict: a missing,
//! unknown or mistyped field, or a schema-version mismatch, fails) and
//! re-encode byte-identically. `--require-bdd` additionally demands
//! nonzero aggregated BDD counters and a nonempty per-engine latency
//! histogram — the layers this schema exists to stop discarding.
//! `--require-sim` demands live simulation-filter counters (some
//! candidates filtered, i.e. `hits + misses > 0`) — the gate that the
//! signature service is actually consulted, not silently bypassed.

use sbm_metrics::RunReport;

fn fail(msg: &str) -> ! {
    eprintln!("report_check: {msg}");
    std::process::exit(sbm_metrics::exit::VALIDATION);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let require_bdd = args.iter().any(|a| a == "--require-bdd");
    let require_sim = args.iter().any(|a| a == "--require-sim");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: report_check PATH [--require-bdd] [--require-sim]");
        std::process::exit(sbm_metrics::exit::USAGE);
    };

    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            // Unreadable file = environment failure, not a bad report.
            eprintln!("report_check: cannot read {path}: {e}");
            std::process::exit(sbm_metrics::exit::RUNTIME);
        }
    };
    let report = match RunReport::from_json(&text) {
        Ok(report) => report,
        Err(e) => fail(&format!("{path} does not decode: {e}")),
    };
    if report.to_json() != text {
        fail(&format!("{path} re-encodes differently (unstable output)"));
    }
    if report.tool.is_empty() {
        fail(&format!("{path} names no producing tool"));
    }

    if require_bdd {
        if report.bdd.managers_recycled == 0 || report.bdd.ite_calls == 0 {
            fail(&format!(
                "{path}: aggregated BDD counters are zero — the harvest-before-reset \
                 path is not feeding the report"
            ));
        }
        if !report.engines.iter().any(|e| !e.latency_us.is_empty()) {
            fail(&format!(
                "{path}: every per-engine latency histogram is empty"
            ));
        }
    }

    if require_sim && report.sim_filter.hits + report.sim_filter.misses == 0 {
        fail(&format!(
            "{path}: sim_filter counters are zero — the signature service \
             is not filtering candidates"
        ));
    }

    println!(
        "{path}: OK (tool {}, {} benchmarks, {} windows, {} engines)",
        report.tool,
        report.benchmarks.len(),
        report.windows.total,
        report.engines.len()
    );
}
