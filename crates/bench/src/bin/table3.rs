//! Regenerates **Table III** — "Post Place&Route Results on 33 Industrial
//! Designs".
//!
//! Runs the baseline flow and the SBM-enhanced flow on the 33 synthetic
//! industrial-like designs (`sbm-asic`), measuring the same relative
//! metrics the paper reports: combinational area, no-clock dynamic power,
//! WNS, TNS and runtime, averaged w.r.t. baseline.
//!
//! Usage: `table3 [--designs N] [--threads N] [--checkpoint DIR
//! [--resume]] [--sim-filter on|off] [--report-json PATH]` (default 33
//! designs, serial, no checkpointing, filter on). `--checkpoint DIR`
//! persists each design's optimization progress under `DIR/<design>`;
//! `--resume` continues an interrupted run from there. `--sim-filter off`
//! disables the simulation-signature candidate filter in the proposed
//! flow (useful for measuring the filter's effect; see
//! `SbmOptions::sim_filter`). `--report-json PATH` writes the aggregated
//! run as a serialized `RunReport`.

use sbm_asic::designs::industrial_designs;
use sbm_asic::flow::{compare_flows_checkpointed, summarize, FlowCheckpoint};
use sbm_core::pipeline::PipelineReport;

fn main() {
    let mut n = 33usize;
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--designs") {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            n = v;
        }
    }
    let threads = sbm_bench::threads_arg();
    let (ckpt_root, resume) = sbm_bench::checkpoint_args();
    let report_json = sbm_bench::report_json_arg();
    let sim_filter = sbm_bench::sim_filter_arg();
    let checkpoint = ckpt_root.map(|root| FlowCheckpoint { root, resume });
    println!(
        "Table III — Post-implementation results on {n} industrial-like designs \
         (threads: {threads}, sim filter: {})",
        if sim_filter { "on" } else { "off" }
    );
    if let Some(ck) = &checkpoint {
        println!(
            "checkpoint: {} ({})",
            ck.root.display(),
            if ck.resume { "resuming" } else { "fresh" }
        );
    }
    println!();
    println!(
        "{:<10} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "design",
        "base area",
        "SBM area",
        "base pwr",
        "SBM pwr",
        "base TNS",
        "SBM TNS",
        "base s",
        "SBM s"
    );
    let designs = industrial_designs(n);
    let mut pipeline_report = PipelineReport::default();
    let rows: Vec<_> = designs
        .iter()
        .map(|d| {
            let row = compare_flows_checkpointed(
                &d.name,
                &d.aig,
                0.85,
                threads,
                checkpoint.as_ref(),
                sim_filter,
            );
            pipeline_report.merge(&row.pipeline);
            println!(
                "{:<10} {:>10.1} {:>10.1} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>8.2} {:>8.2}",
                row.name,
                row.baseline.area,
                row.proposed.area,
                row.baseline.dyn_power,
                row.proposed.dyn_power,
                row.baseline_timing.tns,
                row.proposed_timing.tns,
                row.baseline.runtime,
                row.proposed.runtime,
            );
            row
        })
        .collect();

    if threads > 1 || checkpoint.is_some() {
        println!();
        println!("{pipeline_report}");
    }
    if let Some(error) = &pipeline_report.checkpoint_error {
        println!();
        println!("checkpoint WARNING: {error} (run completed without crash safety)");
    }
    if let Some(path) = &report_json {
        let mut run = pipeline_report.run_report();
        run.tool = "table3".to_string();
        run.scale = format!("{n} designs");
        run.threads = threads as u64;
        run.benchmarks = designs.iter().map(|d| d.name.clone()).collect();
        println!();
        sbm_bench::write_report(path, &run);
    }
    let s = summarize(&rows);
    println!();
    println!("Flow        Comb. Area   No-clk Dyn. Pow.   WNS        TNS       Runtime");
    println!("Baseline    1            1                  1          1         1");
    println!(
        "Proposed    {:+.2}%       {:+.2}%             {:+.2}%     {:+.2}%    {:+.2}%",
        s.area_pct, s.power_pct, s.wns_pct, s.tns_pct, s.runtime_pct
    );
    println!();
    println!("paper reference: area -2.20%, power -1.15%, WNS -0.56%, TNS -5.99%, runtime +1.75%");
}
