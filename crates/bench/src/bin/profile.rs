// A CLI driver, not library code: aborting with a message is the intended
// error path, so the workspace unwrap/expect denial is relaxed here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Per-stage wall-clock profile of the SBM script on one benchmark —
//! the development aid behind the "contained runtime cost" tuning.
//!
//! Usage: `profile [benchmark]` (default `div`).

use sbm_budget::Budget;
use sbm_core::engine::{
    Balance, Bdiff, Engine, EngineCtx, Gradient, Hetero, Mspf, Refactor, Resub, Rewrite,
};
use sbm_core::script::resyn2rs;
use sbm_epfl::{generate, Scale};
use sbm_metrics::Timer;
use sbm_sat::redundancy::{remove_redundancies, RedundancyOptions};
use sbm_sat::sweep::{sweep, SweepOptions};

fn stage(
    name: &str,
    aig: &sbm_aig::Aig,
    f: impl FnOnce(&sbm_aig::Aig) -> sbm_aig::Aig,
) -> sbm_aig::Aig {
    let t = Timer::start();
    let out = f(aig);
    println!(
        "{name:<12} {:6} -> {:6} nodes  {:8.2}s",
        aig.num_ands(),
        out.num_ands(),
        t.stop().as_secs_f64()
    );
    out
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "div".into());
    let aig = generate(&name, Scale::Reduced).expect("known benchmark");
    println!("{name}: {} nodes unoptimized", aig.num_ands());
    let budget = Budget::unlimited();
    let ctx = EngineCtx::new(&budget);
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(Rewrite::default()),
        Box::new(Refactor::default()),
        Box::new(Resub::default()),
        Box::new(Gradient::default()),
        Box::new(Hetero::default()),
        Box::new(Mspf::default()),
        Box::new(Bdiff::default()),
    ];
    let mut cur = aig;
    cur = stage("balance", &cur, |a| Balance.optimize(a, &ctx).aig);
    cur = stage("resyn2rs", &cur, resyn2rs);
    for engine in &engines {
        cur = stage(engine.name(), &cur, |a| engine.optimize(a, &ctx).aig);
    }
    cur = stage("sweep", &cur, |a| {
        let mut w = a.cleanup();
        sweep(&mut w, &SweepOptions::default());
        w.cleanup()
    });
    cur = stage("redundancy", &cur, |a| {
        remove_redundancies(a, &RedundancyOptions::default()).aig
    });
    println!("final: {} nodes", cur.num_ands());
}
