//! Per-stage wall-clock profile of the SBM script on one benchmark —
//! the development aid behind the "contained runtime cost" tuning.
//!
//! Usage: `profile [benchmark]` (default `div`).

use std::time::Instant;

use sbm_core::balance::balance;
use sbm_core::bdiff::{boolean_difference_resub, BdiffOptions};
use sbm_core::gradient::{gradient_optimize, GradientOptions};
use sbm_core::hetero::{hetero_eliminate_kernel, HeteroOptions};
use sbm_core::mspf::{mspf_optimize, MspfOptions};
use sbm_core::refactor::{refactor, RefactorOptions};
use sbm_core::resub::{resub, ResubOptions};
use sbm_core::rewrite::{rewrite, RewriteOptions};
use sbm_core::script::resyn2rs;
use sbm_epfl::{generate, Scale};
use sbm_sat::redundancy::{remove_redundancies, RedundancyOptions};
use sbm_sat::sweep::{sweep, SweepOptions};

fn stage(name: &str, aig: &sbm_aig::Aig, f: impl FnOnce(&sbm_aig::Aig) -> sbm_aig::Aig) -> sbm_aig::Aig {
    let t = Instant::now();
    let out = f(aig);
    println!(
        "{name:<12} {:6} -> {:6} nodes  {:8.2}s",
        aig.num_ands(),
        out.num_ands(),
        t.elapsed().as_secs_f64()
    );
    out
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "div".into());
    let aig = generate(&name, Scale::Reduced).expect("known benchmark");
    println!("{name}: {} nodes unoptimized", aig.num_ands());
    let mut cur = aig;
    cur = stage("balance", &cur, balance);
    cur = stage("resyn2rs", &cur, resyn2rs);
    cur = stage("rewrite", &cur, |a| rewrite(a, &RewriteOptions::default()).0);
    cur = stage("refactor", &cur, |a| refactor(a, &RefactorOptions::default()).0);
    cur = stage("resub", &cur, |a| resub(a, &ResubOptions::default()).0);
    cur = stage("gradient", &cur, |a| {
        gradient_optimize(a, &GradientOptions::default()).0
    });
    cur = stage("hetero", &cur, |a| {
        hetero_eliminate_kernel(a, &HeteroOptions::default()).0
    });
    cur = stage("mspf", &cur, |a| mspf_optimize(a, &MspfOptions::default()).0);
    cur = stage("bdiff", &cur, |a| {
        boolean_difference_resub(a, &BdiffOptions::default()).0
    });
    cur = stage("sweep", &cur, |a| {
        let mut w = a.cleanup();
        sweep(&mut w, &SweepOptions::default());
        w.cleanup()
    });
    cur = stage("redundancy", &cur, |a| {
        remove_redundancies(a, &RedundancyOptions::default()).0
    });
    println!("final: {} nodes", cur.num_ands());
}
