// A CLI driver, not library code: aborting with a message is the intended
// error path, so the workspace unwrap/expect denial is relaxed here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Regenerates **Table II** — "Smallest AIG Results For The EPFL Suite".
//!
//! The paper's smallest-AIG methodology: the SBM optimization script
//! against `resyn2rs` run "until no improvement is seen". This binary
//! reports AIG size and level count for both, plus the Section III-B
//! runtime datapoint (Boolean-difference resubstitution applied
//! monolithically to `i2c` and `cavlc`).
//!
//! Usage: `table2 [--full] [--threads N] [--deadline SECONDS]
//! [--checkpoint DIR [--resume]] [--only NAMES] [--sim-filter on|off]
//! [--report-json PATH]`.
//! `--checkpoint DIR` persists crash-safe progress per benchmark under
//! `DIR`; `--resume` continues an interrupted checkpointed run. `--only
//! NAMES` restricts the run to benchmarks matching any comma-separated
//! substring. `--sim-filter off` disables the simulation-signature
//! candidate filter (see `SbmOptions::sim_filter`). `--report-json PATH`
//! writes the aggregated run as a serialized `RunReport` (the script wall
//! and the Section III-B monolithic timings land in its `extra`
//! counters).

use sbm_budget::Budget;
use sbm_core::bdiff::BdiffOptions;
use sbm_core::engine::{Bdiff, Engine, EngineCtx};
use sbm_core::pipeline::PipelineReport;
use sbm_core::script::{resyn2rs_fixpoint, sbm_script_report, sbm_script_resumable, SbmOptions};
use sbm_epfl::{benchmark, Scale};
use sbm_metrics::Timer;

/// The 13 benchmarks of Table II (`hypotenuse` is generated as `hyp`).
const TABLE2: [&str; 13] = [
    "arbiter", "cavlc", "div", "i2c", "log2", "mem_ctrl", "mult", "router", "sin", "hyp", "sqrt",
    "square", "voter",
];

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let threads = sbm_bench::threads_arg();
    let deadline = sbm_bench::deadline_arg();
    let (ckpt_root, resume) = sbm_bench::checkpoint_args();
    let only = sbm_bench::only_arg();
    let report_json = sbm_bench::report_json_arg();
    let sim_filter = sbm_bench::sim_filter_arg();
    let scale = if full { Scale::Full } else { Scale::Reduced };
    println!("Table II — Smallest AIG Results For The EPFL Suite");
    println!(
        "scale: {scale:?}, threads: {threads}, sim filter: {}",
        if sim_filter { "on" } else { "off" }
    );
    if let Some(root) = &ckpt_root {
        println!(
            "checkpoint: {} ({})",
            root.display(),
            if resume { "resuming" } else { "fresh" }
        );
    }
    println!();
    println!(
        "{:<12} {:>9} | {:>9} {:>8} | {:>9} {:>8} | {:>8} {:>9}",
        "benchmark", "I/O", "base AIG", "base lv", "SBM AIG", "SBM lv", "Δsize", "verify"
    );
    let mut pipeline_report = PipelineReport::default();
    let mut script_wall = std::time::Duration::ZERO;
    let mut processed: Vec<String> = Vec::new();
    for name in TABLE2 {
        if !sbm_bench::only_matches(&only, name) {
            continue;
        }
        let bench = benchmark(name, scale).expect("known benchmark");
        let aig = bench.aig;
        let io = format!("{}/{}", aig.num_inputs(), aig.num_outputs());

        let baseline = resyn2rs_fixpoint(&aig, 6);
        let options = SbmOptions::builder()
            .num_threads(threads)
            .deadline(deadline)
            .sim_filter(sim_filter)
            .checkpoint_dir(ckpt_root.as_ref().map(|d| d.join(name)))
            .build()
            .expect("valid options");
        let timer = Timer::start();
        let run = if resume {
            match sbm_script_resumable(&aig, &options) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("{name}: cannot resume ({e}); running fresh");
                    sbm_script_report(&aig, &options)
                }
            }
        } else {
            sbm_script_report(&aig, &options)
        };
        script_wall += timer.stop();
        processed.push(name.to_string());
        let sbm = run.aig;
        pipeline_report.merge(&run.stats);
        let verdict = sbm_bench::verify_pair(&aig, &sbm, 4_000);
        println!(
            "{:<12} {:>9} | {:>9} {:>8} | {:>9} {:>8} | {:>8} {:>9}",
            name,
            io,
            baseline.num_ands(),
            baseline.depth(),
            sbm.num_ands(),
            sbm.depth(),
            sbm_bench::pct(baseline.num_ands() as f64, sbm.num_ands() as f64),
            verdict,
        );
    }
    println!();
    println!(
        "sbm_script total: {:.1}s across {} benchmarks (threads: {threads})",
        script_wall.as_secs_f64(),
        processed.len()
    );
    if threads > 1 || ckpt_root.is_some() {
        println!();
        println!("{pipeline_report}");
    }
    if let Some(error) = &pipeline_report.checkpoint_error {
        println!();
        println!("checkpoint WARNING: {error} (run completed without crash safety)");
    }
    println!();
    println!("paper reference (full scale): arbiter 879/228, cavlc 483/78, div 19250/6228,");
    println!("i2c 710/25, log2 30522/348, mem_ctrl 7644/40, mult 25371/317, router 96/21,");
    println!("sin 4987/153, hypotenuse 209460/24926, sqrt 19706/5399, square 17010/343,");
    println!("voter 9817/66");

    // Section III-B: Boolean-difference applied monolithically to i2c and
    // cavlc (paper: 2.3 s and 1.2 s respectively).
    let micros = |d: std::time::Duration| u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
    let mut extra = sbm_metrics::CounterSet::new();
    extra.add("script_us", micros(script_wall));
    println!();
    println!("Monolithic Boolean-difference resubstitution (Section III-B):");
    for name in ["i2c", "cavlc"] {
        let aig = sbm_epfl::generate(name, scale).expect("known benchmark");
        let mut opts = BdiffOptions::default();
        // Monolithic: one window covering the network (the paper applies
        // the method to the whole i2c/cavlc networks, Section III-B).
        opts.partition.max_nodes = usize::MAX;
        opts.partition.max_levels = u32::MAX;
        opts.partition.max_inputs = usize::MAX;
        let timer = Timer::start();
        let engine = Bdiff { options: opts };
        let result = engine.optimize(&aig, &EngineCtx::new(&Budget::unlimited()));
        let wall = timer.stop();
        extra.add(&format!("monolithic_bdiff_{name}_us"), micros(wall));
        println!(
            "  {name}: {} -> {} nodes in {:.2}s ({} pairs tried, {} accepted) [paper: i2c 2.3s, cavlc 1.2s]",
            aig.num_ands(),
            result.aig.num_ands(),
            wall.as_secs_f64(),
            result.stats.tried,
            result.stats.accepted,
        );
    }

    if let Some(path) = &report_json {
        let mut run = pipeline_report.run_report();
        run.tool = "table2".to_string();
        run.scale = format!("{scale:?}");
        run.threads = threads as u64;
        run.benchmarks = processed;
        run.extra = extra;
        println!();
        sbm_bench::write_report(path, &run);
    }
}
