//! Shared helpers for the table-regeneration binaries and benches.
//!
//! Each binary regenerates one artifact of the paper's evaluation
//! (Section V): `table1` (EPFL LUT-6 area), `table2` (smallest AIGs),
//! `table3` (post-implementation flow comparison on 33 designs) and
//! `fig1` (the Boolean-difference worked example). The criterion benches
//! cover runtime behaviour and the ablations called out in `DESIGN.md`.

use std::time::Duration;

use sbm_aig::Aig;
use sbm_check::{CheckLevel, FaultPlan};
use sbm_sat::{EquivalenceOracle, MiterOracle, Verdict};

/// Verifies optimization results the way the paper does ("verified with
/// an industrial formal equivalence checking flow"): SAT miter with a
/// budget, falling back to random simulation screening on big designs.
pub fn verify_pair(original: &Aig, optimized: &Aig, sat_node_limit: usize) -> &'static str {
    if original.num_ands().max(optimized.num_ands()) <= sat_node_limit {
        match MiterOracle::new()
            .with_conflict_budget(Some(200_000))
            .check(original, optimized)
        {
            Verdict::Equivalent => "eq(SAT)",
            Verdict::Unknown => "eq(sim)", // budget out: fall back below
            Verdict::Refuted(_) => "MISMATCH",
        }
    } else if sim_equal(original, optimized) {
        "eq(sim)"
    } else {
        "MISMATCH"
    }
}

/// Random-simulation equivalence screen (identical seeds ⇒ identical
/// patterns).
pub fn sim_equal(a: &Aig, b: &Aig) -> bool {
    let sa = sbm_aig::sim::Signatures::random(a, 4, 0xFEED);
    let sb = sbm_aig::sim::Signatures::random(b, 4, 0xFEED);
    a.outputs()
        .into_iter()
        .zip(b.outputs())
        .all(|(x, y)| (0..4).all(|w| sa.lit_word(x, w) == sb.lit_word(y, w)))
}

/// Parses the shared `--threads N` CLI argument of the table binaries
/// (default 1 = serial).
pub fn threads_arg() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1);
        }
    }
    1
}

/// Parses the shared `--sim-filter on|off` CLI argument of the table
/// binaries (default `on`): whether runs maintain the shared
/// simulation-signature service that filters candidates before BDD/SAT
/// work and harvests counterexamples from failed equivalence checks.
/// The filter is a sound necessary condition (it never costs quality),
/// but `on` also pins runs to the thread-count-invariant windowed
/// schedule; see `SbmOptions::sim_filter`.
pub fn sim_filter_arg() -> bool {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--sim-filter" {
            let Some(value) = args.next() else {
                eprintln!("--sim-filter needs a value: on | off");
                std::process::exit(sbm_metrics::exit::USAGE);
            };
            return match value.as_str() {
                "on" => true,
                "off" => false,
                other => {
                    eprintln!("--sim-filter needs on|off, got {other:?}");
                    std::process::exit(sbm_metrics::exit::USAGE);
                }
            };
        }
    }
    true
}

/// Parses the shared `--check off|boundaries|paranoid` CLI argument of
/// the table binaries (default `off`). An unrecognized level aborts with
/// a usage message rather than silently running unchecked.
pub fn check_arg() -> CheckLevel {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--check" {
            let Some(value) = args.next() else {
                eprintln!("--check needs a level: off | boundaries | paranoid");
                std::process::exit(sbm_metrics::exit::USAGE);
            };
            return value.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(sbm_metrics::exit::USAGE);
            });
        }
    }
    CheckLevel::Off
}

/// Parses the shared `--deadline SECONDS` CLI argument (default `None` =
/// unbounded). The run degrades gracefully at the deadline instead of
/// aborting; non-positive or unparsable values abort with a usage message.
pub fn deadline_arg() -> Option<Duration> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--deadline" {
            let seconds: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(0.0);
            if seconds <= 0.0 {
                eprintln!("--deadline needs a positive number of seconds");
                std::process::exit(sbm_metrics::exit::USAGE);
            }
            return Some(Duration::from_secs_f64(seconds));
        }
    }
    None
}

/// Parses the shared `--fault-seed N` / `--fault-rate R` CLI arguments
/// into a deterministic [`FaultPlan`] (each of panic/delay/bailout gets
/// probability `R` per engine invocation). Returns `None` — no injection,
/// zero overhead — unless at least one of the flags is present; a bare
/// `--fault-seed` defaults the rate to 0.1, a bare `--fault-rate`
/// defaults the seed to 1.
pub fn fault_plan_arg() -> Option<FaultPlan> {
    let mut seed: Option<u64> = None;
    let mut rate: Option<f64> = None;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fault-seed" => {
                seed = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fault-seed needs an integer seed");
                    std::process::exit(sbm_metrics::exit::USAGE);
                }));
            }
            "--fault-rate" => {
                let r: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(-1.0);
                if !(0.0..=1.0 / 3.0).contains(&r) {
                    eprintln!("--fault-rate needs a probability in [0, 0.333]");
                    std::process::exit(sbm_metrics::exit::USAGE);
                }
                rate = Some(r);
            }
            _ => {}
        }
    }
    if seed.is_none() && rate.is_none() {
        return None;
    }
    Some(FaultPlan::uniform(seed.unwrap_or(1), rate.unwrap_or(0.1)))
}

/// Parses the shared `--checkpoint DIR` / `--resume` CLI arguments of
/// the table binaries. `--checkpoint DIR` makes every script/pipeline
/// run persist crash-safe progress under a per-benchmark subdirectory of
/// `DIR`; `--resume` picks interrupted runs up from those checkpoints
/// instead of starting fresh. `--resume` without `--checkpoint` aborts
/// with a usage message.
pub fn checkpoint_args() -> (Option<std::path::PathBuf>, bool) {
    let mut dir: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--checkpoint" => {
                let Some(value) = args.next() else {
                    eprintln!("--checkpoint needs a directory");
                    std::process::exit(sbm_metrics::exit::USAGE);
                };
                dir = Some(std::path::PathBuf::from(value));
            }
            "--resume" => resume = true,
            _ => {}
        }
    }
    if resume && dir.is_none() {
        eprintln!("--resume requires --checkpoint DIR (the directory of the interrupted run)");
        std::process::exit(sbm_metrics::exit::USAGE);
    }
    (dir, resume)
}

/// Parses the shared `--only NAMES` CLI argument: restricts a table
/// binary to the benchmarks matched by [`only_matches`] (used by the CI
/// smokes to keep the run small). `NAMES` is a comma-separated list of
/// substrings, e.g. `--only i2c,priority`.
pub fn only_arg() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--only" {
            let Some(value) = args.next() else {
                eprintln!("--only needs a benchmark name (comma-separated substring match)");
                std::process::exit(sbm_metrics::exit::USAGE);
            };
            return Some(value);
        }
    }
    None
}

/// True when `name` is selected by an `--only` filter: no filter selects
/// everything, otherwise any comma-separated entry matching as a
/// substring selects the benchmark.
pub fn only_matches(only: &Option<String>, name: &str) -> bool {
    match only {
        None => true,
        Some(list) => list.split(',').any(|o| !o.is_empty() && name.contains(o)),
    }
}

/// Parses the shared `--report-json PATH` CLI argument of the table
/// binaries: after the run, a serialized [`sbm_metrics::RunReport`] is
/// written to `PATH` (see [`write_report`]).
pub fn report_json_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--report-json" {
            let Some(value) = args.next() else {
                eprintln!("--report-json needs an output path");
                std::process::exit(sbm_metrics::exit::USAGE);
            };
            return Some(std::path::PathBuf::from(value));
        }
    }
    None
}

/// Writes a [`sbm_metrics::RunReport`] to the `--report-json` path,
/// aborting loudly on I/O failure (a benchmark run whose report silently
/// vanished is worse than one that failed). The exit code is
/// [`sbm_metrics::exit::RUNTIME`]: the invocation was fine, the
/// environment failed.
pub fn write_report(path: &std::path::Path, report: &sbm_metrics::RunReport) {
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("cannot write report to {}: {e}", path.display());
        std::process::exit(sbm_metrics::exit::RUNTIME);
    }
    println!("run report written to {}", path.display());
}

/// Formats a ratio as the paper's "-x.xx%" convention.
pub fn pct(before: f64, after: f64) -> String {
    if before == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.2}%", (after - before) / before * 100.0)
}
