//! `sbm-lint` — the workspace determinism & concurrency static-analysis
//! pass.
//!
//! The parallel windowed pipeline only stays *reproducible* — identical
//! results and counters at every thread count — by convention: sorted
//! iteration, a single sanctioned concurrency module, thread-local tally
//! drains at serial boundaries, `Timer` instead of ad-hoc clocks,
//! tmp+rename+fsync persistence. Clippy cannot express any of those
//! conventions, so this crate enforces them with a hand-rolled,
//! zero-dependency token scanner (see [`scan`]) and a set of typed,
//! coded rules (see [`rules`] for the catalog).
//!
//! Violations are [`LintError`]s; intentional exceptions are suppressed
//! *per site* with
//!
//! ```text
//! // sbm-lint: allow(CODE) why this site is sound
//! ```
//!
//! on the offending line or the line above (or `allow-file(CODE)` for a
//! whole file). A suppression without a reason is itself a violation
//! (`L001`), and a suppression that no longer suppresses anything is too
//! (`L002`) — the allow-list can only shrink, never rot.
//!
//! The `sbm-lint` binary walks the workspace and exits nonzero on any
//! violation; `ci.sh` runs it in both quick and full modes.

pub mod rules;
pub mod scan;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Every rule this pass can fire, with a stable short code used in
/// diagnostics and suppression comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// D001 — unordered `HashMap`/`HashSet` iteration in a
    /// result-affecting crate.
    UnorderedHashIter,
    /// D002 — raw `Instant::now()` / `SystemTime` outside
    /// `sbm-metrics::Timer`.
    RawInstant,
    /// D003 — floating point in counter/report paths.
    FloatInCounters,
    /// C001 — `thread::spawn`/`thread::scope` outside the sanctioned
    /// concurrency modules (pipeline executor, server worker pool,
    /// loadgen client fan-out).
    RawThread,
    /// C002 — raw `Mutex`/`RwLock`/`Condvar` outside the sanctioned
    /// concurrency modules.
    RawMutex,
    /// C003 — `static mut`.
    StaticMut,
    /// C004 — tally drain/note outside the drain discipline.
    TallyBypass,
    /// A001 — use of a removed deprecated shim.
    DeprecatedShim,
    /// A002 — external dependency in a `Cargo.toml`.
    NewDependency,
    /// A003 — `unwrap`/`expect`/`panic!` in library code.
    PanicInLib,
    /// P001 — raw file write in `sbm-journal` outside the snapshot helper.
    RawFileWrite,
    /// L001 — suppression comment without a reason.
    SuppressionNoReason,
    /// L002 — suppression comment that suppresses nothing.
    UnusedSuppression,
}

impl LintCode {
    /// The stable short code (`"D001"`, …) used in output and
    /// suppression comments.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::UnorderedHashIter => "D001",
            LintCode::RawInstant => "D002",
            LintCode::FloatInCounters => "D003",
            LintCode::RawThread => "C001",
            LintCode::RawMutex => "C002",
            LintCode::StaticMut => "C003",
            LintCode::TallyBypass => "C004",
            LintCode::DeprecatedShim => "A001",
            LintCode::NewDependency => "A002",
            LintCode::PanicInLib => "A003",
            LintCode::RawFileWrite => "P001",
            LintCode::SuppressionNoReason => "L001",
            LintCode::UnusedSuppression => "L002",
        }
    }

    /// Short human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::UnorderedHashIter => "unordered-hash-iteration",
            LintCode::RawInstant => "raw-time-source",
            LintCode::FloatInCounters => "float-in-counters",
            LintCode::RawThread => "raw-thread",
            LintCode::RawMutex => "raw-mutex",
            LintCode::StaticMut => "static-mut",
            LintCode::TallyBypass => "tally-bypass",
            LintCode::DeprecatedShim => "deprecated-shim",
            LintCode::NewDependency => "new-dependency",
            LintCode::PanicInLib => "panic-in-lib",
            LintCode::RawFileWrite => "raw-file-write",
            LintCode::SuppressionNoReason => "suppression-without-reason",
            LintCode::UnusedSuppression => "unused-suppression",
        }
    }

    /// Parses a short code as written in a suppression comment.
    pub fn parse(s: &str) -> Option<LintCode> {
        ALL_CODES.iter().copied().find(|c| c.as_str() == s)
    }
}

/// Every code, for `parse` and catalog listings.
pub const ALL_CODES: [LintCode; 13] = [
    LintCode::UnorderedHashIter,
    LintCode::RawInstant,
    LintCode::FloatInCounters,
    LintCode::RawThread,
    LintCode::RawMutex,
    LintCode::StaticMut,
    LintCode::TallyBypass,
    LintCode::DeprecatedShim,
    LintCode::NewDependency,
    LintCode::PanicInLib,
    LintCode::RawFileWrite,
    LintCode::SuppressionNoReason,
    LintCode::UnusedSuppression,
];

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.as_str(), self.name())
    }
}

/// One typed diagnostic: a rule fired at an exact location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    /// The rule that fired.
    pub code: LintCode,
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub detail: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.code, self.detail
        )
    }
}

/// Lints one Rust source file given its workspace-relative `path` (with
/// `/` separators) and contents. Applies suppressions and reports
/// suppression hygiene (`L001`/`L002`).
pub fn lint_rust_source(path: &str, src: &str) -> Vec<LintError> {
    if rules::is_vendored(path) || rules::is_test_path(path) {
        return Vec::new();
    }
    let scan = scan::scan(src);
    let raw = rules::check_source(path, &scan);
    apply_suppressions(path, raw, &scan.directives)
}

/// Lints one `Cargo.toml` given its workspace-relative `path`.
pub fn lint_cargo_toml(path: &str, text: &str) -> Vec<LintError> {
    rules::check_cargo_toml(path, text)
}

/// Filters `raw` violations through the file's suppression directives,
/// then appends `L001` (reason-less suppression) and `L002` (unused
/// suppression) diagnostics.
fn apply_suppressions(
    path: &str,
    raw: Vec<LintError>,
    directives: &[scan::Directive],
) -> Vec<LintError> {
    let mut used = vec![false; directives.len()];
    let mut out = Vec::new();
    for v in raw {
        let mut suppressed = false;
        for (i, d) in directives.iter().enumerate() {
            let code_matches = d.code == v.code.as_str();
            let site_matches = d.file_wide || d.line == v.line || d.line + 1 == v.line;
            if code_matches && site_matches {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(v);
        }
    }
    for (i, d) in directives.iter().enumerate() {
        if LintCode::parse(&d.code).is_none() {
            out.push(LintError {
                code: LintCode::UnusedSuppression,
                file: path.to_string(),
                line: d.line,
                detail: format!("suppression names unknown rule code `{}`", d.code),
            });
            continue;
        }
        if d.reason.is_empty() {
            out.push(LintError {
                code: LintCode::SuppressionNoReason,
                file: path.to_string(),
                line: d.line,
                detail: format!(
                    "suppression of {} must carry a reason after the closing parenthesis",
                    d.code
                ),
            });
        }
        if !used[i] {
            out.push(LintError {
                code: LintCode::UnusedSuppression,
                file: path.to_string(),
                line: d.line,
                detail: format!(
                    "suppression of {} matches no violation on this or the next line; \
                     remove it so the allow-list cannot rot",
                    d.code
                ),
            });
        }
    }
    out
}

/// Walks the workspace rooted at `root` and lints every first-party
/// Rust source file and `Cargo.toml`. Results are sorted by
/// (file, line, code) so output is deterministic.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<LintError>> {
    let mut errors = Vec::new();
    let lint_file = |abs: &Path, rel: String, errors: &mut Vec<LintError>| -> io::Result<()> {
        let text = fs::read_to_string(abs)?;
        if rel.ends_with("Cargo.toml") {
            errors.extend(lint_cargo_toml(&rel, &text));
        } else {
            errors.extend(lint_rust_source(&rel, &text));
        }
        Ok(())
    };

    // Root manifest and facade crate.
    lint_file(
        &root.join("Cargo.toml"),
        "Cargo.toml".to_string(),
        &mut errors,
    )?;
    for rs in rust_files_under(&root.join("src"))? {
        let rel = relative(&rs, root);
        lint_file(&rs, rel, &mut errors)?;
    }

    // Member crates, in sorted order.
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        let rel_crate = relative(&member, root);
        if rules::is_vendored(&format!("{rel_crate}/")) {
            continue;
        }
        let manifest = member.join("Cargo.toml");
        if manifest.is_file() {
            lint_file(&manifest, relative(&manifest, root), &mut errors)?;
        }
        for rs in rust_files_under(&member.join("src"))? {
            let rel = relative(&rs, root);
            lint_file(&rs, rel, &mut errors)?;
        }
    }

    errors
        .sort_by(|a, b| (a.file.as_str(), a.line, a.code).cmp(&(b.file.as_str(), b.line, b.code)));
    Ok(errors)
}

/// Counts the Rust source files `lint_workspace` would scan (for the
/// binary's summary line).
pub fn count_workspace_files(root: &Path) -> io::Result<usize> {
    let mut n = rust_files_under(&root.join("src"))?.len();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let member = entry?.path();
        if !member.is_dir() {
            continue;
        }
        let rel_crate = relative(&member, root);
        if rules::is_vendored(&format!("{rel_crate}/")) {
            continue;
        }
        n += rust_files_under(&member.join("src"))?.len();
    }
    Ok(n)
}

/// All `.rs` files under `dir`, recursively, sorted. Missing directories
/// yield an empty list.
fn rust_files_under(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, `/`-separated.
fn relative(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_through_parse() {
        for code in ALL_CODES {
            assert_eq!(LintCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(LintCode::parse("Z999"), None);
    }

    #[test]
    fn display_is_colon_separated() {
        let e = LintError {
            code: LintCode::RawInstant,
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            detail: "nope".to_string(),
        };
        assert_eq!(
            e.to_string(),
            "crates/x/src/lib.rs:7: D002 (raw-time-source): nope"
        );
    }

    #[test]
    fn suppression_on_same_or_previous_line_applies() {
        let src = "fn f() {\n    // sbm-lint: allow(D002) cold startup banner only\n    let t = Instant::now();\n}\n";
        let errors = lint_rust_source("crates/aig/src/x.rs", src);
        assert!(errors.is_empty(), "unexpected: {errors:?}");
    }

    #[test]
    fn reasonless_suppression_is_l001() {
        let src = "fn f() {\n    // sbm-lint: allow(D002)\n    let t = Instant::now();\n}\n";
        let errors = lint_rust_source("crates/aig/src/x.rs", src);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, LintCode::SuppressionNoReason);
        assert_eq!(errors[0].line, 2);
    }

    #[test]
    fn unused_suppression_is_l002() {
        let src = "// sbm-lint: allow(C003) there is no static mut here\nfn f() {}\n";
        let errors = lint_rust_source("crates/aig/src/x.rs", src);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, LintCode::UnusedSuppression);
    }

    #[test]
    fn unknown_code_in_suppression_is_reported() {
        let src = "// sbm-lint: allow(Q404) mystery\nfn f() {}\n";
        let errors = lint_rust_source("crates/aig/src/x.rs", src);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, LintCode::UnusedSuppression);
        assert!(errors[0].detail.contains("unknown rule code"));
    }

    #[test]
    fn vendored_and_test_paths_are_skipped() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(lint_rust_source("crates/criterion/src/lib.rs", src).is_empty());
        assert!(lint_rust_source("crates/aig/tests/proptests.rs", src).is_empty());
        assert!(!lint_rust_source("crates/aig/src/lib.rs", src).is_empty());
    }
}
