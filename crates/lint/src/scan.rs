//! A minimal hand-rolled Rust lexer — just enough structure for the
//! token-pattern rules in [`crate::rules`].
//!
//! The scanner deliberately avoids a real parser (`syn` would be an
//! external dependency, which rule `A002` exists to forbid): it produces
//! a flat token stream with line numbers, strips comments / string and
//! character literals (so pattern text inside strings never triggers a
//! rule), extracts `sbm-lint:` suppression directives from comments, and
//! marks the token spans that belong to `#[cfg(test)]` / `#[test]` items
//! and to `use` declarations so rules can skip them.

/// One lexed token: identifiers, numeric literals and punctuation.
/// `::` is fused into a single token; every other punctuation character
/// stands alone. Comment and literal *contents* never appear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// The token text.
    pub text: String,
}

/// A `sbm-lint: allow(CODE) reason` suppression parsed from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line of the comment carrying the directive.
    pub line: u32,
    /// The rule code being suppressed, e.g. `"D001"`.
    pub code: String,
    /// Free-text justification after the closing parenthesis; an empty
    /// reason is itself a violation (`L001`).
    pub reason: String,
    /// True for `allow-file(CODE)`, which suppresses the code for the
    /// whole file instead of the next/current line.
    pub file_wide: bool,
}

/// The result of scanning one Rust source file.
#[derive(Debug, Default)]
pub struct Scan {
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Suppression directives found in comments.
    pub directives: Vec<Directive>,
    /// `in_test[i]` — token `i` is inside a `#[cfg(test)]` / `#[test]`
    /// item (rules skip test code; panics there *are* the report).
    pub in_test: Vec<bool>,
    /// `in_use[i]` — token `i` is inside a `use` declaration (imports
    /// are flagged at their usage sites, not at the import line).
    pub in_use: Vec<bool>,
}

/// Scans `src`, producing the token stream plus directive/span metadata.
pub fn scan(src: &str) -> Scan {
    let mut tokens = Vec::new();
    let mut directives = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: harvest a possible directive, then skip.
                // Doc comments (`///`, `//!`) are excluded — directive
                // text there is illustrative, not a suppression.
                let end = line_end(bytes, i);
                let is_doc = matches!(bytes.get(i + 2), Some(&b'/') | Some(&b'!'));
                if !is_doc {
                    if let Some(d) = parse_directive(&src[i..end], line) {
                        directives.push(d);
                    }
                }
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment (nestable). Directives are only
                // recognized in line comments.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => i = skip_string(bytes, i + 1, &mut line),
            b'r' | b'b' if raw_string_start(bytes, i).is_some() => {
                // r"..", r#".."#, br".." etc.
                let (body, hashes) = match raw_string_start(bytes, i) {
                    Some(pair) => pair,
                    None => (i + 1, 0),
                };
                i = skip_raw_string(bytes, body, hashes, &mut line);
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => i = skip_string(bytes, i + 2, &mut line),
            b'\'' => {
                // Lifetime or char literal. `'ident` not followed by a
                // closing quote is a lifetime; anything else is a char.
                let mut j = i + 1;
                if j < bytes.len() && bytes[j] == b'\\' {
                    // Escaped char literal: skip escape then closing quote.
                    j += 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    i = j + 1;
                } else {
                    let start = j;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    if j > start && bytes.get(j) != Some(&b'\'') {
                        // Lifetime: drop it, rules never need lifetimes.
                        i = j;
                    } else {
                        // Char literal like 'a' or '{'; skip to quote.
                        let mut k = i + 1;
                        while k < bytes.len() && bytes[k] != b'\'' && bytes[k] != b'\n' {
                            k += 1;
                        }
                        i = (k + 1).min(bytes.len());
                    }
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                // A fractional part — but not the `..` range operator.
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                }
                tokens.push(Token {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            b':' if bytes.get(i + 1) == Some(&b':') => {
                tokens.push(Token {
                    line,
                    text: "::".to_string(),
                });
                i += 2;
            }
            _ => {
                tokens.push(Token {
                    line,
                    text: (c as char).to_string(),
                });
                i += 1;
            }
        }
    }

    let in_test = mark_test_spans(&tokens);
    let in_use = mark_use_spans(&tokens);
    Scan {
        tokens,
        directives,
        in_test,
        in_use,
    }
}

fn line_end(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    i
}

/// Skips a (non-raw) string literal body starting just after the opening
/// quote; returns the index just past the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// If a raw (byte) string starts at `i`, returns `(body_start, hashes)`.
fn raw_string_start(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((j + 1, hashes))
    } else {
        None
    }
}

fn skip_raw_string(bytes: &[u8], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            let mut k = 0;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Parses one line comment for a `sbm-lint: allow(CODE) reason` or
/// `sbm-lint: allow-file(CODE) reason` directive.
pub fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let rest = comment.split("sbm-lint:").nth(1)?.trim_start();
    let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow(") {
        (false, r)
    } else {
        return None;
    };
    let close = rest.find(')')?;
    let code = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim().to_string();
    Some(Directive {
        line,
        code,
        reason,
        file_wide,
    })
}

/// Marks the token spans of `#[cfg(test)]`- and `#[test]`-gated items.
///
/// On seeing such an attribute, the following item is marked: up to the
/// matching `}` of its first brace (an inline `mod tests { .. }` or a
/// test fn), or to the first `;` when no brace opens first.
fn mark_test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut marked = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            // Collect the attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1;
            let mut attr: Vec<&str> = Vec::new();
            while j < tokens.len() && depth > 0 {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    t => attr.push(t),
                }
                j += 1;
            }
            let is_test_attr = matches!(attr.first().copied(), Some("cfg") | Some("test"))
                && attr.contains(&"test");
            if is_test_attr {
                // Mark from the attribute through the gated item.
                let mut k = j;
                let mut brace = 0usize;
                let mut entered = false;
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        "{" => {
                            brace += 1;
                            entered = true;
                        }
                        "}" => brace = brace.saturating_sub(1),
                        ";" if !entered => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                    if entered && brace == 0 {
                        break;
                    }
                }
                for m in marked.iter_mut().take(k).skip(i) {
                    *m = true;
                }
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    marked
}

/// Marks tokens inside `use ...;` declarations.
fn mark_use_spans(tokens: &[Token]) -> Vec<bool> {
    let mut marked = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "use" {
            let mut j = i;
            while j < tokens.len() && tokens[j].text != ";" {
                marked[j] = true;
                j += 1;
            }
            if j < tokens.len() {
                marked[j] = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        scan(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let toks = texts("let x = \"Instant::now()\"; // Mutex\n/* HashMap */ y");
        assert_eq!(toks, ["let", "x", "=", ";", "y"]);
    }

    #[test]
    fn double_colon_is_fused() {
        let toks = texts("Instant::now()");
        assert_eq!(toks, ["Instant", "::", "now", "(", ")"]);
    }

    #[test]
    fn lifetimes_and_char_literals() {
        let toks = texts("fn f<'a>(x: &'a str) { let c = 'z'; let n = '\\n'; }");
        assert!(!toks.contains(&"z".to_string()));
        assert!(toks.contains(&"str".to_string()));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let toks = texts("let s = r#\"thread::spawn \"inner\" \"#; end");
        assert_eq!(toks, ["let", "s", "=", ";", "end"]);
    }

    #[test]
    fn numbers_lex_including_floats_and_ranges() {
        let toks = texts("let a = 1.5f64; for i in 0..10 {}");
        assert!(toks.contains(&"1.5f64".to_string()));
        assert!(toks.contains(&"0".to_string()));
        assert!(toks.contains(&"10".to_string()));
    }

    #[test]
    fn directive_parsing() {
        let d = parse_directive("// sbm-lint: allow(D001) keys feed a strash rebuild", 7)
            .expect("directive");
        assert_eq!(d.code, "D001");
        assert_eq!(d.reason, "keys feed a strash rebuild");
        assert!(!d.file_wide);
        let f = parse_directive("// sbm-lint: allow-file(C002)  ", 1).expect("directive");
        assert!(f.file_wide);
        assert!(f.reason.is_empty());
        assert!(parse_directive("// plain comment", 1).is_none());
    }

    #[test]
    fn cfg_test_spans_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn tail() {}";
        let s = scan(src);
        let unwrap_idx = s
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert!(s.in_test[unwrap_idx]);
        let tail_idx = s
            .tokens
            .iter()
            .position(|t| t.text == "tail")
            .expect("tail token");
        assert!(!s.in_test[tail_idx]);
    }

    #[test]
    fn use_spans_are_marked() {
        let src = "use std::sync::Mutex;\nfn f() { Mutex::new(0); }";
        let s = scan(src);
        let first = s
            .tokens
            .iter()
            .position(|t| t.text == "Mutex")
            .expect("import");
        assert!(s.in_use[first]);
        let second = s
            .tokens
            .iter()
            .rposition(|t| t.text == "Mutex")
            .expect("usage");
        assert!(!s.in_use[second]);
    }
}
