//! The rule implementations: token-pattern passes over one scanned file.
//!
//! Every rule is scoped by the *workspace-relative path* of the file
//! (always with `/` separators), so the fixture tests can exercise any
//! rule by linting fixture text under a synthetic path. The catalog:
//!
//! | code | family | invariant |
//! |------|--------|-----------|
//! | D001 | determinism | no iteration over `HashMap`/`HashSet` in result-affecting crates unless sorted or order-insensitive |
//! | D002 | determinism | no raw `Instant::now()` / `SystemTime` outside `sbm-metrics::Timer` |
//! | D003 | determinism | no floating point in counter/report paths |
//! | C001 | concurrency | no `thread::spawn` / `thread::scope` outside the sanctioned concurrency modules |
//! | C002 | concurrency | no raw `Mutex` / `RwLock` / `Condvar` outside the sanctioned concurrency modules |
//! | C003 | concurrency | no `static mut` |
//! | C004 | concurrency | no tally drain/note outside the thread-local drain discipline |
//! | A001 | api | no uses of removed deprecated shims (`OptContext`, bool-returning SAT checks) |
//! | A002 | api | no external dependencies in any `Cargo.toml` |
//! | A003 | api | no `unwrap`/`expect`/`panic!` in library code |
//! | P001 | durability | no raw file writes in `sbm-journal` outside the tmp+rename+fsync helper |
//! | L001 | meta | suppressions must carry a reason |
//! | L002 | meta | suppressions must suppress something |

use crate::scan::{Scan, Token};
use crate::{LintCode, LintError};

/// Crates whose library code feeds optimization *results* or reported
/// counters; unordered hash iteration there is schedule- or
/// seed-dependent behavior waiting to happen (rule D001).
pub const RESULT_AFFECTING_CRATES: [&str; 6] = ["aig", "sop", "bdd", "sat", "core", "sim-service"];

/// Vendored API-compatible shims — not first-party code, never linted.
pub const VENDORED_CRATES: [&str; 2] = ["proptest", "criterion"];

/// The modules allowed to own raw concurrency primitives: the
/// partition-parallel executor, the job server's worker pool, and the
/// load generator's client fan-out. Each sanctioned thread runs a whole
/// serial pipeline end to end (the server pins jobs to
/// `num_threads = 1` + canonical steps), so determinism is enforced by
/// the pipeline contract, not by the absence of threads.
const CONCURRENCY_MODULES: [&str; 3] = [
    "crates/core/src/pipeline.rs",
    "crates/server/src/exec.rs",
    "crates/server/src/bin/loadgen.rs",
];

/// Files participating in the thread-local tally drain discipline
/// (defining modules plus the serial-boundary drain/note call sites).
const TALLY_DISCIPLINE_FILES: [&str; 10] = [
    "crates/sat/src/tally.rs",
    "crates/sat/src/solver.rs",
    "crates/sat/src/lib.rs",
    "crates/sim-service/src/lib.rs",
    "crates/core/src/bdd_bridge.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/script.rs",
    "crates/core/src/gradient.rs",
    "crates/core/src/verify.rs",
    // Each server worker is a serial boundary: one job = one whole
    // script run, so a drain there is exactly-once by construction.
    "crates/server/src/exec.rs",
];

/// The tally entry points rule C004 polices.
const TALLY_FNS: [&str; 6] = [
    "drain_sat_tally",
    "drain_bdd_tally",
    "drain_sim_tally",
    "note_sat_tally",
    "note_bdd_tally",
    "note_sim_tally",
];

/// Identifiers of the PR 6 deprecated shims, removed in PR 7; rule A001
/// keeps them from coming back.
const SHIM_IDENTS: [&str; 4] = [
    "OptContext",
    "EquivResult",
    "check_equivalence",
    "check_equivalence_budgeted",
];

/// Hash-container iteration methods whose visit order is unspecified.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Iterator consumers that are order-insensitive by construction.
const ORDER_INSENSITIVE: [&str; 6] = ["count", "sum", "len", "is_empty", "all", "any"];

/// True when `path` (workspace-relative, `/`-separated) is inside a
/// vendored shim crate.
pub fn is_vendored(path: &str) -> bool {
    VENDORED_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/")))
}

/// True for test/bench/example code, which every rule skips.
pub fn is_test_path(path: &str) -> bool {
    for dir in ["tests", "benches", "examples", "fixtures"] {
        if path.starts_with(&format!("{dir}/")) || path.contains(&format!("/{dir}/")) {
            return true;
        }
    }
    false
}

fn is_bin_path(path: &str) -> bool {
    path.contains("/src/bin/") || path.ends_with("/src/main.rs")
}

fn in_result_affecting_crate(path: &str) -> bool {
    RESULT_AFFECTING_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

fn in_counter_path(path: &str) -> bool {
    path.starts_with("crates/metrics/src/") || path.ends_with("/tally.rs")
}

/// Runs every source rule over one scanned file; returns the raw
/// (pre-suppression) violations.
pub fn check_source(path: &str, scan: &Scan) -> Vec<LintError> {
    let mut out = Vec::new();
    let toks = &scan.tokens;
    let err = |code: LintCode, line: u32, detail: String| LintError {
        code,
        file: path.to_string(),
        line,
        detail,
    };

    // --- D001: unordered hash-container iteration ------------------
    if in_result_affecting_crate(path) {
        let hash_bound = hash_typed_idents(toks);
        for i in 0..toks.len() {
            if scan.in_test[i] || scan.in_use[i] {
                continue;
            }
            if let Some((name, method)) = hash_iteration_at(toks, i, &hash_bound) {
                if !iteration_is_ordered(toks, i) {
                    out.push(err(
                        LintCode::UnorderedHashIter,
                        toks[i].line,
                        format!(
                            "iteration over hash container `{name}` via `{method}` has \
                             unspecified order in a result-affecting crate; use BTreeMap/\
                             BTreeSet, sort before iterating, or allow with a reason"
                        ),
                    ));
                }
            }
        }
    }

    // --- token-at-a-time rules -------------------------------------
    for i in 0..toks.len() {
        if scan.in_test[i] {
            continue;
        }
        let t = toks[i].text.as_str();
        let line = toks[i].line;
        let next = |k: usize| toks.get(i + k).map(|t| t.text.as_str());

        // D002: raw time sources outside the Timer layer.
        if !path.starts_with("crates/metrics/src/") && !scan.in_use[i] {
            if t == "Instant" && next(1) == Some("::") && next(2) == Some("now") {
                out.push(err(
                    LintCode::RawInstant,
                    line,
                    "raw `Instant::now()` outside `sbm-metrics::Timer`; use `Timer::start()` \
                     so spans are values that must be consumed"
                        .to_string(),
                ));
            }
            if t == "SystemTime" {
                out.push(err(
                    LintCode::RawInstant,
                    line,
                    "`SystemTime` is wall-clock-of-day and never deterministic; use \
                     `sbm-metrics::Timer` for spans"
                        .to_string(),
                ));
            }
        }

        // D003: floating point in counter/report paths.
        if in_counter_path(path) {
            let is_float_literal = t.as_bytes().first().is_some_and(u8::is_ascii_digit)
                && t.contains('.')
                && !t.ends_with('.');
            if t == "f32"
                || t == "f64"
                || t == "as_secs_f64"
                || t == "as_secs_f32"
                || is_float_literal
            {
                out.push(err(
                    LintCode::FloatInCounters,
                    line,
                    format!(
                        "floating point (`{t}`) in a counter/report path; counters and \
                         serialized reports are integers-only so merges and re-encodes \
                         are bit-exact"
                    ),
                ));
            }
        }

        // C001/C002/C003: raw concurrency outside the sanctioned modules.
        if !CONCURRENCY_MODULES.contains(&path) && !scan.in_use[i] {
            if t == "thread" && next(1) == Some("::") {
                if let Some(what @ ("spawn" | "scope")) = next(2) {
                    out.push(err(
                        LintCode::RawThread,
                        line,
                        format!(
                            "`thread::{what}` outside the sanctioned concurrency modules; \
                             worker fan-out belongs to the pipeline executor or the \
                             server worker pool so scheduling stays deterministic and \
                             drains stay per-thread"
                        ),
                    ));
                }
            }
            if matches!(t, "Mutex" | "RwLock" | "Condvar") {
                out.push(err(
                    LintCode::RawMutex,
                    line,
                    format!(
                        "raw `{t}` outside the sanctioned concurrency modules; shared \
                         mutable state must not leak into engines — results may become \
                         schedule-dependent"
                    ),
                ));
            }
            if t == "static" && next(1) == Some("mut") {
                out.push(err(
                    LintCode::StaticMut,
                    line,
                    "`static mut` is unsynchronized global state; use thread-locals with \
                     the drain discipline or pass state through `EngineCtx`"
                        .to_string(),
                ));
            }
        }

        // C004: tally access outside the drain discipline.
        if !TALLY_DISCIPLINE_FILES.contains(&path) && TALLY_FNS.contains(&t) {
            out.push(err(
                LintCode::TallyBypass,
                line,
                format!(
                    "`{t}` outside the thread-local drain discipline; draining or \
                     noting tallies elsewhere double-counts or loses counters \
                     (attribution must be exactly-once)"
                ),
            ));
        }

        // A001: the removed PR 6 shims must not come back.
        if SHIM_IDENTS.contains(&t) {
            out.push(err(
                LintCode::DeprecatedShim,
                line,
                format!(
                    "`{t}` is a removed deprecated shim; use `EngineCtx` + \
                     `Engine::optimize` / `EquivalenceOracle` + `Verdict` instead"
                ),
            ));
        }

        // A003: panic backstop in library code (CLI drivers exempt —
        // aborting with a message is their intended error path).
        if !is_bin_path(path) {
            let is_method_unwrap = matches!(t, "unwrap" | "expect")
                && i > 0
                && toks[i - 1].text == "."
                && next(1) == Some("(");
            let is_panic_macro =
                matches!(t, "panic" | "todo" | "unimplemented") && next(1) == Some("!");
            if is_method_unwrap || is_panic_macro {
                out.push(err(
                    LintCode::PanicInLib,
                    line,
                    format!(
                        "`{t}` in library code; report failures through typed errors \
                         (backstop to the clippy unwrap/expect deny)"
                    ),
                ));
            }
        }

        // P001: raw file writes in sbm-journal outside the snapshot
        // helper, which owns the tmp+rename+fsync discipline.
        if path.starts_with("crates/journal/src/")
            && path != "crates/journal/src/snapshot.rs"
            && !scan.in_use[i]
        {
            let is_raw_write = (t == "File" && next(1) == Some("::") && next(2) == Some("create"))
                || (t == "fs" && next(1) == Some("::") && next(2) == Some("write"))
                || (t == "OpenOptions" && next(1) == Some("::"));
            if is_raw_write {
                out.push(err(
                    LintCode::RawFileWrite,
                    line,
                    format!(
                        "raw file write (`{t}`) in sbm-journal outside the snapshot \
                         helper; crash-safe paths must go through tmp+rename+fsync \
                         (`snapshot::save`) or carry their own documented fsync \
                         discipline"
                    ),
                ));
            }
        }
    }

    out
}

/// Collects identifiers bound (locals, params, struct fields) to a
/// `HashMap`/`HashSet` type *visible in this file*: `name: HashMap<..`,
/// `name: &mut HashSet<..`, or `name = HashMap::new()`-style
/// initializers. An under-approximation by design — cross-file inference
/// needs a type checker — but it covers the workspace idiom.
fn hash_typed_idents(toks: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        let t = toks[i].text.as_str();
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        // Walk back over `std :: collections ::` path prefixes and the
        // type sigil to find `name :` or `name =`.
        let mut j = i;
        while j >= 2 && toks[j - 1].text == "::" {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        let mut k = j - 1; // token before the path head
        while k > 0 && matches!(toks[k].text.as_str(), "&" | "mut") {
            k -= 1;
        }
        let sep = toks[k].text.as_str();
        if (sep == ":" || sep == "=") && k > 0 {
            let cand = toks[k - 1].text.as_str();
            let is_ident = cand
                .as_bytes()
                .first()
                .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_');
            if is_ident && !names.iter().any(|n| n == cand) {
                names.push(cand.to_string());
            }
        }
    }
    names
}

/// If an iteration over a hash-bound identifier starts at token `i`,
/// returns `(name, method)`.
fn hash_iteration_at(toks: &[Token], i: usize, bound: &[String]) -> Option<(String, String)> {
    let t = toks[i].text.as_str();
    // `name.iter()` / `name.keys()` / ... (also `self.name.iter()` —
    // the pattern is anchored on `name`, whatever precedes it).
    if bound.iter().any(|n| n == t)
        && toks.get(i + 1).map(|t| t.text.as_str()) == Some(".")
        && toks
            .get(i + 2)
            .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
        && toks.get(i + 3).map(|t| t.text.as_str()) == Some("(")
    {
        return Some((t.to_string(), toks[i + 2].text.clone()));
    }
    // `for x in &name {` / `for x in name {` (IntoIterator sugar).
    if t == "in" {
        let mut j = i + 1;
        while toks
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), "&" | "mut"))
        {
            j += 1;
        }
        if let Some(name) = toks.get(j) {
            if bound.iter().any(|n| n == &name.text)
                && toks.get(j + 1).map(|t| t.text.as_str()) == Some("{")
            {
                return Some((name.text.clone(), "for-in".to_string()));
            }
        }
    }
    // `dst.extend(name)` — iterates `name` in hash order.
    if t == "extend" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
        let mut j = i + 2;
        while toks
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), "&" | "mut"))
        {
            j += 1;
        }
        if let Some(name) = toks.get(j) {
            if bound.iter().any(|n| n == &name.text)
                && toks.get(j + 1).map(|t| t.text.as_str()) == Some(")")
            {
                return Some((name.text.clone(), "extend".to_string()));
            }
        }
    }
    None
}

/// Heuristic for "sorted or order-insensitive": scans the rest of the
/// statement (and a 4-line grace window after it, for the
/// collect-then-sort idiom) for a `sort*` call, a `BTreeMap`/`BTreeSet`
/// destination, or an order-insensitive consumer in the same chain.
fn iteration_is_ordered(toks: &[Token], start: usize) -> bool {
    let mut depth: i32 = 0;
    let mut end = start;
    let mut stmt_tokens: Vec<&str> = Vec::new();
    for (j, t) in toks.iter().enumerate().skip(start) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth <= 0 => {
                end = j;
                break;
            }
            _ => {}
        }
        stmt_tokens.push(t.text.as_str());
        end = j;
        if j - start > 120 {
            break;
        }
    }
    if stmt_tokens.iter().any(|t| {
        t.starts_with("sort")
            || *t == "BTreeMap"
            || *t == "BTreeSet"
            || ORDER_INSENSITIVE.contains(t)
    }) {
        return true;
    }
    // Grace window: the binding this statement produced may be sorted on
    // one of the next few lines (`let mut v: Vec<_> = m.iter().collect();
    // v.sort();`).
    let stmt_end_line = toks[end].line;
    toks.iter()
        .skip(end)
        .take_while(|t| t.line <= stmt_end_line + 4)
        .any(|t| t.text.starts_with("sort"))
}

/// Lints one `Cargo.toml` (rule A002): every dependency must be an
/// internal `path`/`workspace` reference — the workspace is
/// zero-dependency by policy, and a new external crate is a supply-chain
/// and reproducibility decision that must be taken explicitly.
pub fn check_cargo_toml(path: &str, text: &str) -> Vec<LintError> {
    let mut out = Vec::new();
    let mut directives: Vec<(u32, String, String)> = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim();
        if let Some(comment) = line.split('#').nth(1) {
            if let Some(d) = crate::scan::parse_directive(comment, line_no) {
                directives.push((d.line, d.code, d.reason));
            }
        }
        let code_part = line.split('#').next().unwrap_or("").trim();
        if code_part.starts_with('[') {
            let section = code_part.trim_matches(['[', ']']);
            in_dep_section = section == "dependencies"
                || section == "dev-dependencies"
                || section == "build-dependencies"
                || section == "workspace.dependencies"
                || (section.starts_with("target.") && section.ends_with("dependencies"));
            continue;
        }
        if !in_dep_section || code_part.is_empty() {
            continue;
        }
        if let Some((name, spec)) = code_part.split_once('=') {
            let name = name.trim().trim_matches('"');
            let spec = spec.trim();
            // Internal references come as `{ workspace = true }`,
            // `{ path = ".." }` or the dotted form `name.workspace = true`.
            let internal = spec.contains("workspace = true")
                || spec.contains("path =")
                || spec.contains("path=")
                || name.ends_with(".workspace");
            let name = name.trim_end_matches(".workspace");
            if !internal {
                let suppressed = directives
                    .iter()
                    .any(|(l, code, _)| code == "A002" && (*l == line_no || *l + 1 == line_no));
                if !suppressed {
                    out.push(LintError {
                        code: LintCode::NewDependency,
                        file: path.to_string(),
                        line: line_no,
                        detail: format!(
                            "external dependency `{name}` — the workspace is \
                             zero-dependency by policy; vendor an API-compatible shim \
                             under crates/ or gate the feature"
                        ),
                    });
                }
            }
        }
    }
    // Reason / usage hygiene for TOML-side suppressions.
    for (line, code, reason) in &directives {
        if code == "A002" && reason.is_empty() {
            out.push(LintError {
                code: LintCode::SuppressionNoReason,
                file: path.to_string(),
                line: *line,
                detail: "suppression must carry a reason after the closing parenthesis".to_string(),
            });
        }
    }
    out
}
