// A CLI driver, not library code: aborting with a message is the intended
// error path, so the workspace unwrap/expect denial is relaxed here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! `sbm-lint` — walk the workspace, enforce the determinism /
//! concurrency / API-hygiene / durability invariants, exit nonzero on
//! any violation.
//!
//! Usage: `sbm-lint [WORKSPACE_ROOT]` (default: the workspace containing
//! this crate). `ci.sh` runs it in both quick and full modes.
//!
//! Exit codes follow the workspace convention (`sbm_metrics::exit`):
//! 0 clean, 1 violations found, 2 usage (no workspace at the given
//! root), 3 runtime (walk failed mid-scan).

use std::path::PathBuf;
use std::process::ExitCode;

fn code(c: i32) -> ExitCode {
    ExitCode::from(u8::try_from(c).unwrap_or(1))
}

fn default_root() -> PathBuf {
    // Under `cargo run` the manifest dir is crates/lint; the workspace
    // root is two levels up. Fall back to the current directory.
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(default_root, PathBuf::from);
    if !root.join("Cargo.toml").is_file() {
        eprintln!("sbm-lint: no Cargo.toml under {}", root.display());
        return code(sbm_metrics::exit::USAGE);
    }
    let errors = match sbm_lint::lint_workspace(&root) {
        Ok(errors) => errors,
        Err(e) => {
            eprintln!("sbm-lint: walk failed: {e}");
            return code(sbm_metrics::exit::RUNTIME);
        }
    };
    let files = sbm_lint::count_workspace_files(&root).unwrap_or(0);
    if errors.is_empty() {
        println!("sbm-lint: clean ({files} files scanned)");
        return ExitCode::SUCCESS;
    }
    for e in &errors {
        println!("{e}");
    }
    println!(
        "sbm-lint: {} violation(s) in {files} scanned files \
         (suppress a sound site with `// sbm-lint: allow(CODE) reason`)",
        errors.len()
    );
    code(sbm_metrics::exit::VALIDATION)
}
