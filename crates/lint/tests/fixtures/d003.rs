// Seeded D003: floating point in a counter/report path.

pub struct Report {
    pub mean: f64,
}
