// Seeded C001: raw thread fan-out outside the pipeline executor.

pub fn fan_out() -> u32 {
    let h = std::thread::spawn(|| 1u32);
    h.join().unwrap_or(0)
}
