// Seeded C003: unsynchronized global state.

pub static mut COUNTER: u32 = 0;
