// Seeded C004: tally drained outside the discipline boundary.

pub fn peek() -> u64 {
    let (props, confls) = drain_sat_tally();
    props + confls
}
