// Seeded A003: panics in library code.

pub fn read(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    if *first == 0 {
        panic!("zero");
    }
    *first
}
