// Seeded D002: raw time sources outside the Timer layer.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t = Instant::now();
    let _ = SystemTime::now();
    t.elapsed().as_micros()
}
