// Seeded D001: unsorted iteration over a HashMap in a result-affecting crate.
use std::collections::HashMap;

pub fn first_key(m: &HashMap<u32, u32>) -> Option<u32> {
    let counts: HashMap<u32, u32> = m.clone();
    counts.iter().map(|(&k, _)| k).next()
}
