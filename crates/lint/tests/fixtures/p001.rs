// Seeded P001: raw file write in the journal crate.

pub fn write_report(path: &std::path::Path, data: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, data)
}
