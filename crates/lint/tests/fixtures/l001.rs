// Seeded L001: a suppression that suppresses but gives no reason.

pub fn stamp() -> std::time::Instant {
    // sbm-lint: allow(D002)
    std::time::Instant::now()
}
