// Seeded L002: a suppression that matches no violation.

pub fn id(x: u32) -> u32 {
    // sbm-lint: allow(C002) no mutex here at all
    x
}
