// Seeded A001: resurrecting a removed deprecated shim.

pub struct OptContext {
    pub num_threads: usize,
}
