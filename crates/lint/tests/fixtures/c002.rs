// Seeded C002: raw shared-state primitive outside the pipeline executor.
use std::sync::Mutex;

pub struct Shared {
    pub inner: Mutex<u32>,
}
