//! The fixture corpus: one seeded-violation file per rule code, each
//! asserted down to the exact `(code, line)`, plus the clean-workspace
//! gate and suppression round-trips.
//!
//! Fixtures live under `tests/fixtures/` (a path every rule skips when
//! walking the real workspace) and are linted here under *synthetic*
//! workspace-relative paths, which is what scopes each rule.

use std::path::Path;

use sbm_lint::{lint_cargo_toml, lint_rust_source, LintCode, LintError};

/// Lints fixture text under a synthetic path and returns `(code, line)`
/// pairs in reported order.
fn fire(path: &str, src: &str) -> Vec<(LintCode, u32)> {
    lint_rust_source(path, src)
        .iter()
        .map(|e| (e.code, e.line))
        .collect()
}

fn assert_files(errors: &[LintError], path: &str) {
    for e in errors {
        assert_eq!(e.file, path, "diagnostic carries the linted path");
    }
}

#[test]
fn d001_unordered_hash_iteration() {
    let src = include_str!("fixtures/d001.rs");
    let path = "crates/aig/src/fixture.rs";
    let errors = lint_rust_source(path, src);
    assert_files(&errors, path);
    assert_eq!(fire(path, src), vec![(LintCode::UnorderedHashIter, 6)]);
}

#[test]
fn d001_is_scoped_to_result_affecting_crates() {
    // The same pattern in a crate that never touches results is fine.
    let src = include_str!("fixtures/d001.rs");
    assert_eq!(fire("crates/epfl/src/fixture.rs", src), vec![]);
}

#[test]
fn d002_raw_time_sources() {
    let src = include_str!("fixtures/d002.rs");
    assert_eq!(
        fire("crates/core/src/fixture.rs", src),
        vec![(LintCode::RawInstant, 5), (LintCode::RawInstant, 6)]
    );
    // The Timer layer itself is the one sanctioned clock owner.
    assert_eq!(fire("crates/metrics/src/fixture.rs", src), vec![]);
}

#[test]
fn d003_float_in_counter_paths() {
    let src = include_str!("fixtures/d003.rs");
    assert_eq!(
        fire("crates/metrics/src/fixture.rs", src),
        vec![(LintCode::FloatInCounters, 4)]
    );
    assert_eq!(
        fire("crates/sat/src/tally.rs", src),
        vec![(LintCode::FloatInCounters, 4)]
    );
    // Outside counter/report paths floats are unrestricted.
    assert_eq!(fire("crates/asic/src/fixture.rs", src), vec![]);
}

#[test]
fn c001_raw_thread_fan_out() {
    let src = include_str!("fixtures/c001.rs");
    assert_eq!(
        fire("crates/core/src/fixture.rs", src),
        vec![(LintCode::RawThread, 4)]
    );
    // The pipeline executor, the server worker pool and the loadgen
    // client fan-out are the sanctioned thread owners.
    assert_eq!(fire("crates/core/src/pipeline.rs", src), vec![]);
    assert_eq!(fire("crates/server/src/exec.rs", src), vec![]);
    assert_eq!(fire("crates/server/src/bin/loadgen.rs", src), vec![]);
}

#[test]
fn c002_raw_mutex() {
    let src = include_str!("fixtures/c002.rs");
    assert_eq!(
        fire("crates/sop/src/fixture.rs", src),
        vec![(LintCode::RawMutex, 5)]
    );
    assert_eq!(fire("crates/core/src/pipeline.rs", src), vec![]);
    assert_eq!(fire("crates/server/src/exec.rs", src), vec![]);
    // Other server modules stay under the rule: protocol/store/job code
    // must not grow its own locking.
    assert_eq!(
        fire("crates/server/src/store.rs", src),
        vec![(LintCode::RawMutex, 5)]
    );
}

#[test]
fn c003_static_mut() {
    let src = include_str!("fixtures/c003.rs");
    assert_eq!(
        fire("crates/bdd/src/fixture.rs", src),
        vec![(LintCode::StaticMut, 3)]
    );
}

#[test]
fn c004_tally_bypass() {
    let src = include_str!("fixtures/c004.rs");
    assert_eq!(
        fire("crates/journal/src/fixture.rs", src),
        vec![(LintCode::TallyBypass, 4)]
    );
    // The discipline files are the sanctioned drain sites; the server's
    // executor is one (each worker job is a serial boundary).
    assert_eq!(fire("crates/sat/src/tally.rs", src), vec![]);
    assert_eq!(fire("crates/server/src/exec.rs", src), vec![]);
}

#[test]
fn a001_removed_shim_resurrection() {
    let src = include_str!("fixtures/a001.rs");
    assert_eq!(
        fire("crates/core/src/fixture.rs", src),
        vec![(LintCode::DeprecatedShim, 3)]
    );
}

#[test]
fn a002_external_dependency() {
    let toml = include_str!("fixtures/a002.toml");
    let path = "crates/fixture/Cargo.toml";
    let errors = lint_cargo_toml(path, toml);
    assert_files(&errors, path);
    let fired: Vec<(LintCode, u32)> = errors.iter().map(|e| (e.code, e.line)).collect();
    // `rand` on line 7 is external; the dotted workspace dep on line 6
    // is internal and must not fire.
    assert_eq!(fired, vec![(LintCode::NewDependency, 7)]);
    assert!(errors[0].detail.contains("`rand`"), "names the dependency");
}

#[test]
fn a002_suppressible_with_reason() {
    let toml = "[dependencies]\n\
                # sbm-lint: allow(A002) vendored upstream pin for interop testing\n\
                rand = \"0.8\"\n";
    assert_eq!(lint_cargo_toml("crates/x/Cargo.toml", toml), vec![]);
    let bare = "[dependencies]\n\
                # sbm-lint: allow(A002)\n\
                rand = \"0.8\"\n";
    let fired: Vec<LintCode> = lint_cargo_toml("crates/x/Cargo.toml", bare)
        .iter()
        .map(|e| e.code)
        .collect();
    assert_eq!(fired, vec![LintCode::SuppressionNoReason]);
}

#[test]
fn a003_panic_in_library_code() {
    let src = include_str!("fixtures/a003.rs");
    assert_eq!(
        fire("crates/sop/src/fixture.rs", src),
        vec![(LintCode::PanicInLib, 4), (LintCode::PanicInLib, 6)]
    );
    // CLI drivers abort by design.
    assert_eq!(fire("crates/bench/src/bin/fixture.rs", src), vec![]);
}

#[test]
fn p001_raw_file_write_in_journal() {
    let src = include_str!("fixtures/p001.rs");
    assert_eq!(
        fire("crates/journal/src/fixture.rs", src),
        vec![(LintCode::RawFileWrite, 4)]
    );
    // The snapshot helper owns the tmp+rename+fsync discipline.
    assert_eq!(fire("crates/journal/src/snapshot.rs", src), vec![]);
    // Other crates' file IO is out of scope for P001.
    assert_eq!(fire("crates/bench/src/fixture.rs", src), vec![]);
}

#[test]
fn l001_suppression_without_reason() {
    let src = include_str!("fixtures/l001.rs");
    // The D002 on line 5 is suppressed (so it does not fire), but the
    // reason-less directive on line 4 is itself a violation.
    assert_eq!(
        fire("crates/core/src/fixture.rs", src),
        vec![(LintCode::SuppressionNoReason, 4)]
    );
}

#[test]
fn l002_unused_suppression() {
    let src = include_str!("fixtures/l002.rs");
    assert_eq!(
        fire("crates/core/src/fixture.rs", src),
        vec![(LintCode::UnusedSuppression, 4)]
    );
}

#[test]
fn suppression_round_trip() {
    // A real violation, allowed with a reason: both the violation and
    // the directive hygiene diagnostics vanish.
    let src = "pub fn stamp() -> std::time::Instant {\n\
               \x20   // sbm-lint: allow(D002) interop with an std API that wants an Instant\n\
               \x20   std::time::Instant::now()\n\
               }\n";
    assert_eq!(fire("crates/core/src/fixture.rs", src), vec![]);

    // Same-line form.
    let same_line = "pub fn go() {\n\
                     \x20   let _ = std::time::Instant::now(); // sbm-lint: allow(D002) one-shot probe for a doc example\n\
                     }\n";
    assert_eq!(fire("crates/core/src/fixture.rs", same_line), vec![]);

    // File-wide form.
    let file_wide = "// sbm-lint: allow-file(D002) this module wraps the raw clock\n\
                     pub fn a() -> std::time::Instant {\n\
                     \x20   std::time::Instant::now()\n\
                     }\n\
                     pub fn b() -> std::time::Instant {\n\
                     \x20   std::time::Instant::now()\n\
                     }\n";
    assert_eq!(fire("crates/core/src/fixture.rs", file_wide), vec![]);

    // Without the directive, the same sources fire.
    let bare = "pub fn stamp() -> std::time::Instant {\n\
                \x20   std::time::Instant::now()\n\
                }\n";
    assert_eq!(
        fire("crates/core/src/fixture.rs", bare),
        vec![(LintCode::RawInstant, 2)]
    );
}

#[test]
fn unknown_code_in_directive_is_rejected() {
    let src = "pub fn id(x: u32) -> u32 {\n\
               \x20   // sbm-lint: allow(Z999) not a rule\n\
               \x20   x\n\
               }\n";
    assert_eq!(
        fire("crates/core/src/fixture.rs", src),
        vec![(LintCode::UnusedSuppression, 2)]
    );
}

#[test]
fn vendored_and_test_paths_are_skipped() {
    let src = include_str!("fixtures/c003.rs");
    assert_eq!(fire("crates/proptest/src/fixture.rs", src), vec![]);
    assert_eq!(fire("crates/bdd/tests/fixture.rs", src), vec![]);
    assert_eq!(fire("crates/bdd/examples/fixture.rs", src), vec![]);
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root");
    let errors = sbm_lint::lint_workspace(root).expect("workspace walk");
    assert!(
        errors.is_empty(),
        "sbm-lint must be clean on the workspace:\n{}",
        errors
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_code_has_fixture_coverage() {
    // The corpus above seeds each code at least once; this test is the
    // tripwire that a future rule lands with a fixture.
    let seeded = [
        LintCode::UnorderedHashIter,
        LintCode::RawInstant,
        LintCode::FloatInCounters,
        LintCode::RawThread,
        LintCode::RawMutex,
        LintCode::StaticMut,
        LintCode::TallyBypass,
        LintCode::DeprecatedShim,
        LintCode::NewDependency,
        LintCode::PanicInLib,
        LintCode::RawFileWrite,
        LintCode::SuppressionNoReason,
        LintCode::UnusedSuppression,
    ];
    assert_eq!(seeded.len(), sbm_lint::ALL_CODES.len());
    for code in sbm_lint::ALL_CODES {
        assert!(seeded.contains(&code), "{code} has no fixture");
    }
}
