//! Asserts the workspace exit-code convention on the `sbm-lint`
//! binary: `0` clean, `1` violations found, `2` usage (no workspace at
//! the given root). See also `crates/bench/tests/exit_codes.rs` and
//! `crates/server/tests/exit_codes.rs`.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn code_of(root: &Path) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_sbm-lint"))
        .arg(root)
        .output()
        .expect("spawn sbm-lint")
        .status
        .code()
        .expect("exit code")
}

/// Builds a throwaway one-crate workspace whose single source file is
/// `src_text`, placed under a result-affecting crate path so every rule
/// applies to it.
fn scratch_workspace(tag: &str, src_text: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("sbm-lint-exit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let src = root.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(src.join("lib.rs"), src_text).expect("write source");
    root
}

#[test]
fn lint_exit_codes_follow_the_workspace_convention() {
    // 0 — a clean tree.
    let clean = scratch_workspace("clean", "pub fn nothing_wrong_here() {}\n");
    assert_eq!(code_of(&clean), sbm_metrics::exit::OK);

    // 1 — a violation (raw Instant in a determinism-scoped crate).
    let dirty = scratch_workspace(
        "dirty",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    assert_eq!(code_of(&dirty), sbm_metrics::exit::VALIDATION);

    // 2 — not a workspace root.
    let empty = std::env::temp_dir().join(format!("sbm-lint-exit-empty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&empty);
    std::fs::create_dir_all(&empty).expect("mkdir");
    assert_eq!(code_of(&empty), sbm_metrics::exit::USAGE);

    for dir in [clean, dirty, empty] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
