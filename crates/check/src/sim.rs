//! Cheap functional spot-check: 64 random patterns through two AIGs.

use sbm_aig::sim::Signatures;
use sbm_aig::Aig;

use crate::{CheckCode, CheckError};

/// Simulates `a` and `b` under the same 64 random input patterns
/// (derived from `seed`) and reports the first output where they
/// disagree.
///
/// This is a *necessary* condition for equivalence, not a proof — a
/// mismatch is a certain miscompile, agreement is only evidence. The
/// checked pipeline runs it at every [`CheckLevel`](crate::CheckLevel)
/// at or above `Boundaries` because it costs one linear sweep per
/// network, roughly as much as a cleanup.
///
/// Both graphs must already satisfy [`check_aig`](crate::check_aig);
/// the caller is expected to validate them first (a corrupted graph can
/// make simulation loop or panic).
///
/// # Errors
///
/// [`CheckCode::SimInterfaceMismatch`] if the input/output counts
/// differ, [`CheckCode::SimMismatch`] naming the first differing output
/// otherwise.
pub fn sim_spot_check(a: &Aig, b: &Aig, seed: u64) -> Result<(), CheckError> {
    if a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs() {
        return Err(CheckError::global(
            CheckCode::SimInterfaceMismatch,
            format!(
                "{}→{} vs {}→{} inputs/outputs",
                a.num_inputs(),
                a.num_outputs(),
                b.num_inputs(),
                b.num_outputs()
            ),
        ));
    }
    // Identical seed + identical input count ⇒ both networks see the
    // exact same 64 patterns.
    let sig_a = Signatures::random(a, 1, seed);
    let sig_b = Signatures::random(b, 1, seed);
    for (i, (la, lb)) in a.outputs().into_iter().zip(b.outputs()).enumerate() {
        let wa = sig_a.lit_word(la, 0);
        let wb = sig_b.lit_word(lb, 0);
        if wa != wb {
            return Err(CheckError::global(
                CheckCode::SimMismatch,
                format!(
                    "output {i} differs on {} of 64 patterns (first at bit {})",
                    (wa ^ wb).count_ones(),
                    (wa ^ wb).trailing_zeros()
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.maj3(a, b, c);
        let x = aig.xor(a, b);
        aig.add_output(m);
        aig.add_output(!x);
        aig
    }

    #[test]
    fn equivalent_networks_pass() {
        let aig = sample();
        sim_spot_check(&aig, &aig, 0xC0FFEE).unwrap();
        sim_spot_check(&aig, &aig.cleanup(), 0xC0FFEE).unwrap();
        // A structurally different but equivalent form: maj3 via mux.
        let mut other = Aig::new();
        let a = other.add_input();
        let b = other.add_input();
        let c = other.add_input();
        let or_bc = other.or(b, c);
        let and_bc = other.and(b, c);
        let m = other.mux(a, or_bc, and_bc);
        let x = other.xor(a, b);
        other.add_output(m);
        other.add_output(!x);
        sim_spot_check(&sample(), &other, 1).unwrap();
    }

    #[test]
    fn detects_interface_mismatch() {
        let aig = sample();
        let mut narrower = sample();
        let extra = narrower.input_lit(0);
        narrower.add_output(extra);
        let err = sim_spot_check(&aig, &narrower, 7).unwrap_err();
        assert_eq!(err.code, CheckCode::SimInterfaceMismatch);
    }

    #[test]
    fn detects_functional_mismatch() {
        let aig = sample();
        let mut wrong = sample();
        // Flip the second output's phase: a guaranteed mismatch.
        let outs = wrong.outputs();
        wrong.set_output(1, !outs[1]);
        let err = sim_spot_check(&aig, &wrong, 7).unwrap_err();
        assert_eq!(err.code, CheckCode::SimMismatch);
        assert_eq!(err.code.as_str(), "sim-mismatch");
    }
}
