//! ROBDD invariants: variable order, reduction and unique-table
//! consistency.

use sbm_bdd::{Bdd, BddManager};

use crate::{CheckCode, CheckError};

/// Validates every structural invariant of a [`BddManager`].
///
/// Canonicity of the ROBDD representation — handle equality iff
/// functional equality, which the Boolean-difference engine relies on —
/// rests on three properties, all checked here:
///
/// 1. **Well-formed nodes**: every decision node's variable lies below
///    `num_vars` ([`CheckCode::BddVarOutOfRange`]) and both children
///    point at allocated nodes ([`CheckCode::BddDanglingEdge`]).
/// 2. **Ordered and reduced**: a child's variable is strictly greater
///    than its parent's ([`CheckCode::BddVariableOrder`]) and no node
///    has equal children ([`CheckCode::BddNotReduced`]).
/// 3. **Unique-table consistency**: every table entry points at an
///    allocated decision node ([`CheckCode::BddStaleUniqueEntry`], the
///    signature of a reset that forgot to clear the table) whose triple
///    matches the key ([`CheckCode::BddUniqueMismatch`]), and every
///    decision node is present in the table — otherwise a duplicate
///    could be interned ([`CheckCode::BddMissingUniqueEntry`]).
///
/// Returns the first violation found.
///
/// # Errors
///
/// The violated invariant as a [`CheckError`], per the list above.
pub fn check_bdd(mgr: &BddManager) -> Result<(), CheckError> {
    // Handles 0 and 1 are the terminals; decision nodes start at raw
    // index 2.
    let total = mgr.num_nodes() + 2;
    for i in 2..total {
        let handle = Bdd::from_raw_index(i);
        let Some((var, lo, hi)) = mgr.node_triple(handle) else {
            continue;
        };
        if var >= mgr.num_vars() {
            return Err(CheckError::at(
                CheckCode::BddVarOutOfRange,
                i as u64,
                format!(
                    "variable {var} but the manager has {} variables",
                    mgr.num_vars()
                ),
            ));
        }
        for child in [lo, hi] {
            if child.index() >= total {
                return Err(CheckError::at(
                    CheckCode::BddDanglingEdge,
                    i as u64,
                    format!(
                        "child handle {} but only {total} nodes are allocated",
                        child.index()
                    ),
                ));
            }
        }
        if lo == hi {
            return Err(CheckError::at(
                CheckCode::BddNotReduced,
                i as u64,
                format!(
                    "both children are handle {} — node is redundant",
                    lo.index()
                ),
            ));
        }
        for child in [lo, hi] {
            if let Some((child_var, _, _)) = mgr.node_triple(child) {
                if child_var <= var {
                    return Err(CheckError::at(
                        CheckCode::BddVariableOrder,
                        i as u64,
                        format!(
                            "child {} carries variable {child_var}, not below parent variable {var}",
                            child.index()
                        ),
                    ));
                }
            }
        }
    }
    for ((var, lo, hi), handle) in mgr.unique_entries() {
        if handle.is_const() || handle.index() >= total {
            return Err(CheckError::at(
                CheckCode::BddStaleUniqueEntry,
                handle.index() as u64,
                format!(
                    "unique entry ({var}, {}, {}) points at no decision node",
                    lo.index(),
                    hi.index()
                ),
            ));
        }
        if mgr.node_triple(handle) != Some((var, lo, hi)) {
            return Err(CheckError::at(
                CheckCode::BddUniqueMismatch,
                handle.index() as u64,
                format!(
                    "unique entry ({var}, {}, {}) disagrees with the node it interns",
                    lo.index(),
                    hi.index()
                ),
            ));
        }
    }
    // Every decision node accounted for: with all entries validated
    // distinct-by-construction (HashMap keys) and pointing at matching
    // nodes, a size mismatch means some node is missing from the table.
    if mgr.unique_len() != mgr.num_nodes() {
        return Err(CheckError::global(
            CheckCode::BddMissingUniqueEntry,
            format!(
                "{} decision nodes but {} unique-table entries",
                mgr.num_nodes(),
                mgr.unique_len()
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A manager holding maj3(x0, x1, x2) — several shared nodes.
    fn sample() -> (BddManager, Bdd) {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b).unwrap();
        let ac = mgr.and(a, c).unwrap();
        let bc = mgr.and(b, c).unwrap();
        let t = mgr.or(ab, ac).unwrap();
        let maj = mgr.or(t, bc).unwrap();
        (mgr, maj)
    }

    #[test]
    fn valid_manager_passes() {
        let (mgr, _) = sample();
        check_bdd(&mgr).unwrap();
        check_bdd(&BddManager::new(0)).unwrap();
    }

    #[test]
    fn valid_after_reset() {
        let (mut mgr, _) = sample();
        mgr.reset(5, 1000);
        check_bdd(&mgr).unwrap();
        let x = mgr.var(4);
        let y = mgr.var(0);
        mgr.xor(x, y).unwrap();
        check_bdd(&mgr).unwrap();
    }

    #[test]
    fn detects_unreduced_node() {
        let (mut mgr, f) = sample();
        mgr.corrupt_push_raw_node(0, f, f);
        let err = check_bdd(&mgr).unwrap_err();
        assert_eq!(err.code, CheckCode::BddNotReduced);
        assert_eq!(err.code.as_str(), "bdd-not-reduced");
    }

    #[test]
    fn detects_variable_order_violation() {
        let (mut mgr, _) = sample();
        let deep = mgr.var(2);
        // A node on variable 2 whose child is another variable-2 node
        // (equal, not strictly below).
        let child = mgr.corrupt_push_raw_node(2, Bdd::ONE, Bdd::ZERO);
        mgr.corrupt_push_raw_node(2, deep, child);
        let err = check_bdd(&mgr).unwrap_err();
        assert_eq!(err.code, CheckCode::BddVariableOrder);
    }

    #[test]
    fn detects_dangling_edge() {
        let (mut mgr, _) = sample();
        mgr.corrupt_push_raw_node(0, Bdd::from_raw_index(999), Bdd::ONE);
        let err = check_bdd(&mgr).unwrap_err();
        assert_eq!(err.code, CheckCode::BddDanglingEdge);
    }

    #[test]
    fn detects_var_out_of_range() {
        let (mut mgr, _) = sample();
        mgr.corrupt_push_raw_node(77, Bdd::ZERO, Bdd::ONE);
        let err = check_bdd(&mgr).unwrap_err();
        assert_eq!(err.code, CheckCode::BddVarOutOfRange);
    }

    #[test]
    fn detects_stale_unique_entry() {
        let (mut mgr, _) = sample();
        // The signature of an incomplete reset: an entry pointing past
        // the truncated node vector.
        mgr.corrupt_insert_unique(1, Bdd::ZERO, Bdd::ONE, Bdd::from_raw_index(500));
        let err = check_bdd(&mgr).unwrap_err();
        assert_eq!(err.code, CheckCode::BddStaleUniqueEntry);
        assert_eq!(err.code.as_str(), "bdd-stale-unique-entry");
    }

    #[test]
    fn detects_unique_mismatch() {
        let (mut mgr, f) = sample();
        assert!(!f.is_const());
        // Key says (2, ZERO, ONE) but the handle's real triple differs.
        mgr.corrupt_insert_unique(2, Bdd::ZERO, Bdd::ONE, f);
        let err = check_bdd(&mgr).unwrap_err();
        assert!(
            matches!(
                err.code,
                CheckCode::BddUniqueMismatch | CheckCode::BddMissingUniqueEntry
            ),
            "got {}",
            err.code
        );
    }

    #[test]
    fn detects_missing_unique_entry() {
        // `reset` keeps allocations; simulate a manager that lost a
        // table entry by inserting one fewer entry than nodes. The
        // cheapest seeding: push a raw node twice with the same triple —
        // the second insert overwrites the first's table slot, leaving
        // one node unaccounted for (and a mismatch for the first).
        let (mut mgr, _) = sample();
        let n1 = mgr.corrupt_push_raw_node(1, Bdd::ZERO, Bdd::ONE);
        let _n2 = mgr.corrupt_push_raw_node(1, Bdd::ZERO, Bdd::ONE);
        // The surviving entry points at n2; n1's triple still matches the
        // key, so the walk reports the *count* mismatch unless it hits
        // the overwritten entry first.
        let err = check_bdd(&mgr).unwrap_err();
        assert!(
            matches!(
                err.code,
                CheckCode::BddMissingUniqueEntry | CheckCode::BddUniqueMismatch
            ),
            "got {} for node {n1:?}",
            err.code
        );
    }
}
