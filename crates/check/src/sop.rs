//! SOP invariants: cube canonicity, single-cube containment, support
//! bounds and network acyclicity.

use std::collections::HashMap;

use sbm_sop::{Cover, Cube, SopNetwork};

use crate::{CheckCode, CheckError};

/// Validates the canonical form of a single [`Cube`]: literals sorted
/// strictly ascending ([`CheckCode::SopCubeUnsorted`]) over distinct
/// signals ([`CheckCode::SopContradictoryCube`]).
///
/// # Errors
///
/// The violated invariant as a [`CheckError`] (no node attached — the
/// cube does not know its position; [`check_cover`] adds the index).
pub fn check_cube(cube: &Cube) -> Result<(), CheckError> {
    for w in cube.lits().windows(2) {
        if w[0].signal() == w[1].signal() {
            if w[0] != w[1] {
                return Err(CheckError::global(
                    CheckCode::SopContradictoryCube,
                    format!(
                        "cube {cube} mentions signal {} in both phases",
                        w[0].signal()
                    ),
                ));
            }
            return Err(CheckError::global(
                CheckCode::SopCubeUnsorted,
                format!("cube {cube} repeats literal {}", w[0]),
            ));
        }
        if w[0] > w[1] {
            return Err(CheckError::global(
                CheckCode::SopCubeUnsorted,
                format!("cube {cube} has {} before {}", w[0], w[1]),
            ));
        }
    }
    Ok(())
}

/// Validates a [`Cover`]: every cube canonical (see [`check_cube`]),
/// every mentioned signal below `num_signals` when a bound is given
/// ([`CheckCode::SopSupportOutOfRange`]), and no cube absorbed by
/// another ([`CheckCode::SopAbsorbedCube`]) — the single-cube
/// containment minimality that [`Cover::from_cubes`] establishes.
///
/// The attached node of each error is the cube's index within the cover.
///
/// # Errors
///
/// The violated invariant as a [`CheckError`], per the list above.
pub fn check_cover(cover: &Cover, num_signals: Option<usize>) -> Result<(), CheckError> {
    let cubes = cover.cubes();
    for (i, cube) in cubes.iter().enumerate() {
        if let Err(e) = check_cube(cube) {
            return Err(CheckError::at(e.code, i as u64, e.detail));
        }
        if let Some(bound) = num_signals {
            for l in cube.lits() {
                if l.signal() as usize >= bound {
                    return Err(CheckError::at(
                        CheckCode::SopSupportOutOfRange,
                        i as u64,
                        format!("literal {l} but only {bound} signals are declared"),
                    ));
                }
            }
        }
    }
    for (i, cube) in cubes.iter().enumerate() {
        for (j, other) in cubes.iter().enumerate() {
            if i == j || !other.covers(cube) {
                continue;
            }
            // Equal cubes absorb each other; report only the later copy.
            if other == cube && j > i {
                continue;
            }
            return Err(CheckError::at(
                CheckCode::SopAbsorbedCube,
                i as u64,
                format!("cube {cube} is absorbed by cube {j} ({other})"),
            ));
        }
    }
    Ok(())
}

/// Validates a whole [`SopNetwork`]: every node cover passes
/// [`check_cover`] against the network's signal count, the node
/// dependency graph is acyclic ([`CheckCode::SopCyclicDependency`]) and
/// every output names a declared signal
/// ([`CheckCode::SopDanglingOutput`]).
///
/// Cover-level errors are re-tagged with the *signal* of the offending
/// node (the cube index moves into the detail text).
///
/// # Errors
///
/// The violated invariant as a [`CheckError`], per the list above.
pub fn check_sop(net: &SopNetwork) -> Result<(), CheckError> {
    let num_signals = net.num_signals();
    // Range-check every cover before walking dependencies: the walk
    // below looks up `net.cover(dep)`, which panics on foreign signals.
    for s in net.num_inputs()..num_signals {
        let s = s as u32;
        if let Err(e) = check_cover(net.cover(s), Some(num_signals)) {
            return Err(CheckError::at(
                e.code,
                u64::from(s),
                match e.node {
                    Some(cube) => format!("cube {cube}: {}", e.detail),
                    None => e.detail,
                },
            ));
        }
    }
    // Iterative DFS over node signals; a gray-edge hit is a dependency
    // cycle. (`SopNetwork::topo_order` would panic instead of reporting,
    // and only covers live nodes.)
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color: HashMap<u32, u8> = HashMap::new();
    for root in net.num_inputs()..num_signals {
        let root = root as u32;
        if color.get(&root).copied().unwrap_or(WHITE) != WHITE {
            continue;
        }
        let mut stack = vec![(root, false)];
        while let Some((s, expanded)) = stack.pop() {
            if expanded {
                color.insert(s, BLACK);
                continue;
            }
            if color.get(&s).copied().unwrap_or(WHITE) != WHITE {
                continue;
            }
            color.insert(s, GRAY);
            stack.push((s, true));
            for dep in net.cover(s).signals() {
                if net.is_input(dep) {
                    continue;
                }
                match color.get(&dep).copied().unwrap_or(WHITE) {
                    GRAY => {
                        return Err(CheckError::at(
                            CheckCode::SopCyclicDependency,
                            u64::from(s),
                            format!("node {s} depends on {dep}, which is on the same path"),
                        ));
                    }
                    WHITE => stack.push((dep, false)),
                    _ => {}
                }
            }
        }
    }
    for (i, l) in net.outputs().iter().enumerate() {
        if l.signal() as usize >= num_signals {
            return Err(CheckError::global(
                CheckCode::SopDanglingOutput,
                format!("output {i} is {l} but only {num_signals} signals are declared"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbm_sop::SignalLit;

    fn lit(s: u32) -> SignalLit {
        SignalLit::positive(s)
    }

    fn nlit(s: u32) -> SignalLit {
        SignalLit::negative(s)
    }

    /// x = a·b + c', y = x·a — a small valid network.
    fn sample() -> SopNetwork {
        let mut net = SopNetwork::new(3);
        let x = net.add_node(Cover::from_cubes(vec![
            Cube::from_lits(&[lit(0), lit(1)]),
            Cube::from_lits(&[nlit(2)]),
        ]));
        let y = net.add_node(Cover::from_cubes(vec![Cube::from_lits(&[lit(x), lit(0)])]));
        net.add_output(lit(y));
        net
    }

    #[test]
    fn valid_structures_pass() {
        check_cube(&Cube::one()).unwrap();
        check_cube(&Cube::from_lits(&[lit(3), nlit(1), lit(0)])).unwrap();
        check_cover(&Cover::zero(), None).unwrap();
        check_cover(&Cover::one(), Some(1)).unwrap();
        check_sop(&sample()).unwrap();
        check_sop(&sample().cleanup()).unwrap();
    }

    #[test]
    fn detects_unsorted_cube() {
        let c = Cube::from_lits_unchecked(vec![lit(2), lit(0)]);
        let err = check_cube(&c).unwrap_err();
        assert_eq!(err.code, CheckCode::SopCubeUnsorted);
        let dup = Cube::from_lits_unchecked(vec![lit(1), lit(1)]);
        assert_eq!(
            check_cube(&dup).unwrap_err().code,
            CheckCode::SopCubeUnsorted
        );
    }

    #[test]
    fn detects_contradictory_cube() {
        let c = Cube::from_lits_unchecked(vec![lit(0), nlit(0)]);
        let err = check_cube(&c).unwrap_err();
        assert_eq!(err.code, CheckCode::SopContradictoryCube);
        assert_eq!(err.code.as_str(), "sop-contradictory-cube");
    }

    #[test]
    fn detects_absorbed_cube() {
        // a·b is absorbed by a.
        let cover = Cover::from_cubes_unchecked(vec![
            Cube::from_lits(&[lit(0), lit(1)]),
            Cube::from_lits(&[lit(0)]),
        ]);
        let err = check_cover(&cover, None).unwrap_err();
        assert_eq!(err.code, CheckCode::SopAbsorbedCube);
        assert_eq!(err.code.as_str(), "sop-absorbed-cube");
        assert_eq!(err.node, Some(0), "the absorbed cube is index 0");
    }

    #[test]
    fn detects_duplicate_cube() {
        let cover = Cover::from_cubes_unchecked(vec![
            Cube::from_lits(&[lit(0)]),
            Cube::from_lits(&[lit(0)]),
        ]);
        let err = check_cover(&cover, None).unwrap_err();
        assert_eq!(err.code, CheckCode::SopAbsorbedCube);
        assert_eq!(err.node, Some(1), "only the later copy is reported");
    }

    #[test]
    fn detects_support_out_of_range() {
        let cover = Cover::from_cubes(vec![Cube::from_lits(&[lit(7)])]);
        let err = check_cover(&cover, Some(3)).unwrap_err();
        assert_eq!(err.code, CheckCode::SopSupportOutOfRange);
        // Unbounded check tolerates any signal.
        check_cover(&cover, None).unwrap();
    }

    #[test]
    fn network_check_tags_node_signal() {
        let mut net = sample();
        net.set_cover(
            3,
            Cover::from_cubes_unchecked(vec![
                Cube::from_lits(&[lit(0), lit(1)]),
                Cube::from_lits(&[lit(0)]),
            ]),
        );
        let err = check_sop(&net).unwrap_err();
        assert_eq!(err.code, CheckCode::SopAbsorbedCube);
        assert_eq!(err.node, Some(3));
    }

    #[test]
    fn detects_foreign_signal_in_network() {
        let mut net = sample();
        net.set_cover(4, Cover::from_cubes(vec![Cube::from_lits(&[lit(99)])]));
        let err = check_sop(&net).unwrap_err();
        assert_eq!(err.code, CheckCode::SopSupportOutOfRange);
    }

    #[test]
    fn detects_cyclic_dependency() {
        let mut net = sample();
        // x (signal 3) now depends on y (signal 4), which depends on x.
        net.set_cover(3, Cover::from_cubes(vec![Cube::from_lits(&[lit(4)])]));
        let err = check_sop(&net).unwrap_err();
        assert_eq!(err.code, CheckCode::SopCyclicDependency);
        assert_eq!(err.code.as_str(), "sop-cyclic-dependency");
    }

    #[test]
    fn detects_dangling_output() {
        let mut net = sample();
        net.add_output(lit(42));
        let err = check_sop(&net).unwrap_err();
        assert_eq!(err.code, CheckCode::SopDanglingOutput);
    }
}
