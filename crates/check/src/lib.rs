//! # Structural invariant checkers for the SBM representations.
//!
//! The paper's engines are only sound while the underlying data
//! structures stay canonical: the AIG must remain acyclic and
//! strash-canonical across `replace`/`cleanup`, the BDD manager reduced
//! and ordered for the Boolean-difference test (Alg. 1/2), and SOP
//! covers cube-canonical for kernel extraction (Sections III–IV). This
//! crate makes those invariants *checkable*: each representation gets a
//! validator that walks the raw structure (bypassing the resolving
//! accessors, which a corrupted structure could send into a loop) and
//! reports the first violation as a typed [`CheckError`].
//!
//! The checkers are wired into `sbm-core`'s parallel pipeline through
//! [`CheckLevel`]: `Boundaries` validates the network entering and
//! leaving a pipeline run, `Paranoid` additionally brackets every engine
//! invocation on every window with pre/post checks plus a 64-pattern
//! simulation spot-check ([`sim_spot_check`]). A violation names the
//! engine and partition that produced it — a silent miscompile becomes a
//! diagnostic.
//!
//! The [`fault`] module complements the *checkers* with deterministic
//! fault *injection*: a [`FaultPlan`] seeds panics, delays and forced
//! bailouts at engine boundaries so the pipeline's isolate-and-degrade
//! paths can be exercised and proven equivalence-preserving under test.
//!
//! # Example
//!
//! ```
//! use sbm_aig::Aig;
//! use sbm_check::{check_aig, CheckCode};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let f = aig.and(a, b);
//! aig.add_output(f);
//! assert!(check_aig(&aig).is_ok());
//!
//! // Seed a duplicate strash pair through the corruption injector.
//! aig.corrupt_push_raw_and(a, b);
//! assert_eq!(
//!     check_aig(&aig).unwrap_err().code,
//!     CheckCode::AigStrashDuplicate
//! );
//! ```

mod aig;
mod bdd;
pub mod fault;
mod sim;
mod sop;

pub use aig::check_aig;
pub use bdd::check_bdd;
pub use fault::{inject_panic, FaultKind, FaultPlan, InjectedPanic};
pub use sim::sim_spot_check;
pub use sop::{check_cover, check_cube, check_sop};

use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Machine-readable identity of a violated invariant.
///
/// Stable string codes (see [`CheckCode::as_str`]) are grouped by
/// representation: `aig-*`, `bdd-*`, `sop-*` and `sim-*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CheckCode {
    /// An AND node's fanin refers to a node beyond the allocated range.
    AigDanglingFanin,
    /// An AND node's stored fanin does not precede it (the append-only
    /// topological order is broken).
    AigFaninOrder,
    /// The replacement map contains a redirection cycle (resolution
    /// would never terminate).
    AigCyclicRedirect,
    /// The resolved fanin graph contains a combinational cycle.
    AigCombinationalCycle,
    /// Two live AND nodes share the same resolved `(a, b)` fanin pair —
    /// structural hashing has been violated.
    AigStrashDuplicate,
    /// A strash-table entry disagrees with the node it points to.
    AigStrashMismatch,
    /// An AND node violates the one-level rules applied at construction
    /// (constant, equal or complementary fanins, or an unordered pair).
    AigNotCanonical,
    /// A replacement entry redirects a constant/input, or targets a
    /// node beyond the allocated range.
    AigBadReplacement,
    /// A primary output refers to a node beyond the allocated range.
    AigDanglingOutput,
    /// A BDD edge points at a handle with no backing node.
    BddDanglingEdge,
    /// A BDD node's child carries a variable ≤ its own (the fixed
    /// variable order is broken).
    BddVariableOrder,
    /// A BDD node has equal children — the reduction rule is violated.
    BddNotReduced,
    /// A BDD node's variable is outside the manager's declared range.
    BddVarOutOfRange,
    /// A unique-table entry disagrees with the node it points to.
    BddUniqueMismatch,
    /// A unique-table entry points at a terminal or at a handle with no
    /// backing node (e.g. left behind by an incomplete reset).
    BddStaleUniqueEntry,
    /// A decision node is missing from the unique table, so a duplicate
    /// could be created — strong canonicity is no longer guaranteed.
    BddMissingUniqueEntry,
    /// A cube's literals are not sorted strictly ascending.
    SopCubeUnsorted,
    /// A cube mentions the same signal in both phases.
    SopContradictoryCube,
    /// A cover contains a cube absorbed by another cube (single-cube
    /// containment is violated).
    SopAbsorbedCube,
    /// A cover mentions a signal outside the declared signal range.
    SopSupportOutOfRange,
    /// The SOP network's node dependencies form a cycle.
    SopCyclicDependency,
    /// A network output refers to a signal outside the declared range.
    SopDanglingOutput,
    /// Two networks disagree under the 64-pattern simulation spot-check.
    SimMismatch,
    /// Two networks have different input/output counts.
    SimInterfaceMismatch,
}

impl CheckCode {
    /// The stable string code of this invariant (used in diagnostics,
    /// logs and tests).
    pub fn as_str(self) -> &'static str {
        match self {
            CheckCode::AigDanglingFanin => "aig-dangling-fanin",
            CheckCode::AigFaninOrder => "aig-fanin-order",
            CheckCode::AigCyclicRedirect => "aig-cyclic-redirect",
            CheckCode::AigCombinationalCycle => "aig-combinational-cycle",
            CheckCode::AigStrashDuplicate => "aig-strash-duplicate",
            CheckCode::AigStrashMismatch => "aig-strash-mismatch",
            CheckCode::AigNotCanonical => "aig-not-canonical",
            CheckCode::AigBadReplacement => "aig-bad-replacement",
            CheckCode::AigDanglingOutput => "aig-dangling-output",
            CheckCode::BddDanglingEdge => "bdd-dangling-edge",
            CheckCode::BddVariableOrder => "bdd-variable-order",
            CheckCode::BddNotReduced => "bdd-not-reduced",
            CheckCode::BddVarOutOfRange => "bdd-var-out-of-range",
            CheckCode::BddUniqueMismatch => "bdd-unique-mismatch",
            CheckCode::BddStaleUniqueEntry => "bdd-stale-unique-entry",
            CheckCode::BddMissingUniqueEntry => "bdd-missing-unique-entry",
            CheckCode::SopCubeUnsorted => "sop-cube-unsorted",
            CheckCode::SopContradictoryCube => "sop-contradictory-cube",
            CheckCode::SopAbsorbedCube => "sop-absorbed-cube",
            CheckCode::SopSupportOutOfRange => "sop-support-out-of-range",
            CheckCode::SopCyclicDependency => "sop-cyclic-dependency",
            CheckCode::SopDanglingOutput => "sop-dangling-output",
            CheckCode::SimMismatch => "sim-mismatch",
            CheckCode::SimInterfaceMismatch => "sim-interface-mismatch",
        }
    }
}

impl fmt::Display for CheckCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A violated invariant: the code, the offending node (where one can be
/// named) and a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Which invariant was violated.
    pub code: CheckCode,
    /// The offending node/handle/signal index, when one can be named.
    pub node: Option<u64>,
    /// Human-readable context (fanin literals, table keys, …).
    pub detail: String,
}

impl CheckError {
    /// Builds an error naming a node.
    pub fn at(code: CheckCode, node: u64, detail: impl Into<String>) -> Self {
        CheckError {
            code,
            node: Some(node),
            detail: detail.into(),
        }
    }

    /// Builds an error with no specific node.
    pub fn global(code: CheckCode, detail: impl Into<String>) -> Self {
        CheckError {
            code,
            node: None,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "[{}] node {}: {}", self.code, n, self.detail),
            None => write!(f, "[{}] {}", self.code, self.detail),
        }
    }
}

impl Error for CheckError {}

/// How aggressively the pipeline validates invariants around engine
/// invocations (see `sbm-core`'s `PipelineOptions::check_level`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum CheckLevel {
    /// No checking (the production default; zero overhead).
    #[default]
    Off,
    /// Validate the network entering and leaving a pipeline/script run,
    /// plus one end-to-end simulation spot-check. Costs one structural
    /// walk and 64 simulated patterns per run — well under 10% of any
    /// real optimization pass.
    Boundaries,
    /// [`CheckLevel::Boundaries`] plus pre/post invariant checks and a
    /// 64-pattern simulation spot-check around *every* engine invocation
    /// on *every* window. Used by the proptests; expensive.
    Paranoid,
}

impl CheckLevel {
    /// Whether this level checks run boundaries.
    pub fn at_boundaries(self) -> bool {
        self >= CheckLevel::Boundaries
    }

    /// Whether this level brackets every engine invocation.
    pub fn per_engine(self) -> bool {
        self >= CheckLevel::Paranoid
    }
}

impl fmt::Display for CheckLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckLevel::Off => "off",
            CheckLevel::Boundaries => "boundaries",
            CheckLevel::Paranoid => "paranoid",
        })
    }
}

/// Error returned when parsing a [`CheckLevel`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCheckLevelError(String);

impl fmt::Display for ParseCheckLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown check level {:?} (expected off, boundaries or paranoid)",
            self.0
        )
    }
}

impl Error for ParseCheckLevelError {}

impl FromStr for CheckLevel {
    type Err = ParseCheckLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(CheckLevel::Off),
            "boundaries" => Ok(CheckLevel::Boundaries),
            "paranoid" => Ok(CheckLevel::Paranoid),
            _ => Err(ParseCheckLevelError(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_level_ordering_and_gates() {
        assert!(CheckLevel::Off < CheckLevel::Boundaries);
        assert!(CheckLevel::Boundaries < CheckLevel::Paranoid);
        assert!(!CheckLevel::Off.at_boundaries());
        assert!(CheckLevel::Boundaries.at_boundaries());
        assert!(!CheckLevel::Boundaries.per_engine());
        assert!(CheckLevel::Paranoid.per_engine());
        assert_eq!(CheckLevel::default(), CheckLevel::Off);
    }

    #[test]
    fn check_level_parses_and_displays() {
        for (text, level) in [
            ("off", CheckLevel::Off),
            ("Boundaries", CheckLevel::Boundaries),
            ("PARANOID", CheckLevel::Paranoid),
        ] {
            assert_eq!(text.parse::<CheckLevel>(), Ok(level));
        }
        assert!("frantic".parse::<CheckLevel>().is_err());
        assert_eq!(CheckLevel::Paranoid.to_string(), "paranoid");
    }

    #[test]
    fn error_display_names_code_and_node() {
        let e = CheckError::at(CheckCode::AigDanglingFanin, 7, "fanin n9 of 8-node graph");
        let text = e.to_string();
        assert!(text.contains("aig-dangling-fanin"), "{text}");
        assert!(text.contains("node 7"), "{text}");
        let g = CheckError::global(CheckCode::SimMismatch, "output 0 differs");
        assert!(g.to_string().starts_with("[sim-mismatch]"));
    }

    #[test]
    fn codes_are_unique() {
        let all = [
            CheckCode::AigDanglingFanin,
            CheckCode::AigFaninOrder,
            CheckCode::AigCyclicRedirect,
            CheckCode::AigCombinationalCycle,
            CheckCode::AigStrashDuplicate,
            CheckCode::AigStrashMismatch,
            CheckCode::AigNotCanonical,
            CheckCode::AigBadReplacement,
            CheckCode::AigDanglingOutput,
            CheckCode::BddDanglingEdge,
            CheckCode::BddVariableOrder,
            CheckCode::BddNotReduced,
            CheckCode::BddVarOutOfRange,
            CheckCode::BddUniqueMismatch,
            CheckCode::BddStaleUniqueEntry,
            CheckCode::BddMissingUniqueEntry,
            CheckCode::SopCubeUnsorted,
            CheckCode::SopContradictoryCube,
            CheckCode::SopAbsorbedCube,
            CheckCode::SopSupportOutOfRange,
            CheckCode::SopCyclicDependency,
            CheckCode::SopDanglingOutput,
            CheckCode::SimMismatch,
            CheckCode::SimInterfaceMismatch,
        ];
        let mut codes: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }
}
