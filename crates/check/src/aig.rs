//! AIG structural invariants: acyclicity, topological order, strash
//! canonicity and one-level-rule canonicity.

use std::collections::{HashMap, HashSet};

use sbm_aig::{Aig, Lit, NodeId};

use crate::{CheckCode, CheckError};

/// Fabricates the [`NodeId`] with raw index `i` (node ids are only
/// constructed by the graph itself; the checker walks by index).
fn nid(i: usize) -> NodeId {
    Lit::from_code((i as u32) << 1).node()
}

/// Validates every structural invariant of an [`Aig`].
///
/// The checks run in dependency order — each one only relies on
/// structure already validated by its predecessors, so the checker never
/// panics or loops on a corrupted graph:
///
/// 1. **Replacement map** ([`CheckCode::AigBadReplacement`],
///    [`CheckCode::AigCyclicRedirect`]): every redirected node is an
///    allocated AND gate, every target literal is in range, and
///    redirection chains terminate. Validated first because every
///    resolving accessor (`outputs`, `fanins`, …) follows this map and
///    would spin forever on a redirect cycle.
/// 2. **Raw fanins** ([`CheckCode::AigDanglingFanin`],
///    [`CheckCode::AigFaninOrder`]): stored fanin literals point at
///    allocated nodes that strictly precede their gate — the append-only
///    topological order.
/// 3. **One-level canonicity** ([`CheckCode::AigNotCanonical`]): no
///    stored pair has a constant, equal or complementary fanins, or an
///    unordered `(a, b)` — exactly the rules [`Aig::and`] applies.
/// 4. **Resolved acyclicity** ([`CheckCode::AigCombinationalCycle`]):
///    the graph remains a DAG after redirections are resolved (raw order
///    alone cannot guarantee this — a replacement may point a low node
///    at logic built later).
/// 5. **Strash canonicity** ([`CheckCode::AigStrashMismatch`],
///    [`CheckCode::AigStrashDuplicate`]): every strash-table entry
///    agrees with the node it interns, and no two live, unredirected
///    gates share the same resolved fanin pair.
/// 6. **Outputs** ([`CheckCode::AigDanglingOutput`]): every resolved
///    output literal points at an allocated node.
///
/// Returns the first violation found.
///
/// # Errors
///
/// The violated invariant as a [`CheckError`], per the list above.
pub fn check_aig(aig: &Aig) -> Result<(), CheckError> {
    let n = aig.num_nodes();
    check_replacements(aig, n)?;
    check_raw_structure(aig, n)?;
    check_resolved_acyclic(aig, n)?;
    check_strash(aig, n)?;
    for (i, lit) in aig.outputs().into_iter().enumerate() {
        if lit.node().index() >= n {
            return Err(CheckError::global(
                CheckCode::AigDanglingOutput,
                format!("output {i} is {lit} but only {n} nodes are allocated"),
            ));
        }
    }
    Ok(())
}

/// Step 1: the replacement map must be well-formed and acyclic.
fn check_replacements(aig: &Aig, n: usize) -> Result<(), CheckError> {
    let repl: HashMap<NodeId, Lit> = aig.replacements().collect();
    for (&old, &new) in &repl {
        if old.index() >= n || aig.raw_fanins(old).is_none() {
            return Err(CheckError::at(
                CheckCode::AigBadReplacement,
                old.index() as u64,
                "replacement source is not an allocated AND gate",
            ));
        }
        if new.node().index() >= n {
            return Err(CheckError::at(
                CheckCode::AigBadReplacement,
                old.index() as u64,
                format!("replacement target {new} is out of range ({n} nodes)"),
            ));
        }
    }
    // Chains must terminate: follow each redirect to its end, memoizing
    // nodes already known to reach a live literal.
    let mut terminates: HashSet<NodeId> = HashSet::new();
    for &start in repl.keys() {
        let mut path = Vec::new();
        let mut on_path: HashSet<NodeId> = HashSet::new();
        let mut cur = start;
        loop {
            if terminates.contains(&cur) {
                break;
            }
            if !on_path.insert(cur) {
                return Err(CheckError::at(
                    CheckCode::AigCyclicRedirect,
                    start.index() as u64,
                    format!("redirection chain revisits node {}", cur.index()),
                ));
            }
            path.push(cur);
            match repl.get(&cur) {
                Some(l) => cur = l.node(),
                None => break,
            }
        }
        terminates.extend(path);
    }
    Ok(())
}

/// Steps 2–3: stored fanins are in range, strictly preceding, and
/// one-level canonical.
fn check_raw_structure(aig: &Aig, n: usize) -> Result<(), CheckError> {
    for i in 0..n {
        let Some((a, b)) = aig.raw_fanins(nid(i)) else {
            continue;
        };
        for f in [a, b] {
            if f.node().index() >= n {
                return Err(CheckError::at(
                    CheckCode::AigDanglingFanin,
                    i as u64,
                    format!("fanin {f} is out of range ({n} nodes)"),
                ));
            }
            if f.node().index() >= i {
                return Err(CheckError::at(
                    CheckCode::AigFaninOrder,
                    i as u64,
                    format!("fanin {f} does not precede its gate"),
                ));
            }
        }
        if a.is_const() || b.is_const() {
            return Err(CheckError::at(
                CheckCode::AigNotCanonical,
                i as u64,
                format!("constant fanin in ({a}, {b}) — the one-level rules eliminate these"),
            ));
        }
        if a.node() == b.node() {
            return Err(CheckError::at(
                CheckCode::AigNotCanonical,
                i as u64,
                format!("fanins ({a}, {b}) share a node — x·x and x·x̄ must not be materialized"),
            ));
        }
        if a > b {
            return Err(CheckError::at(
                CheckCode::AigNotCanonical,
                i as u64,
                format!("fanin pair ({a}, {b}) is not in canonical order"),
            ));
        }
    }
    Ok(())
}

/// Step 4: DFS over resolved fanin edges — a gray-edge hit is a
/// combinational cycle. Replaced nodes are not part of the resolved
/// graph (nothing evaluates them), so they are skipped as roots and
/// never reached as edges (edges are resolved).
fn check_resolved_acyclic(aig: &Aig, n: usize) -> Result<(), CheckError> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    for root in 0..n {
        if color[root] != WHITE || aig.is_replaced(nid(root)) {
            continue;
        }
        let mut stack = vec![(root, false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                color[v] = BLACK;
                continue;
            }
            if color[v] != WHITE {
                continue;
            }
            color[v] = GRAY;
            stack.push((v, true));
            let Some((a, b)) = aig.raw_fanins(nid(v)) else {
                continue;
            };
            for f in [a, b] {
                let r = aig.resolve(f).node().index();
                match color[r] {
                    GRAY => {
                        return Err(CheckError::at(
                            CheckCode::AigCombinationalCycle,
                            v as u64,
                            format!("resolved fanin {f} reaches back into node {v}'s cone"),
                        ));
                    }
                    WHITE => stack.push((r, false)),
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

/// Step 5: the strash table agrees with the node vector, and resolved
/// fanin pairs of unredirected gates are pairwise distinct.
fn check_strash(aig: &Aig, n: usize) -> Result<(), CheckError> {
    for ((a, b), id) in aig.strash_entries() {
        if id.index() >= n || aig.raw_fanins(id) != Some((a, b)) {
            return Err(CheckError::at(
                CheckCode::AigStrashMismatch,
                id.index() as u64,
                format!("strash entry ({a}, {b}) does not match the node it interns"),
            ));
        }
    }
    let mut seen: HashMap<(Lit, Lit), usize> = HashMap::new();
    for i in 0..n {
        let id = nid(i);
        if aig.is_replaced(id) {
            continue;
        }
        let Some((a, b)) = aig.raw_fanins(id) else {
            continue;
        };
        let (ra, rb) = (aig.resolve(a), aig.resolve(b));
        let (ra, rb) = if ra <= rb { (ra, rb) } else { (rb, ra) };
        // A pair that resolved to a degenerate form (constant or shared
        // node) is transitional dead logic awaiting cleanup, not a
        // strash violation.
        if ra.is_const() || ra.node() == rb.node() {
            continue;
        }
        if let Some(&other) = seen.get(&(ra, rb)) {
            return Err(CheckError::at(
                CheckCode::AigStrashDuplicate,
                i as u64,
                format!("resolved fanin pair ({ra}, {rb}) duplicates node {other}"),
            ));
        }
        seen.insert((ra, rb), i);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// maj3 + xor over three inputs: a small but non-trivial valid AIG.
    fn sample() -> (Aig, Lit, Lit, Lit) {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let m = aig.maj3(a, b, c);
        let x = aig.xor(a, c);
        aig.add_output(m);
        aig.add_output(!x);
        (aig, a, b, c)
    }

    #[test]
    fn valid_aig_passes() {
        let (aig, ..) = sample();
        check_aig(&aig).unwrap();
        check_aig(&aig.cleanup()).unwrap();
        check_aig(&Aig::new()).unwrap();
    }

    #[test]
    fn valid_after_replace() {
        let (mut aig, a, b, _) = sample();
        let ab = aig.and(a, b);
        aig.replace(ab.node(), a).unwrap();
        check_aig(&aig).unwrap();
    }

    #[test]
    fn detects_cyclic_redirect() {
        let (mut aig, a, b, c) = sample();
        let ab = aig.and(a, b);
        let bc = aig.and(b, c);
        aig.corrupt_force_replace(ab.node(), bc);
        aig.corrupt_force_replace(bc.node(), ab);
        let err = check_aig(&aig).unwrap_err();
        assert_eq!(err.code, CheckCode::AigCyclicRedirect);
        assert_eq!(err.code.as_str(), "aig-cyclic-redirect");
    }

    #[test]
    fn detects_self_redirect() {
        let (mut aig, a, b, _) = sample();
        let ab = aig.and(a, b);
        aig.corrupt_force_replace(ab.node(), !ab);
        let err = check_aig(&aig).unwrap_err();
        assert_eq!(err.code, CheckCode::AigCyclicRedirect);
    }

    #[test]
    fn detects_bad_replacement_source() {
        let (mut aig, a, b, _) = sample();
        // Redirecting an input is forbidden.
        aig.corrupt_force_replace(a.node(), b);
        let err = check_aig(&aig).unwrap_err();
        assert_eq!(err.code, CheckCode::AigBadReplacement);
    }

    #[test]
    fn detects_dangling_replacement_target() {
        let (mut aig, a, b, _) = sample();
        let ab = aig.and(a, b);
        let dangling = Lit::from_code(9999 << 1);
        aig.corrupt_force_replace(ab.node(), dangling);
        let err = check_aig(&aig).unwrap_err();
        assert_eq!(err.code, CheckCode::AigBadReplacement);
    }

    #[test]
    fn detects_dangling_fanin() {
        let (mut aig, a, ..) = sample();
        let dangling = Lit::from_code(9999 << 1 | 1);
        aig.corrupt_push_raw_and(a, dangling);
        let err = check_aig(&aig).unwrap_err();
        assert_eq!(err.code, CheckCode::AigDanglingFanin);
        assert_eq!(err.code.as_str(), "aig-dangling-fanin");
    }

    #[test]
    fn detects_fanin_order_violation() {
        let (mut aig, a, ..) = sample();
        // Node referring to itself: stored fanin does not precede it.
        let next = Lit::from_code((aig.num_nodes() as u32) << 1);
        aig.corrupt_push_raw_and(a, next);
        let err = check_aig(&aig).unwrap_err();
        assert_eq!(err.code, CheckCode::AigFaninOrder);
    }

    #[test]
    fn detects_non_canonical_pairs() {
        for (make, what) in [
            (
                (|aig: &mut Aig, a: Lit, _b: Lit| aig.corrupt_push_raw_and(a, Lit::TRUE))
                    as fn(&mut Aig, Lit, Lit) -> Lit,
                "constant fanin",
            ),
            (|aig, a, _b| aig.corrupt_push_raw_and(a, a), "x·x"),
            (|aig, a, _b| aig.corrupt_push_raw_and(a, !a), "x·x̄"),
            (|aig, a, b| aig.corrupt_push_raw_and(b, a), "unordered"),
        ] {
            let (mut aig, a, b, _) = sample();
            make(&mut aig, a, b);
            let err = check_aig(&aig).unwrap_err();
            assert_eq!(err.code, CheckCode::AigNotCanonical, "case: {what}");
        }
    }

    #[test]
    fn detects_combinational_cycle() {
        let (mut aig, a, b, c) = sample();
        // n_low = a·b; n_high = n_low·c; redirect n_low → n_high: n_high's
        // resolved fanin now reaches back into itself.
        let low = aig.and(a, b);
        let high = aig.and(low, c);
        aig.corrupt_force_replace(low.node(), high);
        let err = check_aig(&aig).unwrap_err();
        assert_eq!(err.code, CheckCode::AigCombinationalCycle);
        assert_eq!(err.code.as_str(), "aig-combinational-cycle");
    }

    #[test]
    fn detects_strash_duplicate() {
        let (mut aig, a, b, _) = sample();
        let _canonical = aig.and(a, b);
        aig.corrupt_push_raw_and(a, b);
        let err = check_aig(&aig).unwrap_err();
        assert_eq!(err.code, CheckCode::AigStrashDuplicate);
        assert_eq!(err.code.as_str(), "aig-strash-duplicate");
    }

    #[test]
    fn detects_duplicate_via_redirection() {
        // Two distinct raw pairs that resolve to the same pair once `cb`
        // is redirected to `ab`.
        let (mut aig, a, b, c) = sample();
        let ab = aig.and(a, b);
        let cb = aig.and(c, b);
        let f1 = aig.and(ab, c);
        let _f2 = aig.and(cb, c);
        aig.add_output(f1);
        aig.replace(cb.node(), ab).unwrap();
        let err = check_aig(&aig).unwrap_err();
        assert_eq!(err.code, CheckCode::AigStrashDuplicate);
    }

    #[test]
    fn degenerate_resolved_pairs_are_tolerated() {
        // Legal `replace` can make a live pair resolve to x·x̄ (dead logic
        // awaiting cleanup); that must not be flagged.
        let (mut aig, a, b, _) = sample();
        let ab = aig.and(a, b);
        let f = aig.and(ab, !a);
        aig.add_output(f);
        aig.replace(ab.node(), a).unwrap(); // f's pair resolves to (a, !a)
        check_aig(&aig).unwrap();
        check_aig(&aig.cleanup()).unwrap();
    }
}
